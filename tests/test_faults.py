"""Unit coverage for every public class/function in ``repro.faults``,
plus the retry/backoff machinery it drives (RetryPolicy, DataManager
retries) and a smoke run of the fault-tolerance example."""

import json

import numpy as np
import pytest

from repro.faults import (
    SPEC_TYPES,
    FaultInjector,
    FaultPlan,
    HostCrash,
    LinkDegradation,
    LinkDegrade,
    LinkDown,
    LinkFlap,
    LinkPartition,
    MessageFaults,
    ServerCrash,
    SiteOutage,
)
from repro.net import ATM_OC3, Message, Network, Topology
from repro.resources import Host, HostSpec
from repro.runtime.data.data_manager import ChannelSpec, DataManager
from repro.runtime.data.messaging import RetryPolicy
from repro.simcore import Environment
from repro.util.errors import ConfigurationError, DeliveryTimeoutError


# ---------------------------------------------------------------------------
# fault specs
# ---------------------------------------------------------------------------

class TestHostCrash:
    def test_valid(self):
        HostCrash(host="s/h", at=1.0).validate()
        HostCrash(host="s/h", at=0.0, recover_after=5.0).validate()

    def test_requires_host(self):
        with pytest.raises(ConfigurationError):
            HostCrash(host="", at=1.0).validate()

    def test_negative_time_rejected(self):
        with pytest.raises(ConfigurationError):
            HostCrash(host="s/h", at=-1.0).validate()

    def test_nonpositive_recovery_rejected(self):
        with pytest.raises(ConfigurationError):
            HostCrash(host="s/h", at=1.0, recover_after=0.0).validate()


class TestSiteOutage:
    def test_valid(self):
        SiteOutage(site="s", at=0.0, recover_after=1.0).validate()

    def test_requires_site(self):
        with pytest.raises(ConfigurationError):
            SiteOutage(site="", at=1.0).validate()


class TestLinkPartition:
    def test_valid(self):
        LinkPartition(site_a="a", site_b="b", at=0.0, duration=5.0).validate()

    def test_same_site_rejected(self):
        with pytest.raises(ConfigurationError):
            LinkPartition(site_a="a", site_b="a", at=0.0,
                          duration=5.0).validate()

    def test_zero_duration_rejected(self):
        with pytest.raises(ConfigurationError):
            LinkPartition(site_a="a", site_b="b", at=0.0,
                          duration=0.0).validate()

    def test_active_window_half_open(self):
        p = LinkPartition(site_a="a", site_b="b", at=10.0, duration=5.0)
        assert not p.active(9.99)
        assert p.active(10.0)
        assert p.active(14.99)
        assert not p.active(15.0)

    def test_severs_is_direction_agnostic(self):
        p = LinkPartition(site_a="a", site_b="b", at=0.0, duration=1.0)
        assert p.severs("a", "b") and p.severs("b", "a")
        assert not p.severs("a", "c")
        assert not p.severs("a", "a")


class TestLinkDegradation:
    def test_valid(self):
        LinkDegradation(site_a="a", site_b="b", at=0.0, duration=1.0,
                        delay_factor=3.0, drop_prob=0.1).validate()

    def test_delay_factor_below_one_rejected(self):
        with pytest.raises(ConfigurationError):
            LinkDegradation(site_a="a", site_b="b", at=0.0, duration=1.0,
                            delay_factor=0.5).validate()

    def test_bad_drop_prob_rejected(self):
        with pytest.raises(ConfigurationError):
            LinkDegradation(site_a="a", site_b="b", at=0.0, duration=1.0,
                            drop_prob=1.5).validate()

    def test_active_and_severs(self):
        d = LinkDegradation(site_a="a", site_b="b", at=1.0, duration=2.0)
        assert d.active(2.0) and not d.active(3.0)
        assert d.severs("b", "a")


class TestMessageFaults:
    def test_valid(self):
        MessageFaults(at=0.0, duration=1.0, drop_prob=0.5).validate()

    def test_all_probs_zero_rejected(self):
        with pytest.raises(ConfigurationError):
            MessageFaults(at=0.0, duration=1.0).validate()

    def test_bad_prob_rejected(self):
        with pytest.raises(ConfigurationError):
            MessageFaults(at=0.0, duration=1.0, dup_prob=2.0).validate()

    def test_matches_by_kind(self):
        w = MessageFaults(at=0.0, duration=1.0, drop_prob=1.0,
                          kinds=("ping",))
        assert w.matches(Message(src="a/h", dst="b/h", kind="ping"))
        assert not w.matches(Message(src="a/h", dst="b/h", kind="pong"))

    def test_matches_by_prefix(self):
        w = MessageFaults(at=0.0, duration=1.0, drop_prob=1.0,
                          src_prefix="a/", dst_prefix="b/")
        assert w.matches(Message(src="a/h", dst="b/h", kind="x"))
        assert not w.matches(Message(src="c/h", dst="b/h", kind="x"))
        assert not w.matches(Message(src="a/h", dst="c/h", kind="x"))

    def test_matches_everything_by_default(self):
        w = MessageFaults(at=0.0, duration=1.0, drop_prob=1.0)
        assert w.matches(Message(src="x/y", dst="z/w", kind="anything"))


class TestSpecTypes:
    def test_registry_keys_are_kind_tags(self):
        assert SPEC_TYPES == {
            "host-crash": HostCrash, "site-outage": SiteOutage,
            "link-partition": LinkPartition,
            "link-degradation": LinkDegradation,
            "link-down": LinkDown, "link-flap": LinkFlap,
            "link-degrade": LinkDegrade,
            "message-faults": MessageFaults,
            "server-crash": ServerCrash,
        }


# ---------------------------------------------------------------------------
# FaultPlan
# ---------------------------------------------------------------------------

def sample_plan() -> FaultPlan:
    return FaultPlan(events=(
        HostCrash(host="a/h1", at=5.0, recover_after=10.0),
        SiteOutage(site="b", at=7.0),
        LinkPartition(site_a="a", site_b="b", at=2.0, duration=3.0),
        MessageFaults(at=1.0, duration=4.0, drop_prob=0.2,
                      kinds=("ping", "pong")),
    ))


class TestFaultPlan:
    def test_len_and_iter(self):
        plan = sample_plan()
        assert len(plan) == 4
        assert [e.kind for e in plan] == [
            "host-crash", "site-outage", "link-partition", "message-faults"]

    def test_events_coerced_to_tuple(self):
        plan = FaultPlan(events=[HostCrash(host="a/h", at=1.0)])
        assert isinstance(plan.events, tuple)

    def test_validates_each_event(self):
        with pytest.raises(ConfigurationError):
            FaultPlan(events=(HostCrash(host="", at=1.0),))

    def test_rejects_foreign_types(self):
        with pytest.raises(ConfigurationError):
            FaultPlan(events=("not-a-fault",))

    def test_host_faults_and_window_faults_partition_events(self):
        plan = sample_plan()
        assert {e.kind for e in plan.host_faults()} == \
            {"host-crash", "site-outage"}
        assert {e.kind for e in plan.window_faults()} == \
            {"link-partition", "message-faults"}
        assert len(plan.host_faults()) + len(plan.window_faults()) == \
            len(plan)

    def test_shifted_moves_every_time(self):
        plan = sample_plan()
        moved = plan.shifted(100.0)
        assert [e.at for e in moved] == [e.at + 100.0 for e in plan]

    def test_roundtrip_through_dicts(self):
        plan = sample_plan()
        assert FaultPlan.from_dicts(plan.to_dicts()) == plan

    def test_to_dicts_is_json_ready(self):
        json.dumps(sample_plan().to_dicts())

    def test_from_dicts_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultPlan.from_dicts([{"kind": "meteor-strike", "at": 1.0}])


class TestFaultPlanRandom:
    def test_same_seed_same_plan(self):
        hosts = ["a/h1", "a/h2", "b/h1"]
        p1 = FaultPlan.random(np.random.default_rng(42), hosts,
                              sites=["a", "b"])
        p2 = FaultPlan.random(np.random.default_rng(42), hosts,
                              sites=["a", "b"])
        assert p1 == p2

    def test_different_seeds_differ(self):
        hosts = ["a/h1", "a/h2", "b/h1"]
        p1 = FaultPlan.random(np.random.default_rng(1), hosts)
        p2 = FaultPlan.random(np.random.default_rng(2), hosts)
        assert p1 != p2

    def test_events_sorted_by_time(self):
        plan = FaultPlan.random(np.random.default_rng(3),
                                ["a/h1", "a/h2"], sites=["a", "b"])
        times = [e.at for e in plan]
        assert times == sorted(times)

    def test_respects_counts(self):
        plan = FaultPlan.random(
            np.random.default_rng(4), ["a/h1", "a/h2", "b/h1"],
            sites=["a", "b"], n_host_crashes=1, n_message_windows=3,
            n_partitions=2)
        kinds = [e.kind for e in plan]
        assert kinds.count("host-crash") == 1
        assert kinds.count("message-faults") == 3
        assert kinds.count("link-partition") == 2

    def test_crash_victims_unique_and_from_pool(self):
        hosts = ["a/h1", "a/h2", "b/h1"]
        plan = FaultPlan.random(np.random.default_rng(5), hosts,
                                n_host_crashes=3, n_message_windows=0)
        victims = [e.host for e in plan.host_faults()]
        assert len(victims) == len(set(victims)) == 3
        assert set(victims) <= set(hosts)

    def test_no_partitions_with_fewer_than_two_sites(self):
        plan = FaultPlan.random(np.random.default_rng(6), ["a/h1"],
                                sites=["a"], n_partitions=5)
        assert not any(isinstance(e, LinkPartition) for e in plan)

    def test_bad_horizon_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultPlan.random(np.random.default_rng(0), ["a/h"],
                             horizon_s=0.0)


# ---------------------------------------------------------------------------
# FaultInjector
# ---------------------------------------------------------------------------

def make_world():
    """Two sites, one host each, plus an injector wired to them."""
    env = Environment()
    topo = Topology()
    topo.add_site("a")
    topo.add_site("b")
    topo.connect("a", "b", ATM_OC3)
    net = Network(env, topo)
    hosts = {
        "a/h1": Host(spec=HostSpec(name="h1"), site="a"),
        "b/h1": Host(spec=HostSpec(name="h1"), site="b"),
    }
    net.is_up = lambda addr: hosts[addr].up if addr in hosts else True
    injector = FaultInjector(
        env, net, rng=np.random.default_rng(0),
        host_resolver=lambda addr: hosts[addr],
        site_hosts=lambda s: [h for a, h in hosts.items()
                              if a.startswith(f"{s}/")])
    return env, net, hosts, injector


class TestFaultInjectorHostFaults:
    def test_crash_and_recover(self):
        env, net, hosts, inj = make_world()
        inj.install(FaultPlan(events=(
            HostCrash(host="a/h1", at=2.0, recover_after=3.0),)))
        env.run(until=3.0)
        assert not hosts["a/h1"].up
        env.run(until=6.0)
        assert hosts["a/h1"].up
        assert [e["fault"] for e in inj.events] == ["host-down", "host-up"]
        assert [e["t"] for e in inj.events] == [2.0, 5.0]

    def test_crash_without_recovery_is_permanent(self):
        env, net, hosts, inj = make_world()
        inj.install(FaultPlan(events=(HostCrash(host="a/h1", at=1.0),)))
        env.run(until=100.0)
        assert not hosts["a/h1"].up
        assert inj.counts() == {"host-down": 1}

    def test_site_outage_downs_every_site_host(self):
        env, net, hosts, inj = make_world()
        inj.install(FaultPlan(events=(
            SiteOutage(site="b", at=1.0, recover_after=2.0),)))
        env.run(until=2.0)
        assert not hosts["b/h1"].up and hosts["a/h1"].up
        env.run(until=4.0)
        assert hosts["b/h1"].up
        assert inj.counts() == {"site-down": 1, "site-up": 1}

    def test_past_fault_rejected(self):
        env, net, hosts, inj = make_world()
        env.run(until=10.0)
        with pytest.raises(ConfigurationError):
            inj.install(FaultPlan(events=(HostCrash(host="a/h1", at=5.0),)))

    def test_missing_host_resolver_rejected(self):
        env, net, _, _ = make_world()
        bare = FaultInjector(env, net)
        with pytest.raises(ConfigurationError):
            bare.install(FaultPlan(events=(HostCrash(host="a/h1", at=1.0),)))

    def test_missing_site_resolver_rejected(self):
        env, net, hosts, _ = make_world()
        bare = FaultInjector(env, net,
                             host_resolver=lambda addr: hosts[addr])
        with pytest.raises(ConfigurationError):
            bare.install(FaultPlan(events=(SiteOutage(site="b", at=1.0),)))


class TestFaultInjectorMessageFaults:
    def send_and_run(self, env, net, kind="ping", src="a/h1", dst="b/h1"):
        net.register(src)
        box = net.register(dst)
        net.send(src, dst, kind, size_bytes=0)
        env.run(until=env.now + 5.0)
        return box

    def test_partition_drops_cross_site_traffic(self):
        env, net, hosts, inj = make_world()
        inj.install(FaultPlan(events=(
            LinkPartition(site_a="a", site_b="b", at=0.0, duration=10.0),)))
        box = self.send_and_run(env, net)
        assert box.try_get() is None
        assert inj.counts() == {"partition-drop": 1}
        assert net.stats.injected_drops == 1

    def test_partition_spares_intra_site_traffic(self):
        env, net, hosts, inj = make_world()
        inj.install(FaultPlan(events=(
            LinkPartition(site_a="a", site_b="b", at=0.0, duration=10.0),)))
        box = self.send_and_run(env, net, src="a/h1", dst="a/h1/svc")
        assert box.try_get() is not None
        assert inj.events == []

    def test_window_over_means_no_fault(self):
        env, net, hosts, inj = make_world()
        inj.install(FaultPlan(events=(
            LinkPartition(site_a="a", site_b="b", at=0.0, duration=1.0),)))
        env.run(until=2.0)
        box = self.send_and_run(env, net)
        assert box.try_get() is not None

    def test_degradation_multiplies_delay(self):
        env, net, hosts, inj = make_world()
        inj.install(FaultPlan(events=(
            LinkDegradation(site_a="a", site_b="b", at=0.0, duration=10.0,
                            delay_factor=100.0),)))
        net.register("a/h1")
        box = net.register("b/h1")
        net.send("a/h1", "b/h1", "ping", size_bytes=0)
        base = net.delay_for("a/h1", "b/h1", 0)
        env.run(until=base * 50)
        assert box.try_get() is None  # still in flight, 100x slower
        env.run(until=base * 150)
        assert box.try_get() is not None
        assert inj.counts() == {"msg-delay": 1}

    def test_certain_drop_window_drops(self):
        env, net, hosts, inj = make_world()
        inj.install(FaultPlan(events=(
            MessageFaults(at=0.0, duration=10.0, drop_prob=1.0),)))
        box = self.send_and_run(env, net)
        assert box.try_get() is None
        assert inj.counts() == {"msg-drop": 1}

    def test_kind_filter_spares_other_kinds(self):
        env, net, hosts, inj = make_world()
        inj.install(FaultPlan(events=(
            MessageFaults(at=0.0, duration=10.0, drop_prob=1.0,
                          kinds=("doomed",)),)))
        box = self.send_and_run(env, net, kind="ping")
        assert box.try_get() is not None

    def test_certain_duplicate_window_duplicates(self):
        env, net, hosts, inj = make_world()
        inj.install(FaultPlan(events=(
            MessageFaults(at=0.0, duration=10.0, dup_prob=1.0),)))
        box = self.send_and_run(env, net)
        seen = 0
        while box.try_get() is not None:
            seen += 1
        assert seen == 2
        assert inj.counts() == {"msg-dup": 1}

    def test_hook_installed_only_for_window_faults(self):
        env, net, hosts, inj = make_world()
        inj.install(FaultPlan(events=(HostCrash(host="a/h1", at=1.0),)))
        assert net.fault_hook is None
        inj.install(FaultPlan(events=(
            MessageFaults(at=0.0, duration=1.0, drop_prob=0.5),)))
        assert net.fault_hook is not None


class TestFaultInjectorLog:
    def test_event_log_returns_copies(self):
        env, net, hosts, inj = make_world()
        inj.install(FaultPlan(events=(HostCrash(host="a/h1", at=1.0),)))
        env.run(until=2.0)
        log = inj.event_log()
        log[0]["fault"] = "tampered"
        assert inj.events[0]["fault"] == "host-down"

    def test_log_json_deterministic_across_runs(self):
        def once():
            env, net, hosts, inj = make_world()
            inj.install(FaultPlan(events=(
                HostCrash(host="a/h1", at=2.0, recover_after=1.0),
                MessageFaults(at=0.0, duration=10.0, drop_prob=0.5),)))
            net.register("a/h1")
            net.register("b/h1")
            for i in range(20):
                net.send("a/h1", "b/h1", "ping", size_bytes=0)
            env.run(until=10.0)
            return inj.log_json()

        assert once() == once()

    def test_log_json_parses_back(self):
        env, net, hosts, inj = make_world()
        inj.install(FaultPlan(events=(HostCrash(host="a/h1", at=1.0),)))
        env.run(until=2.0)
        assert json.loads(inj.log_json()) == inj.events

    def test_actor_constant(self):
        assert FaultInjector.ACTOR == "faults"


# ---------------------------------------------------------------------------
# RetryPolicy + DataManager retries
# ---------------------------------------------------------------------------

class TestRetryPolicy:
    def test_defaults_give_exponential_ladder(self):
        policy = RetryPolicy()
        assert policy.schedule() == [1.0, 2.0, 4.0, 8.0]
        assert policy.total_wait_s == 15.0

    def test_timeout_capped(self):
        policy = RetryPolicy(timeout_s=1.0, max_attempts=10,
                             backoff_factor=2.0, max_timeout_s=5.0)
        assert policy.timeout_for(10) == 5.0

    def test_attempt_is_one_based(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy().timeout_for(0)

    @pytest.mark.parametrize("kwargs", [
        dict(timeout_s=0.0),
        dict(max_attempts=0),
        dict(backoff_factor=0.5),
        dict(timeout_s=2.0, max_timeout_s=1.0),
    ])
    def test_bad_config_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            RetryPolicy(**kwargs)


def make_dm_pair(retry_policy=None):
    env = Environment()
    topo = Topology()
    topo.add_site("s1")
    topo.add_site("s2")
    topo.connect("s1", "s2", ATM_OC3)
    net = Network(env, topo)
    h1 = Host(spec=HostSpec(name="h1"), site="s1")
    h2 = Host(spec=HostSpec(name="h2"), site="s2")
    dm1 = DataManager(env, net, h1, retry_policy=retry_policy)
    dm2 = DataManager(env, net, h2)
    return env, net, dm1, dm2


def cross_spec() -> ChannelSpec:
    return ChannelSpec(execution_id="e1", src_node="a", src_port="out",
                       src_host="s1/h1", dst_node="b", dst_port="in",
                       dst_host="s2/h2")


class TestDataManagerRetry:
    def drop_setups_until(self, net, t_open):
        """Fault hook: drop channel-setup messages before *t_open*."""
        from repro.net.network import FaultAction

        def hook(msg):
            if msg.kind == "channel-setup" and msg.send_time < t_open:
                return FaultAction(drop=True)
            return None

        net.fault_hook = hook

    def test_retry_until_window_opens(self):
        env, net, dm1, dm2 = make_dm_pair()
        self.drop_setups_until(net, 2.5)
        proc = env.process(dm1.setup_channels([cross_spec()]))
        env.run(until=60.0)
        assert proc.ok and proc.value == 1
        # attempts at ~0, ~1, ~3 (third lands after the window opens)
        assert dm1.stats.retries == 2
        assert dm1.stats.setups_requested == 3
        assert dm1.stats.setups_abandoned == 0

    def test_abandon_after_exhaustion(self):
        env, net, dm1, dm2 = make_dm_pair()
        self.drop_setups_until(net, 1e9)  # never deliverable
        proc = env.process(dm1.setup_channels([cross_spec()]))
        env.run(until=60.0)
        assert proc.ok  # abandon is not an error by default
        assert dm1.stats.setups_abandoned == 1
        assert dm1.stats.retries == 3   # 4 attempts = 3 retries
        assert not dm1._pending_acks

    def test_raise_mode_surfaces_typed_error(self):
        env, net, dm1, dm2 = make_dm_pair()
        self.drop_setups_until(net, 1e9)
        proc = env.process(
            dm1.setup_channels([cross_spec()], on_failure="raise"))
        env.run(until=60.0)
        assert not proc.ok
        assert isinstance(proc.exception, DeliveryTimeoutError)

    def test_no_retry_on_healthy_network(self):
        env, net, dm1, dm2 = make_dm_pair()
        proc = env.process(dm1.setup_channels([cross_spec()]))
        env.run(until=10.0)
        assert proc.ok
        assert dm1.stats.retries == 0
        assert dm1.stats.setups_requested == 1

    def test_custom_policy_respected(self):
        env, net, dm1, dm2 = make_dm_pair(
            retry_policy=RetryPolicy(timeout_s=0.5, max_attempts=2))
        self.drop_setups_until(net, 1e9)
        proc = env.process(dm1.setup_channels([cross_spec()]))
        env.run(until=60.0)
        assert proc.ok
        assert dm1.stats.setups_requested == 2
        assert dm1.stats.setups_abandoned == 1

    def test_bad_on_failure_rejected(self):
        env, net, dm1, dm2 = make_dm_pair()
        proc = env.process(
            dm1.setup_channels([cross_spec()], on_failure="explode"))
        env.run(until=1.0)
        assert not proc.ok


# ---------------------------------------------------------------------------
# example smoke test (satellite: the demo can't rot)
# ---------------------------------------------------------------------------

class TestFaultToleranceExample:
    def test_crash_demo_runs(self, capsys):
        import importlib.util
        from pathlib import Path

        path = Path(__file__).parent.parent / "examples" / \
            "fault_tolerance_demo.py"
        spec = importlib.util.spec_from_file_location("ft_demo", path)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        # default problem size: smaller runs can finish before the
        # injected crash fires, which voids the demo's point
        module.crash_demo()
        out = capsys.readouterr().out
        assert "host-crash recovery" in out
        assert "status      : completed" in out
        assert "failure detected by group manager" in out
