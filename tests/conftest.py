"""Shared fixtures: thin wrappers over the public repro.testing helpers."""

from __future__ import annotations

import pytest

from repro.tasklib import standard_registry
from repro.testing import HOST_TEMPLATES, Federation, build_federation

__all__ = ["Federation", "HOST_TEMPLATES", "build_federation"]


@pytest.fixture(scope="module")
def registry():
    return standard_registry()


@pytest.fixture
def federation(registry):
    return build_federation(registry=registry)


@pytest.fixture
def three_site_federation(registry):
    return build_federation(
        site_names=("syracuse", "rome", "buffalo"), hosts_per_site=2,
        registry=registry)
