"""Tests for message-passing dialects, the real TCP backend, and the
LocalRunner (threads + loopback sockets)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.runtime.data.messaging import (
    DIALECTS,
    MessageCodec,
    get_dialect,
    translate,
)
from repro.runtime.data.realsock import RealEndpoint, RealProxy
from repro.runtime.local import LocalRunner, run_local
from repro.util.errors import ChannelError, DataConversionError, ExecutionError
from repro.workloads import (
    c3i_scenario_graph,
    fourier_pipeline_graph,
    linear_solver_graph,
)
from repro.tasklib import standard_registry


@pytest.fixture(scope="module")
def registry():
    return standard_registry()


class TestMessageCodec:
    @pytest.mark.parametrize("dialect", sorted(DIALECTS))
    def test_json_roundtrip(self, dialect):
        codec = MessageCodec(dialect)
        value = {"a": [1, 2, 3], "b": "text", "c": None}
        assert codec.decode(codec.encode(value)) == value

    @pytest.mark.parametrize("dialect", sorted(DIALECTS))
    @pytest.mark.parametrize("dtype", ["<f8", ">f8", "<i4", ">i4"])
    def test_array_roundtrip_across_endianness(self, dialect, dtype):
        codec = MessageCodec(dialect)
        arr = np.arange(24, dtype=np.dtype(dtype)).reshape(2, 3, 4)
        out = codec.decode(codec.encode(arr))
        np.testing.assert_array_equal(out, arr.astype(arr.dtype.newbyteorder("=")))
        assert out.dtype.byteorder in ("=", "|", "<" if np.little_endian
                                       else ">")

    def test_unknown_dialect(self):
        with pytest.raises(DataConversionError):
            get_dialect("corba")

    def test_garbage_rejected(self):
        with pytest.raises(DataConversionError):
            MessageCodec().decode(b"NOPE" + b"\x00" * 20)

    def test_truncated_rejected(self):
        codec = MessageCodec()
        blob = codec.encode({"x": 1})
        with pytest.raises(DataConversionError):
            codec.decode(blob[:-2])

    def test_non_serialisable_rejected(self):
        with pytest.raises(DataConversionError):
            MessageCodec().encode(object())

    def test_translate_between_dialects(self):
        arr = np.linspace(0, 1, 7)
        pvm_blob = MessageCodec("pvm").encode(arr)
        mpi_blob = translate(pvm_blob, "pvm", "mpi")
        out = MessageCodec("mpi").decode(mpi_blob)
        np.testing.assert_array_equal(out, arr)

    def test_frame_reader(self):
        codec = MessageCodec("vdce")
        stream = codec.frame({"a": 1}) + codec.frame({"b": 2})
        first = codec.read_frame(stream)
        assert first is not None
        value, rest = first
        assert value == {"a": 1}
        second = codec.read_frame(rest)
        assert second[0] == {"b": 2}
        assert codec.read_frame(second[1]) is None

    def test_partial_frame_returns_none(self):
        codec = MessageCodec("vdce")
        blob = codec.frame({"a": 1})
        assert codec.read_frame(blob[: len(blob) // 2]) is None

    @settings(max_examples=25, deadline=None)
    @given(hnp.arrays(dtype=st.sampled_from([np.float64, np.int32]),
                      shape=hnp.array_shapes(max_dims=3, max_side=6)),
           st.sampled_from(sorted(DIALECTS)))
    def test_property_array_roundtrip(self, arr, dialect):
        codec = MessageCodec(dialect)
        out = codec.decode(codec.encode(arr))
        np.testing.assert_array_equal(out, arr)


class TestRealSockets:
    def test_setup_and_transfer(self):
        endpoint = RealEndpoint(name="consumer")
        try:
            proxy = RealProxy(endpoint.address, name="producer")
            try:
                proxy.setup_channel("task-b:in")
                payload = np.arange(10.0)
                proxy.send("task-b:in", payload)
                got = endpoint.receive("task-b:in", timeout=5.0)
                np.testing.assert_array_equal(got, payload)
            finally:
                proxy.close()
        finally:
            endpoint.close()

    def test_multiple_channels_one_socket(self):
        endpoint = RealEndpoint()
        try:
            proxy = RealProxy(endpoint.address)
            try:
                for key in ("x:a", "x:b"):
                    proxy.setup_channel(key)
                proxy.send("x:b", {"v": 2})
                proxy.send("x:a", {"v": 1})
                assert endpoint.receive("x:a", timeout=5.0) == {"v": 1}
                assert endpoint.receive("x:b", timeout=5.0) == {"v": 2}
            finally:
                proxy.close()
        finally:
            endpoint.close()

    def test_receive_timeout(self):
        endpoint = RealEndpoint()
        try:
            with pytest.raises(ChannelError):
                endpoint.receive("never:used", timeout=0.2)
        finally:
            endpoint.close()

    @pytest.mark.parametrize("dialect", ["p4", "pvm", "mpi", "ncs"])
    def test_dialects_over_the_wire(self, dialect):
        endpoint = RealEndpoint(dialect=dialect)
        try:
            proxy = RealProxy(endpoint.address, dialect=dialect)
            try:
                proxy.setup_channel("k:p")
                arr = np.array([[1.5, -2.5], [3.0, 4.0]])
                proxy.send("k:p", arr)
                np.testing.assert_array_equal(
                    endpoint.receive("k:p", timeout=5.0), arr)
            finally:
                proxy.close()
        finally:
            endpoint.close()


class TestLocalRunner:
    def test_solver_runs_for_real(self, registry):
        graph = linear_solver_graph(registry, n=30)
        result = run_local(graph, timeout_s=30.0)
        assert result.ok, result.errors
        assert result.outputs["verify"]["norm"] < 1e-8
        # every task computed, in a precedence-respecting order
        assert sorted(result.task_order) == sorted(graph.nodes)
        pos = {nid: i for i, nid in enumerate(result.task_order)}
        for link in graph.links:
            assert pos[link.src] < pos[link.dst]

    def test_matches_direct_execution(self, registry):
        """Socket-transported numerics equal in-process numerics."""
        graph = fourier_pipeline_graph(registry, n=512, stages=1)
        result = run_local(graph, timeout_s=30.0)
        assert result.ok, result.errors
        # compute the same pipeline directly
        sig = registry.resolve("signal-generate").execute(
            {}, dict(graph.node("sig").properties.params))["signal"]
        spec = registry.resolve("fft-1d").execute({"signal": sig})["spectrum"]
        filt = registry.resolve("lowpass-filter").execute(
            {"spectrum": spec},
            dict(graph.node("filter-0").properties.params))["spectrum"]
        power = registry.resolve("power-spectrum").execute(
            {"spectrum": filt})["power"]
        peaks = registry.resolve("peak-detect").execute(
            {"power": power},
            dict(graph.node("peaks").properties.params))["peaks"]
        np.testing.assert_allclose(result.outputs["peaks"]["peaks"], peaks)

    @pytest.mark.parametrize("dialect", ["p4", "mpi"])
    def test_other_dialects(self, registry, dialect):
        graph = c3i_scenario_graph(registry, targets=8, steps=5)
        result = run_local(graph, dialect=dialect, timeout_s=30.0)
        assert result.ok, result.errors
        assert result.outputs["plan"]["plan"].shape[1] == 3

    def test_task_failure_reported_not_hung(self):
        """A failing task surfaces as an error; dependents time out with a
        diagnostic instead of deadlocking the runner."""
        from repro.afg import GraphBuilder
        from repro.tasklib import (
            LibraryRegistry,
            TaskDefinition,
            TaskLibrary,
            TaskSignature,
            build_matrix_library,
        )

        def exploding(inputs, params):
            raise ExecutionError("synthetic failure")

        lib = TaskLibrary("faulty")
        lib.add(TaskDefinition(
            name="explode", library="faulty", description="always fails",
            signature=TaskSignature(inputs=(), outputs=("out",)),
            impl=exploding))
        registry = LibraryRegistry()
        registry.add_library(lib)
        registry.add_library(build_matrix_library())
        b = GraphBuilder(registry, name="will-fail")
        b.task("explode", "boom", input_size=10)
        b.task("matrix-inverse", "inv", input_size=10)
        b.link("boom", "inv", dst_port="matrix")
        result = LocalRunner(b.build(), timeout_s=2.0).run()
        assert not result.ok
        assert "synthetic failure" in result.errors["boom"]
        assert "inv" in result.errors  # dependent failed fast, no hang

    def test_requires_executable_tasks(self, registry):
        from repro.afg import ApplicationFlowGraph
        from repro.tasklib import TaskDefinition, TaskSignature
        graph = ApplicationFlowGraph("sim-only")
        graph.add_node("x", TaskDefinition(
            name="sim-only-task", library="none", description="",
            signature=TaskSignature(inputs=(), outputs=("out",))))
        with pytest.raises(ExecutionError):
            LocalRunner(graph)

    def test_suspend_resume(self, registry):
        import threading
        import time
        graph = fourier_pipeline_graph(registry, n=256, stages=1)
        runner = LocalRunner(graph, timeout_s=30.0)
        runner.suspend()
        t = threading.Thread(target=runner.run, daemon=True)
        t.start()
        time.sleep(0.5)
        # nothing computed while suspended
        assert runner.result.task_order == []
        runner.resume()
        t.join(timeout=30.0)
        assert not t.is_alive()
        assert runner.result.ok, runner.result.errors


class TestLocalRunnerStress:
    def test_wide_fork_join_over_real_sockets(self, registry):
        """25 tasks, 31 channels, all genuinely concurrent threads."""
        from repro.workloads import fork_join_graph
        graph = fork_join_graph(registry, width=8, size=512)
        result = run_local(graph, timeout_s=60.0)
        assert result.ok, result.errors
        assert len(result.task_order) == len(graph)

    def test_large_payload_over_sockets(self, registry):
        """An 8 MB matrix crosses loopback TCP intact."""
        from repro.afg import GraphBuilder
        n = 1000  # 1000x1000 float64 = 8 MB
        b = GraphBuilder(registry, name="big-payload")
        b.task("matrix-generate", "g", input_size=n,
               params={"n": n, "seed": 4, "kind": "random"})
        b.task("matrix-transpose", "t", input_size=n)
        b.link("g", "t")
        result = run_local(b.build(), timeout_s=60.0)
        assert result.ok, result.errors
        assert result.outputs["t"]["transposed"].shape == (n, n)

    def test_many_sequential_runs_release_ports(self, registry):
        """Sockets close cleanly: 10 back-to-back runs don't exhaust fds."""
        from repro.workloads import fourier_pipeline_graph
        for i in range(10):
            graph = fourier_pipeline_graph(registry, n=128, stages=1)
            result = run_local(graph, timeout_s=30.0)
            assert result.ok, (i, result.errors)
