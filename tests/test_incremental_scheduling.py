"""Differential tests: incremental host selection equals the full re-walk.

The incremental selector (PR 7) keeps per-task-class score views and
consumes the repository's :class:`DeltaTracker` journal between rounds;
the ``incremental=False`` path re-walks every candidate from scratch
and is retained verbatim as the oracle.  These tests drive both
selectors through randomized-but-seeded repository mutation sequences
— monitoring updates, up/down flips, weight refinements, constraint
edits, host removal and re-registration — and demand *identical*
answers: the same choices, the same (estimate, address) tie-breaks, the
same ranked alternatives, the same infeasibility verdicts, and exactly
equal predicted floats (both paths share the predictor arithmetic).
"""

from __future__ import annotations

import pytest

from repro.afg import GraphBuilder
from repro.resources.host import HostSpec
from repro.scheduling import HostSelector
from repro.util.errors import NoFeasibleHostError
from repro.util.rng import RngRegistry
from repro.workloads import random_layered_graph

from .conftest import build_federation

SITE = "syracuse"


def make_graph(registry, seed):
    """A layered AFG exercising every equivalence-class axis."""
    graph = random_layered_graph(registry, layers=3, width=3, seed=seed)
    nodes = list(graph.nodes)
    parallel_capable = [n for n in nodes
                        if graph.node(n).definition.parallel_capable]
    assert parallel_capable, "fixture graph needs one parallel task"
    graph.node(parallel_capable[0]).properties.computation_mode = "parallel"
    graph.node(parallel_capable[0]).properties.processors = 2
    serial = next(n for n in nodes if n != parallel_capable[0])
    graph.node(serial).properties.machine_type = "sparc"
    return graph


def spec_of(rec) -> HostSpec:
    """Rebuild the registration spec from a live resource record."""
    return HostSpec(name=rec.host_name, group=rec.group, arch=rec.arch,
                    os=rec.os, cpu_factor=rec.cpu_factor,
                    memory_mb=rec.total_memory_mb)


def apply_op(repo, rng, removed_specs, task_names, round_no):
    """One random repository mutation (every delta-event kind)."""
    rp = repo.resource_performance
    hosts = sorted(r.address for r in rp.all_records())
    t = float(round_no + 1)
    op = int(rng.integers(7))
    if op == 0 and hosts:
        addr = hosts[int(rng.integers(len(hosts)))]
        rp.update_dynamic(addr, cpu_load=float(rng.random()) * 20.0,
                          available_memory_mb=64.0 + float(rng.random()) * 64,
                          time=t)
    elif op == 1 and hosts:
        addr = hosts[int(rng.integers(len(hosts)))]
        if rp.get(addr).status == "up":
            rp.mark_down(addr, time=t)
        else:
            rp.mark_up(addr, time=t)
    elif op == 2 and hosts:
        task = task_names[int(rng.integers(len(task_names)))]
        addr = hosts[int(rng.integers(len(hosts)))]
        repo.task_performance.set_weight(task, addr,
                                         0.5 + float(rng.random()))
    elif op == 3 and hosts:
        task = task_names[int(rng.integers(len(task_names)))]
        addr = hosts[int(rng.integers(len(hosts)))]
        constraints = repo.task_constraints
        if constraints.is_runnable_on(task, addr):
            constraints.unregister_executable(task, addr)
        else:
            constraints.register_executable(task, addr,
                                            f"/usr/vdce/bin/{task}")
    elif op == 4 and len(hosts) > 2:
        addr = hosts[int(rng.integers(len(hosts)))]
        removed_specs.append(spec_of(rp.get(addr)))
        rp.unregister_host(addr)
    elif op == 5 and removed_specs:
        rp.register_host(SITE, removed_specs.pop())
    elif hosts:
        # no-op re-stamp: same dynamic values, fresh version — must not
        # perturb either path
        rec = rp.get(hosts[int(rng.integers(len(hosts)))])
        rp.update_dynamic(rec.address, cpu_load=rec.cpu_load,
                          available_memory_mb=rec.available_memory_mb,
                          time=t)


def assert_same_selection(incremental, oracle, graph):
    inc = incremental.select(graph)
    full = oracle.select(graph)
    assert inc.choices == full.choices
    assert inc.ranked == full.ranked
    assert inc.infeasible == full.infeasible


class TestDifferentialOracle:
    @pytest.mark.parametrize("seed", (3, 17, 29))
    def test_randomized_mutation_sequences_match(self, registry, seed):
        fed = build_federation(registry=registry, hosts_per_site=4,
                               seed=seed)
        repo = fed.repositories[SITE]
        graph = make_graph(registry, seed)
        incremental = HostSelector(repo)
        oracle = HostSelector(repo, incremental=False)
        rng = RngRegistry(seed).stream("mutations")
        removed_specs: list[HostSpec] = []
        tasks = sorted({graph.node(n).task_name for n in graph.nodes})
        assert_same_selection(incremental, oracle, graph)
        for round_no in range(40):
            for _ in range(int(rng.integers(1, 4))):
                apply_op(repo, rng, removed_specs, tasks, round_no)
            assert_same_selection(incremental, oracle, graph)

    def test_journal_compaction_forces_rebuild_and_matches(self, registry):
        fed = build_federation(registry=registry, hosts_per_site=4)
        repo = fed.repositories[SITE]
        graph = make_graph(registry, 1)
        incremental = HostSelector(repo)
        oracle = HostSelector(repo, incremental=False)
        assert_same_selection(incremental, oracle, graph)
        # shrink the journal bound so the burst below compacts it past
        # every cursor the selector holds
        repo.delta.max_journal = 4
        hosts = sorted(r.address
                       for r in repo.resource_performance.all_records())
        for i in range(30):
            repo.resource_performance.update_dynamic(
                hosts[i % len(hosts)], cpu_load=0.3 * (i % 5),
                available_memory_mb=64.0, time=float(i + 1))
        assert repo.delta.events_since(0) is None  # cursor unrecoverable
        assert_same_selection(incremental, oracle, graph)

    def test_compaction_racing_consumer_mid_rebuild(self, registry):
        """Mutations landing mid-rebuild must not be marked consumed.

        Compaction forces a full view rebuild; a monitoring update that
        lands inside the rebuild window — after the walk passed its host
        but before the cursor re-stamp — bumps the journal generation.
        Stamping the post-walk generation would mark that event consumed
        without the walk having seen it, leaving the view stale forever;
        the cursor must be captured before the walk so the next round
        replays the racing event.
        """
        fed = build_federation(registry=registry, hosts_per_site=4)
        repo = fed.repositories[SITE]
        graph = make_graph(registry, 1)
        incremental = HostSelector(repo)
        oracle = HostSelector(repo, incremental=False)
        assert_same_selection(incremental, oracle, graph)  # views built
        repo.delta.max_journal = 4
        rp = repo.resource_performance
        hosts = sorted(r.address for r in rp.all_records())
        for i in range(30):  # compact past every cursor the views hold
            rp.update_dynamic(hosts[i % len(hosts)], cpu_load=0.3 * (i % 5),
                              available_memory_mb=64.0, time=float(i + 1))
        # make hosts[0] the worst candidate, so a stale view never picks
        # it — yet after the race it is the only host left alive
        rp.update_dynamic(hosts[0], cpu_load=19.0,
                          available_memory_mb=64.0, time=31.0)
        assert repo.delta.events_since(0) is None
        # arm the race: a forced rebuild of a multi-candidate view
        # completes its walk, then every other host dies before the
        # cursor is re-stamped (a single-candidate view — e.g. the
        # machine-type-pinned class — could never expose the staleness)
        real_rebuild = incremental._rebuild_view
        fired = []

        def racing_rebuild(view, node, processors):
            real_rebuild(view, node, processors)
            if not fired and len(view.scores) > 1:
                fired.append(True)
                for addr in hosts[1:]:
                    rp.mark_down(addr, time=99.0)

        incremental._rebuild_view = racing_rebuild
        incremental.select(graph)  # rebuild happens; the race fires
        incremental._rebuild_view = real_rebuild
        assert fired
        # next round: the racing mark_downs must reach every view — a
        # consumer that stamped the post-walk generation would still
        # propose the dead hosts here
        assert_same_selection(incremental, oracle, graph)
        fed = build_federation(registry=registry, hosts_per_site=3)
        repo = fed.repositories[SITE]
        b = GraphBuilder(registry, name="one")
        b.task("lu-decomposition", "lu", input_size=50)
        node = b.graph.node("lu")
        incremental = HostSelector(repo)
        oracle = HostSelector(repo, incremental=False)
        assert incremental.select_for_task(node) \
            == oracle.select_for_task(node)
        constraints = repo.task_constraints
        for addr in sorted(constraints.hosts_with("lu-decomposition")):
            constraints.unregister_executable("lu-decomposition", addr)
        with pytest.raises(NoFeasibleHostError):
            incremental.select_for_task(node)
        with pytest.raises(NoFeasibleHostError):
            oracle.select_for_task(node)
        # executables come back: both paths recover the same answer
        for rec in repo.resource_performance.all_records():
            constraints.register_executable("lu-decomposition", rec.address,
                                            "/usr/vdce/bin/lu")
        assert incremental.select_for_task(node) \
            == oracle.select_for_task(node)

    def test_host_removal_then_reregistration_matches(self, registry):
        fed = build_federation(registry=registry, hosts_per_site=4)
        repo = fed.repositories[SITE]
        b = GraphBuilder(registry, name="one")
        b.task("lu-decomposition", "lu", input_size=50)
        node = b.graph.node("lu")
        incremental = HostSelector(repo)
        oracle = HostSelector(repo, incremental=False)
        winner = incremental.select_for_task(node).hosts[0]
        spec = spec_of(repo.resource_performance.get(winner))
        repo.resource_performance.unregister_host(winner)
        after = incremental.select_for_task(node)
        assert after.hosts[0] != winner
        assert after == oracle.select_for_task(node)
        repo.resource_performance.register_host(SITE, spec)
        back = incremental.select_for_task(node)
        assert back.hosts[0] == winner
        assert back == oracle.select_for_task(node)


class TestRankedCacheCoherence:
    def test_undisplacing_update_reuses_ranked_tuple(self, registry):
        """A load pile-up on a host outside every cached top list must
        leave the materialised ranking untouched (object-identical) —
        the displacement test that makes steady-state rounds O(dirty)."""
        fed = build_federation(registry=registry, hosts_per_site=6)
        repo = fed.repositories[SITE]
        b = GraphBuilder(registry, name="one")
        b.task("lu-decomposition", "lu", input_size=50)
        node = b.graph.node("lu")
        selector = HostSelector(repo)
        first = selector.select_ranked(node, max_alternatives=2)
        ranked_hosts = {c.hosts[0] for c in first}
        outside = [r.address
                   for r in repo.resource_performance.hosts_at(SITE)
                   if r.address not in ranked_hosts]
        assert outside, "fixture needs hosts beyond the top-2"
        repo.resource_performance.update_dynamic(
            outside[-1], cpu_load=50.0, available_memory_mb=8.0, time=1.0)
        assert selector.select_ranked(node, max_alternatives=2) is first

    def test_displacing_update_refreshes_ranking(self, registry):
        fed = build_federation(registry=registry, hosts_per_site=6)
        repo = fed.repositories[SITE]
        b = GraphBuilder(registry, name="one")
        b.task("lu-decomposition", "lu", input_size=50)
        node = b.graph.node("lu")
        selector = HostSelector(repo)
        oracle = HostSelector(repo, incremental=False)
        first = selector.select_ranked(node, max_alternatives=2)
        # bury the current winner under load: it must drop out
        for _ in range(5):
            repo.resource_performance.update_dynamic(
                first[0].hosts[0], cpu_load=50.0,
                available_memory_mb=8.0, time=1.0)
        second = selector.select_ranked(node, max_alternatives=2)
        assert second[0].hosts != first[0].hosts
        assert second == oracle.select_ranked(node, max_alternatives=2)
