"""Concurrent multi-application execution.

Paper section 2.2.1: "a site can be a local site for some of the
applications and it can be a remote site for some of the others running
in the VDCE system."  These tests submit several applications at once —
from different local sites — and check isolation (per-execution channels,
correct results for each) and contention effects (co-running applications
slow each other down through genuine host sharing).
"""

import pytest

from repro.workloads import (
    c3i_scenario_graph,
    fourier_pipeline_graph,
    linear_solver_graph,
    quiet_testbed,
)


def drive(vdce, processes, max_time=3600.0, step=5.0):
    deadline = vdce.now + max_time
    while not all(p.triggered for p in processes) and vdce.now < deadline:
        vdce.env.run(until=min(vdce.now + step, deadline))
    for p in processes:
        assert p.triggered, "application did not finish in time"


class TestConcurrentApplications:
    def test_three_apps_two_local_sites(self):
        v = quiet_testbed(seed=31)
        v.start()
        solver = linear_solver_graph(v.registry, n=60)
        fourier = fourier_pipeline_graph(v.registry, n=1000, stages=2)
        c3i = c3i_scenario_graph(v.registry, targets=12, steps=8)
        p1, r1 = v.submit(solver, "syracuse", k_remote_sites=1)
        p2, r2 = v.submit(fourier, "rome", k_remote_sites=1)
        p3, r3 = v.submit(c3i, "syracuse", k_remote_sites=1)
        drive(v, [p1, p2, p3])
        assert r1.status == r2.status == r3.status == "completed"
        # each application's numerics are intact despite interleaving
        assert r1.results()["verify"]["norm"] < 1e-8
        assert len(r2.results()["peaks"]["peaks"]) == 2
        assert r3.results()["plan"]["plan"].shape[1] == 3

    def test_execution_ids_unique_and_isolated(self):
        v = quiet_testbed(seed=32)
        v.start()
        g1 = fourier_pipeline_graph(v.registry, n=512, stages=1)
        g2 = fourier_pipeline_graph(v.registry, n=512, stages=1)
        p1, r1 = v.submit(g1, "syracuse")
        p2, r2 = v.submit(g2, "syracuse")
        drive(v, [p1, p2])
        assert r1.execution_id != r2.execution_id
        assert len(r1.completions) == len(g1)
        assert len(r2.completions) == len(g2)

    def test_same_site_local_and_remote_roles(self):
        """Rome serves as remote scheduler for a syracuse app while being
        the local site of its own app, simultaneously."""
        v = quiet_testbed(seed=33)
        v.start()
        a = linear_solver_graph(v.registry, n=50)
        b = c3i_scenario_graph(v.registry, targets=10, steps=6)
        pa, ra = v.submit(a, "syracuse", k_remote_sites=1)
        pb, rb = v.submit(b, "rome", k_remote_sites=1)
        drive(v, [pa, pb])
        assert ra.report.local_site == "syracuse"
        assert rb.report.local_site == "rome"
        assert "rome" in ra.report.consulted_sites
        assert "syracuse" in rb.report.consulted_sites

    def test_contention_slows_corunners(self):
        """Two identical apps sharing hosts take longer than one alone
        (genuine time-sharing, not accounting fiction)."""
        def solo():
            v = quiet_testbed(seed=34)
            v.start()
            g = linear_solver_graph(v.registry, n=120)
            run = v.run_application(g, "syracuse", k_remote_sites=0,
                                    max_sim_time_s=3600)
            return run.execution_time

        def duo():
            v = quiet_testbed(seed=34)
            v.start()
            g1 = linear_solver_graph(v.registry, n=120)
            g2 = linear_solver_graph(v.registry, n=120)
            p1, r1 = v.submit(g1, "syracuse", k_remote_sites=0)
            p2, r2 = v.submit(g2, "syracuse", k_remote_sites=0)
            drive(v, [p1, p2])
            return max(r1.execution_time, r2.execution_time)

        assert duo() > solo() * 1.15

    def test_sequential_apps_learn_weights(self):
        """Completed executions refine the task-performance database
        (EWMA weight updates), so repeat submissions stay consistent."""
        v = quiet_testbed(seed=35)
        v.start()
        tp = v.repositories["syracuse"].task_performance
        g = linear_solver_graph(v.registry, n=60)
        run1 = v.run_application(g, "syracuse", max_sim_time_s=3600)
        hist_after_1 = len(tp.history("lu-decomposition"))
        g2 = linear_solver_graph(v.registry, n=60)
        run2 = v.run_application(g2, "syracuse", max_sim_time_s=3600)
        hist_after_2 = len(tp.history("lu-decomposition"))
        assert run1.status == run2.status == "completed"
        assert hist_after_2 >= hist_after_1
        # weights remain sane (positive, near the calibrated truth)
        lu_host = run2.table.get("lu").host
        if lu_host.startswith("syracuse/"):
            w = tp.weight("lu-decomposition", lu_host, default=None)
            assert 0.1 < w < 10.0
