"""Tests for deterministic id generation and seeded RNG streams."""

import threading

import pytest

from repro.util.ids import IdFactory, fresh_id, reset_global_ids
from repro.util.rng import RngRegistry


class TestIdFactory:
    def test_sequential_per_prefix(self):
        f = IdFactory()
        assert f.fresh("a") == "a-1"
        assert f.fresh("a") == "a-2"
        assert f.fresh("b") == "b-1"

    def test_reset(self):
        f = IdFactory()
        f.fresh("x")
        f.reset()
        assert f.fresh("x") == "x-1"

    def test_global_factory(self):
        reset_global_ids()
        assert fresh_id("g") == "g-1"
        assert fresh_id("g") == "g-2"
        reset_global_ids()
        assert fresh_id("g") == "g-1"

    def test_thread_safety_no_duplicates(self):
        f = IdFactory()
        out: list[str] = []
        lock = threading.Lock()

        def worker():
            local = [f.fresh("t") for _ in range(200)]
            with lock:
                out.extend(local)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(out) == len(set(out)) == 1600


class TestRngRegistry:
    def test_same_seed_same_draws(self):
        a = RngRegistry(7).stream("x").random(5)
        b = RngRegistry(7).stream("x").random(5)
        assert (a == b).all()

    def test_different_streams_independent(self):
        r = RngRegistry(7)
        a = r.stream("x").random(5)
        b = r.stream("y").random(5)
        assert not (a == b).all()

    def test_stream_cached(self):
        r = RngRegistry(0)
        assert r.stream("s") is r.stream("s")

    def test_registration_order_irrelevant(self):
        r1 = RngRegistry(3)
        r1.stream("first")
        v1 = r1.stream("second").random()
        r2 = RngRegistry(3)
        v2 = r2.stream("second").random()
        assert v1 == v2

    def test_spawn_derives_new_namespace(self):
        r = RngRegistry(5)
        child = r.spawn("rep-1")
        assert child.seed != r.seed
        # deterministic derivation
        assert RngRegistry(5).spawn("rep-1").seed == child.seed
        assert RngRegistry(5).spawn("rep-2").seed != child.seed

    def test_rejects_non_int_seed(self):
        with pytest.raises(TypeError):
            RngRegistry("abc")  # type: ignore[arg-type]
