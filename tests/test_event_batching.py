"""Batched event delivery: the kernel primitive and the network fan-out.

PR 7 turned same-tick ``Network.send`` fan-outs into vectorized batch
events: :meth:`Environment.call_later` puts one ``_Callback`` heap entry
behind a whole delivery run, :meth:`Store.put_nowait` skips the
pending-put event on unbounded mailboxes, and :meth:`Network.send_batch`
coalesces consecutive same-delay messages onto one entry.  The contract
is *semantic equivalence*: a batch must be indistinguishable — message
contents, arrival order, stats, fault-hook consultations, simulated
clock — from the loop of plain ``send`` calls it replaces (which
``batching=False`` still performs, and the chaos CI compares against).
"""

from __future__ import annotations

import pytest

from repro.net import ATM_OC3, Network, Topology
from repro.net.network import FaultAction
from repro.simcore import Environment
from repro.simcore.store import Store
from repro.util.errors import (
    ChannelError,
    ConfigurationError,
    SimulationError,
)


# ---------------------------------------------------------------------------
# the kernel primitive
# ---------------------------------------------------------------------------

class TestCallLater:
    def test_fires_at_the_scheduled_time_in_seq_order(self):
        env = Environment()
        order = []
        env.call_later(2.0, order.append, "late")
        env.call_later(1.0, order.append, "early-first")
        env.call_later(1.0, order.append, "early-second")
        env.run()
        assert order == ["early-first", "early-second", "late"]
        assert env.now == 2.0

    def test_interleaves_with_processes_at_the_same_instant(self):
        env = Environment()
        order = []

        def proc(env):
            yield env.timeout(1.0)
            order.append("process")

        env.process(proc(env))
        env.call_later(1.0, order.append, "callback")
        env.run()
        # seq order decides ties: the callback entry was pushed at setup,
        # the process's timeout only when its bootstrap ran at t=0
        assert order == ["callback", "process"]

    def test_shared_list_keeps_growing_until_the_entry_fires(self):
        env = Environment()
        seen = []
        run: list[str] = []
        env.call_later(1.0, lambda entries: seen.extend(entries), run)
        run.append("a")
        run.append("b")
        env.run()
        assert seen == ["a", "b"]

    def test_negative_delay_rejected(self):
        env = Environment()
        with pytest.raises(SimulationError):
            env.call_later(-0.1, print, None)


class TestPutNowait:
    def test_unbounded_appends_like_put(self):
        env = Environment()
        store = Store(env)
        store.put_nowait("x")
        store.put_nowait("y")
        assert store.try_get() == "x"
        assert store.try_get() == "y"

    def test_hands_item_straight_to_waiting_getter(self):
        env = Environment()
        store = Store(env)
        got = []

        def getter(env):
            item = yield store.get()
            got.append(item)

        env.process(getter(env))
        env.run()
        store.put_nowait("direct")
        env.run()
        assert got == ["direct"]
        assert len(store) == 0

    def test_bounded_store_falls_back_to_blocking_put(self):
        env = Environment()
        store = Store(env, capacity=1)
        store.put_nowait("first")
        store.put_nowait("second")  # must queue, not overflow
        assert len(store.items) == 1
        assert store.try_get() == "first"
        env.run()
        assert store.try_get() == "second"


# ---------------------------------------------------------------------------
# the network fan-out
# ---------------------------------------------------------------------------

def make_net(batching: bool) -> tuple[Environment, Network]:
    env = Environment()
    topo = Topology()
    topo.add_site("s1")
    topo.add_site("s2")
    topo.connect("s1", "s2", ATM_OC3)
    return env, Network(env, topo, batching=batching)


def drain(box) -> list:
    out = []
    while True:
        msg = box.try_get()
        if msg is None:
            return out
        out.append((msg.src, msg.dst, msg.kind, msg.payload,
                    msg.size_bytes))


def run_fanout(batching: bool, hook=None):
    """One mixed intra-/cross-site fan-out; returns observables."""
    env, net = make_net(batching)
    net.register("s1/h0/src")
    dsts = [f"s1/h{i}/svc" for i in range(1, 4)] \
        + [f"s2/h{i}/svc" for i in range(1, 3)]
    boxes = {dst: net.register(dst) for dst in dsts}
    if hook is not None:
        net.fault_hook = hook
    payloads = [f"portion-{i}" for i in range(len(dsts))]
    sizes = [128.0 * (i + 1) for i in range(len(dsts))]
    msgs = net.send_batch("s1/h0/src", dsts, "alloc",
                          payloads=payloads, sizes=sizes)
    env.run()
    return {
        "sent": [(m.src, m.dst, m.kind, m.payload, m.size_bytes)
                 for m in msgs],
        "delivered": {dst: drain(box) for dst, box in boxes.items()},
        "clock": env.now,
        "stats": (net.stats.messages, net.stats.bytes, net.stats.dropped,
                  net.stats.injected_drops, net.stats.injected_duplicates,
                  dict(net.stats.by_kind), dict(net.stats.bytes_by_kind)),
    }


class TestBatchEquivalence:
    def test_batch_matches_unbatched_loop_exactly(self):
        assert run_fanout(batching=True) == run_fanout(batching=False)

    def test_fault_hook_order_drops_and_duplicates_match(self):
        def make_hook(calls):
            def hook(msg):
                calls.append(msg.dst)
                if msg.dst.startswith("s1/h2"):
                    return FaultAction(drop=True)
                if msg.dst.startswith("s2/h1"):
                    return FaultAction(duplicates=1, extra_delay_s=0.5)
                return None
            return hook

        batched_calls: list[str] = []
        unbatched_calls: list[str] = []
        batched = run_fanout(batching=True, hook=make_hook(batched_calls))
        unbatched = run_fanout(batching=False,
                               hook=make_hook(unbatched_calls))
        assert batched_calls == unbatched_calls  # injector RNG order
        assert batched == unbatched
        assert batched["delivered"]["s1/h2/svc"] == []      # dropped
        assert len(batched["delivered"]["s2/h1/svc"]) == 2  # duplicated

    def test_multicast_rides_send_batch(self):
        env, net = make_net(batching=True)
        net.register("s1/h0/src")
        boxes = [net.register(f"s1/h{i}/svc") for i in range(1, 4)]
        net.multicast("s1/h0/src", (f"s1/h{i}/svc" for i in range(1, 4)),
                      "afg", payload={"graph": "g"}, size_bytes=64)
        env.run()
        for box in boxes:
            [(_, _, kind, payload, size)] = drain(box)
            assert (kind, payload, size) == ("afg", {"graph": "g"}, 64)


class TestBatchSemantics:
    def test_same_delay_run_shares_one_heap_entry(self):
        env, net = make_net(batching=True)
        net.register("s1/h0/src")
        dsts = [f"s1/h{i}/svc" for i in range(1, 101)]
        for dst in dsts:
            net.register(dst)
        net.send_batch("s1/h0/src", dsts, "echo", payload=1, size_bytes=32)
        # 100 same-site, same-size messages share one modelled delay:
        # exactly one queue entry carries the whole run
        assert len(env._queue) == 1
        env.run()
        assert net.stats.messages == 100
        assert net.stats.dropped == 0

    def test_down_destination_dropped_at_send(self):
        env, net = make_net(batching=True)
        net.register("s1/h0/src")
        boxes = {f"s1/h{i}/svc": net.register(f"s1/h{i}/svc")
                 for i in (1, 2)}
        net.is_up = lambda host: host != "s1/h1"
        net.send_batch("s1/h0/src", list(boxes), "ping")
        env.run()
        assert net.stats.dropped == 1
        assert drain(boxes["s1/h1/svc"]) == []
        assert len(drain(boxes["s1/h2/svc"])) == 1

    def test_mid_flight_down_drops_on_arrival(self):
        env, net = make_net(batching=True)
        net.register("s1/h0/src")
        box = net.register("s1/h1/svc")
        net.send_batch("s1/h0/src", ["s1/h1/svc"], "ping")
        net.is_up = lambda host: host != "s1/h1"  # dies mid-flight
        env.run()
        assert net.stats.dropped == 1
        assert drain(box) == []

    def test_misaligned_overrides_rejected(self):
        env, net = make_net(batching=True)
        net.register("s1/h0/src")
        net.register("s1/h1/svc")
        with pytest.raises(ConfigurationError):
            net.send_batch("s1/h0/src", ["s1/h1/svc"], "x",
                           payloads=["a", "b"])
        with pytest.raises(ConfigurationError):
            net.send_batch("s1/h0/src", ["s1/h1/svc"], "x",
                           sizes=[1.0, 2.0])

    def test_unregistered_destination_raises(self):
        env, net = make_net(batching=True)
        net.register("s1/h0/src")
        with pytest.raises(ChannelError):
            net.send_batch("s1/h0/src", ["s1/ghost/svc"], "x")
