"""Membership state machine: units, elasticity, and seeded properties.

The property suite (satellite of the elastic-membership PR) drives
randomized-but-seeded federations through link partitions, elastic
joins, and drained leaves while applications run, and asserts the
robustness contract: no execution is ever stranded (every run reaches a
terminal state, completed runs account for every task exactly once) and
the membership ledger is byte-identical across same-seed runs.
"""

from __future__ import annotations

import pytest

from repro.faults import FaultPlan, LinkDown
from repro.federation import Federation, MembershipConfig, MembershipDaemon
from repro.net.topology import T1_WAN
from repro.resources.host import HostSpec
from repro.util.errors import ConfigurationError
from repro.workloads import (
    linear_solver_graph,
    quiet_testbed,
    wide_area_testbed,
)


class TestMembershipConfig:
    def test_defaults_are_valid(self):
        config = MembershipConfig()
        assert config.suspect_after_s > config.heartbeat_period_s

    def test_rejects_non_positive_period(self):
        with pytest.raises(ConfigurationError):
            MembershipConfig(heartbeat_period_s=0.0)

    def test_rejects_suspect_horizon_inside_one_period(self):
        with pytest.raises(ConfigurationError):
            MembershipConfig(heartbeat_period_s=5.0, suspect_after_s=4.0)


class TestDaemonStateMachine:
    def build(self, seed: int = 0):
        vdce = quiet_testbed(seed=seed)
        vdce.start()
        fed = vdce.enable_membership()
        return vdce, fed

    def test_steady_state_stays_member(self):
        vdce, fed = self.build()
        vdce.run(until=30.0)
        for observer in ("syracuse", "rome"):
            assert fed.daemon(observer).usable_sites() == \
                [p for p in ("syracuse", "rome") if p != observer]
            assert fed.daemon(observer).quarantined_sites() == []

    def test_partition_quarantines_then_heartbeat_rejoins(self):
        vdce, fed = self.build()
        vdce.apply_fault_plan(FaultPlan([
            LinkDown("syracuse", "rome", at=5.0, restore_after=20.0)]))
        vdce.run(until=20.0)
        assert fed.quarantined("syracuse") == ["rome"]
        assert fed.quarantined("rome") == ["syracuse"]
        assert not fed.is_usable("syracuse", "rome")
        vdce.run(until=40.0)
        assert fed.quarantined("syracuse") == []
        events = [e["event"] for e in fed.daemon("syracuse").events]
        assert events.count("quarantine") == 1
        assert events.count("rejoin") == 1

    def test_permanent_partition_never_rejoins(self):
        vdce, fed = self.build()
        vdce.apply_fault_plan(FaultPlan([
            LinkDown("syracuse", "rome", at=5.0)]))
        vdce.run(until=60.0)
        assert fed.quarantined("syracuse") == ["rome"]
        assert all(e["event"] != "rejoin"
                   for e in fed.daemon("syracuse").events)

    def test_self_peer_rejected(self):
        vdce, fed = self.build()
        with pytest.raises(ConfigurationError):
            fed.daemon("rome").seed_peer("rome")

    def test_observer_is_always_usable_to_itself(self):
        _vdce, fed = self.build()
        assert fed.is_usable("rome", "rome")

    def test_site_filter_feeds_the_site_managers(self):
        vdce, fed = self.build()
        vdce.apply_fault_plan(FaultPlan([
            LinkDown("syracuse", "rome", at=5.0)]))
        vdce.run(until=20.0)
        sm = vdce.site_managers["syracuse"]
        assert sm.site_filter is not None
        assert not sm.site_filter("rome")
        assert sm.site_filter("syracuse")

    def test_unknown_daemon_raises(self):
        _vdce, fed = self.build()
        with pytest.raises(ConfigurationError):
            fed.daemon("atlantis")

    def test_enable_membership_is_idempotent(self):
        vdce, fed = self.build()
        assert vdce.enable_membership() is fed

    def test_enable_membership_requires_start(self):
        vdce = quiet_testbed(seed=0)
        with pytest.raises(ConfigurationError):
            vdce.enable_membership()


class TestElasticOperations:
    HOSTS = [HostSpec(name="h0", arch="x86", os="linux", cpu_factor=1.2,
                      memory_mb=64, group="g0"),
             HostSpec(name="h1", arch="sparc", os="solaris",
                      cpu_factor=1.0, memory_mb=128, group="g0")]

    def test_join_requires_membership_and_links(self):
        vdce = quiet_testbed(seed=0)
        vdce.start()
        with pytest.raises(ConfigurationError):
            vdce.site_join("geneva", hosts=self.HOSTS,
                           links={"syracuse": T1_WAN})
        vdce.enable_membership()
        with pytest.raises(ConfigurationError):
            vdce.site_join("geneva", hosts=self.HOSTS, links={})

    def test_join_becomes_member_everywhere_and_schedulable(self):
        vdce = quiet_testbed(seed=1)
        vdce.start()
        fed = vdce.enable_membership()
        vdce.run(until=5.0)
        vdce.site_join("geneva", hosts=self.HOSTS,
                       links={"syracuse": T1_WAN, "rome": T1_WAN})
        vdce.run(until=15.0)
        for observer in ("syracuse", "rome"):
            assert "geneva" in fed.daemon(observer).usable_sites()
        # the joiner holds a calibrated, constraint-complete repository
        repo = vdce.repositories["geneva"]
        assert len(repo.resource_performance.hosts_at("geneva")) == 2
        graph = linear_solver_graph(vdce.registry, n=40)
        for nid in graph.nodes:
            graph.node(nid).properties.preferred_site = "geneva"
        run = vdce.run_application(graph, "syracuse", k_remote_sites=2)
        assert run.status == "completed"
        assert {e.site for e in run.table.entries.values()} >= {"geneva"}

    def test_leave_drains_then_detaches(self):
        vdce = quiet_testbed(seed=2)
        vdce.start()
        fed = vdce.enable_membership()
        vdce.run(until=5.0)
        proc = vdce.site_leave("rome")
        while not proc.triggered and vdce.now < 120.0:
            vdce.run(until=vdce.now + 5.0)
        assert proc.triggered
        assert "rome" not in vdce.world.sites
        assert "rome" not in vdce.site_managers
        assert "rome" not in vdce.topology.sites
        view = fed.daemon("syracuse").peers["rome"]
        assert view.status == "left"
        # the survivor keeps running without stray daemon crashes
        vdce.run(until=vdce.now + 20.0)
        assert vdce.env.failed_processes == []

    def test_leave_mid_run_relocates_the_leavers_tasks(self):
        vdce = quiet_testbed(seed=3)
        vdce.start()
        vdce.enable_membership()
        graph = linear_solver_graph(vdce.registry, n=120)
        for i, nid in enumerate(graph.nodes):
            graph.node(nid).properties.preferred_site = \
                ("syracuse", "rome")[i % 2]
        process, run = vdce.submit(graph, "syracuse", k_remote_sites=1)
        vdce.run(until=2.0)
        proc = vdce.site_leave("rome", drain_timeout_s=10.0)
        deadline = vdce.now + 600.0
        while not (proc.triggered and process.triggered) \
                and vdce.now < deadline:
            vdce.run(until=vdce.now + 5.0)
        assert process.triggered and process.ok
        assert run.status == "completed"
        assert len(run.completions) == len(graph)
        assert "rome" not in vdce.world.sites
        assert vdce.env.failed_processes == []


class TestReachableCapacity:
    def test_counts_shrink_under_quarantine(self):
        vdce = quiet_testbed(seed=0, hosts_per_site=3)
        vdce.start()
        assert vdce.reachable_capacity("syracuse") == 6
        vdce.enable_membership()
        vdce.apply_fault_plan(FaultPlan([
            LinkDown("syracuse", "rome", at=5.0)]))
        vdce.run(until=20.0)
        assert vdce.reachable_capacity("syracuse") == 3
        assert vdce.reachable_capacity("rome") == 3


def run_property_federation(seed: int) -> dict:
    """One randomized elastic scenario; returns its observables.

    A three-site chain runs two pipelined applications while a seeded
    schedule cuts a random WAN link (with restore), joins an elastic
    fourth site, and drains away a random non-coordinator site.
    """
    vdce = wide_area_testbed(n_sites=3, hosts_per_site=3, seed=seed,
                             with_loads=False, trace=False)
    vdce.start()
    fed = vdce.federation = None  # appease linters; reassigned below
    fed = vdce.enable_membership()
    rng = vdce.world.rng.stream("membership-property")
    links = [("site0", "site1"), ("site1", "site2")]
    a, b = links[int(rng.integers(len(links)))]
    cut_at = 5.0 + float(rng.integers(10))
    restore = 15.0 + float(rng.integers(10))
    vdce.apply_fault_plan(FaultPlan([
        LinkDown(a, b, at=cut_at, restore_after=restore)]))

    graphs, processes, runs = [], [], []
    for idx in range(2):
        graph = linear_solver_graph(vdce.registry, n=60)
        sites = sorted(vdce.world.sites)
        for i, nid in enumerate(graph.nodes):
            graph.node(nid).properties.preferred_site = \
                sites[(i + idx) % len(sites)]
        process, run = vdce.submit(graph, "site0", k_remote_sites=2)
        graphs.append(graph)
        processes.append(process)
        runs.append(run)

    join_at = 10.0 + float(rng.integers(10))
    vdce.run(until=join_at)
    vdce.site_join(
        f"elastic{seed}",
        hosts=[HostSpec(name="h0", arch="x86", os="linux",
                        cpu_factor=1.3, memory_mb=64, group="g0")],
        links={"site2": T1_WAN})
    joined = {"done": True}
    deadline = 900.0
    while not all(p.triggered for p in processes) and vdce.now < deadline:
        vdce.run(until=vdce.now + 5.0)
    # after the applications settle, drain away a non-coordinator site
    leaver = ("site1", "site2")[int(rng.integers(2))]
    leave_proc = vdce.site_leave(leaver, drain_timeout_s=30.0)
    while not leave_proc.triggered and vdce.now < deadline + 200.0:
        vdce.run(until=vdce.now + 5.0)
    return {
        "statuses": [run.status for run in runs],
        "completions": [sorted(run.completions) for run in runs],
        "expected": [sorted(graph.nodes) for graph in graphs],
        "joined": joined["done"],
        "left": leave_proc.triggered and leaver not in vdce.world.sites,
        "failed": [name for _, name, _ in vdce.env.failed_processes],
        "ledger": fed.ledger_json(),
    }


@pytest.mark.parametrize("seed", [101, 202, 303])
class TestMembershipProperties:
    def test_never_strands_or_duplicates_an_execution(self, seed):
        outcome = run_property_federation(seed)
        assert outcome["failed"] == []
        assert outcome["joined"] and outcome["left"]
        for status, got, expected in zip(outcome["statuses"],
                                         outcome["completions"],
                                         outcome["expected"]):
            # never stranded: terminal, with every task completed
            # exactly once in the coordinator's dedup'd view
            assert status == "completed", f"stranded run: {status}"
            assert got == expected

    def test_ledger_is_deterministic_per_seed(self, seed):
        assert run_property_federation(seed)["ledger"] == \
            run_property_federation(seed)["ledger"]
