"""Tests for the web-based repository interface (real HTTP)."""

import json
import urllib.error
import urllib.request

import pytest

from repro.repository import SiteRepository
from repro.repository.webserver import RepositoryWebServer
from repro.resources import HostSpec


@pytest.fixture
def server():
    repo = SiteRepository("syracuse")
    repo.user_accounts.add_user("haluk", "secret", priority=7,
                                access_domain="multi-site")
    repo.resource_performance.register_host(
        "syracuse", HostSpec(name="h1", arch="sparc", os="solaris"))
    repo.resource_performance.update_dynamic("syracuse/h1", 0.4, 96.0,
                                             time=3.0)
    repo.task_performance.register_task("lu-decomposition", 1.0,
                                        memory_mb=24.0)
    repo.task_performance.record_execution("lu-decomposition",
                                           "syracuse/h1", 100.0, 1.2,
                                           time=5.0)
    repo.task_constraints.register_executable("lu-decomposition",
                                              "syracuse/h1", "/bin/lu")
    web = RepositoryWebServer(repo)
    yield web
    web.close()


def get(server, path):
    with urllib.request.urlopen(f"{server.url}{path}", timeout=5) as resp:
        return resp.status, json.loads(resp.read())


def post(server, path, doc):
    req = urllib.request.Request(
        f"{server.url}{path}", data=json.dumps(doc).encode(),
        headers={"Content-Type": "application/json"}, method="POST")
    with urllib.request.urlopen(req, timeout=5) as resp:
        return resp.status, json.loads(resp.read())


class TestReadEndpoints:
    def test_index(self, server):
        status, doc = get(server, "/")
        assert status == 200
        assert doc["site"] == "syracuse"
        assert "/resource-performance" in doc["endpoints"]

    def test_resource_performance_list(self, server):
        status, doc = get(server, "/resource-performance")
        assert status == 200
        assert len(doc) == 1
        assert doc[0]["host_name"] == "h1"
        assert doc[0]["cpu_load"] == 0.4

    def test_single_host_record(self, server):
        status, doc = get(server, "/resource-performance/syracuse/h1")
        assert status == 200
        assert doc["arch"] == "sparc"
        assert doc["available_memory_mb"] == 96.0

    def test_missing_host_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as exc:
            get(server, "/resource-performance/syracuse/ghost")
        assert exc.value.code == 404

    def test_task_performance_listing(self, server):
        status, doc = get(server, "/task-performance")
        assert status == 200
        assert doc["tasks"] == ["lu-decomposition"]

    def test_task_record_with_history(self, server):
        status, doc = get(server, "/task-performance/lu-decomposition")
        assert status == 200
        assert doc["record"]["memory_mb"] == 24.0
        assert len(doc["executions"]) == 1
        assert doc["executions"][0]["host"] == "syracuse/h1"

    def test_task_constraints(self, server):
        status, doc = get(server, "/task-constraints/lu-decomposition")
        assert status == 200
        assert doc["hosts"] == ["syracuse/h1"]

    def test_unknown_endpoint_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as exc:
            get(server, "/nonsense")
        assert exc.value.code == 404


class TestLogin:
    def test_valid_login(self, server):
        status, doc = post(server, "/login",
                           {"user": "haluk", "password": "secret"})
        assert status == 200
        assert doc["user_name"] == "haluk"
        assert doc["priority"] == 7
        assert "password" not in json.dumps(doc)

    def test_invalid_login_401(self, server):
        with pytest.raises(urllib.error.HTTPError) as exc:
            post(server, "/login", {"user": "haluk", "password": "wrong"})
        assert exc.value.code == 401

    def test_malformed_body_400(self, server):
        req = urllib.request.Request(
            f"{server.url}/login", data=b"not json",
            headers={"Content-Type": "application/json"}, method="POST")
        with pytest.raises(urllib.error.HTTPError) as exc:
            urllib.request.urlopen(req, timeout=5)
        assert exc.value.code == 400

    def test_post_to_wrong_path_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as exc:
            post(server, "/resource-performance", {})
        assert exc.value.code == 404


class TestLifecycle:
    def test_close_releases_port(self):
        repo = SiteRepository("s1")
        web = RepositoryWebServer(repo)
        host, port = web.address
        web.close()
        # a fresh server can bind the same port immediately
        import socket
        with socket.socket() as sock:
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            sock.bind((host, port))

    def test_reflects_live_updates(self, server):
        """The web view is the live repository, not a snapshot."""
        # the fixture's repo object is reachable through the handler class
        repo = server._httpd.RequestHandlerClass.repository
        repo.resource_performance.update_dynamic("syracuse/h1", 2.5, 10.0,
                                                 time=9.0)
        _status, doc = get(server, "/resource-performance/syracuse/h1")
        assert doc["cpu_load"] == 2.5
