"""DRF allocator, tenant gate, and the fairness property.

The headline property (the ISSUE's acceptance bound): **no tenant sits
below its fair share while another tenant exceeds its fair share and
the first has pending demand**.  Progressive filling guarantees it
decision-by-decision; the replay engine audits every dispatch and
counts violations — these tests pin both the unit mechanics and the
end-to-end audit at zero.
"""

import pytest

from repro.repository import TenantRecord
from repro.scheduling.registry import TenantGate
from repro.traffic import (
    DRFAllocator,
    DRFGatedScheduler,
    TenantOverShareError,
    TenantShareFilter,
    fairness_stats,
    make_tenants,
)


def allocator(tenants=None, procs=100, mem=100_000.0):
    return DRFAllocator(capacity_procs=procs, capacity_memory_mb=mem,
                        tenants=tenants or make_tenants(3))


class TestAllocator:
    def test_demand_and_bookkeeping(self):
        alloc = allocator()
        demand = alloc.demand_of(4, 256.0)
        assert demand == (4.0, 1024.0)
        alloc.allocate("t00", demand)
        assert alloc.allocated("t00") == demand
        assert alloc.free() == (96.0, 98_976.0)
        alloc.release("t00", demand)
        assert alloc.allocated("t00") == (0.0, 0.0)

    def test_release_more_than_allocated_raises(self):
        alloc = allocator()
        with pytest.raises(ValueError, match="released more"):
            alloc.release("t00", (1.0, 0.0))

    def test_dominant_share_is_max_axis_over_weight(self):
        tenants = {"a": TenantRecord(name="a", weight=2.0),
                   "b": TenantRecord(name="b")}
        alloc = allocator(tenants)
        alloc.allocate("a", (10.0, 50_000.0))  # memory-dominant: 0.5
        assert alloc.dominant_share("a") == pytest.approx(0.5 / 2.0)
        alloc.allocate("b", (20.0, 1000.0))    # cpu-dominant: 0.2
        assert alloc.dominant_share("b") == pytest.approx(0.2)

    def test_pick_progressive_filling(self):
        alloc = allocator()
        alloc.allocate("t00", (50.0, 100.0))
        alloc.allocate("t01", (10.0, 100.0))
        assert alloc.pick(["t00", "t01", "t02"]) == "t02"
        alloc.allocate("t02", (20.0, 100.0))
        assert alloc.pick(["t00", "t01", "t02"]) == "t01"
        assert alloc.pick([]) is None

    def test_pick_name_tie_break(self):
        alloc = allocator()
        assert alloc.pick(["t02", "t01", "t00"]) == "t00"

    def test_quota_and_capacity_predicates(self):
        tenants = {"q": TenantRecord(name="q", quota_procs=8,
                                     quota_memory_mb=4096.0)}
        alloc = DRFAllocator(100, 100_000.0, tenants)
        assert alloc.can_allocate("q", (8.0, 4096.0))
        assert not alloc.can_allocate("q", (9.0, 100.0))
        assert not alloc.can_allocate("q", (1.0, 5000.0))
        alloc.allocate("q", (8.0, 1.0))
        assert not alloc.can_allocate("q", (1.0, 1.0))  # quota exhausted
        # feasible() ignores current allocation: could-ever-run
        assert alloc.feasible("q", (8.0, 4096.0))
        assert not alloc.feasible("q", (9.0, 1.0))
        assert not alloc.feasible("q", (200.0, 1.0))  # beyond capacity

    def test_weighted_pick_prefers_heavier_tenant(self):
        tenants = {"heavy": TenantRecord(name="heavy", weight=3.0),
                   "light": TenantRecord(name="light", weight=1.0)}
        alloc = DRFAllocator(90, 90_000.0, tenants)
        # equal raw allocation: the heavier tenant's weighted share is
        # lower, so it goes next
        alloc.allocate("heavy", (30.0, 100.0))
        alloc.allocate("light", (30.0, 100.0))
        assert alloc.pick(["heavy", "light"]) == "heavy"


class TestFairnessProperty:
    def test_no_starvation_below_fair_share(self):
        """The acceptance property, adversarially: one greedy tenant
        floods, two modest tenants trickle; whenever capacity frees,
        the lowest-share tenant with pending demand is served first, so
        the greedy tenant can never hold above-fair-share allocation
        while a below-share tenant waits."""
        tenants = make_tenants(3)
        alloc = DRFAllocator(12, 12_000.0, tenants)
        pending = {"t00": 30, "t01": 6, "t02": 6}  # t00 floods
        running = []
        violations = 0
        for _step in range(200):
            # complete the oldest job to free capacity
            if running and (_step % 2 or not any(pending.values())):
                tenant, demand = running.pop(0)
                alloc.release(tenant, demand)
            demand = (2.0, 512.0)
            eligible = [t for t in sorted(pending)
                        if pending[t] and alloc.can_allocate(t, demand)]
            pick = alloc.pick(eligible)
            if pick is None:
                continue
            min_share = min(alloc.dominant_share(t) for t in eligible)
            if alloc.dominant_share(pick) > min_share + 1e-12:
                violations += 1
            pending[pick] -= 1
            alloc.allocate(pick, demand)
            running.append((pick, demand))
        assert violations == 0
        assert pending["t01"] == 0 and pending["t02"] == 0, \
            "modest tenants starved behind the flooding tenant"

    def test_fairness_stats(self):
        stats = fairness_stats({"a": 1.0, "b": 1.0, "c": 1.0})
        assert stats["jain_index"] == pytest.approx(1.0)
        skewed = fairness_stats({"a": 3.0, "b": 0.0, "c": 0.0})
        assert skewed["jain_index"] == pytest.approx(1 / 3)
        assert skewed["max_share"] == 3.0
        empty = fairness_stats({})
        assert empty["jain_index"] == 1.0


class TestTenantGate:
    def test_share_filter_satisfies_protocol(self):
        gate = TenantShareFilter(allocator(), mem_per_proc_mb=256.0)
        assert isinstance(gate, TenantGate)

    def test_admits_prices_memory_from_default(self):
        alloc = DRFAllocator(
            10, 2560.0,
            {"t": TenantRecord(name="t")})
        gate = TenantShareFilter(alloc, mem_per_proc_mb=256.0)
        assert gate.admits("t", 10, 0.0)       # exactly capacity
        assert not gate.admits("t", 11, 0.0)   # procs over
        assert not gate.admits("t", 5, 3000.0)  # explicit memory over

    def test_precedence_orders_by_share(self):
        alloc = allocator()
        gate = TenantShareFilter(alloc)
        alloc.allocate("t00", (10.0, 0.0))
        assert gate.precedence("t01") < gate.precedence("t00")

    def test_gated_scheduler_refuses_over_share(self):
        class FakeScheduler:
            name = "fake"

            def schedule(self, graph):
                return "table"

        alloc = DRFAllocator(4, 4096.0,
                             {"t": TenantRecord(name="t")})
        gate = TenantShareFilter(alloc, mem_per_proc_mb=256.0)
        gated = DRFGatedScheduler(FakeScheduler(), gate, "t", nproc=2)
        assert gated.name == "drf(fake)"
        assert gated.schedule(None) == "table"
        alloc.allocate("t", (4.0, 1024.0))  # now full
        with pytest.raises(TenantOverShareError):
            gated.schedule(None)


class TestMakeTenants:
    def test_weight_skew_spread(self):
        tenants = make_tenants(4, weight_skew=1.0)
        weights = [tenants[f"t{i:02d}"].weight for i in range(4)]
        assert weights[0] == pytest.approx(1.0)
        assert weights[-1] == pytest.approx(2.0)
        assert weights == sorted(weights)

    def test_quota_fields_forwarded(self):
        tenants = make_tenants(2, quota_procs=8, rate_per_s=3.0,
                               burst=5, max_pending=10)
        rec = tenants["t01"]
        assert rec.quota_procs == 8 and rec.rate_per_s == 3.0
        assert rec.burst == 5 and rec.max_pending == 10
