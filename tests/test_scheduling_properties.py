"""Property-based tests of scheduler invariants (hypothesis)."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.scheduling import (
    HostSelector,
    SiteScheduler,
    compute_levels,
    evaluate_schedule,
)
from repro.tasklib import standard_registry
from repro.workloads import (
    fork_join_graph,
    linear_solver_graph,
    random_layered_graph,
)

from .conftest import build_federation

REGISTRY = standard_registry()

graph_strategy = st.one_of(
    st.builds(random_layered_graph, st.just(REGISTRY),
              layers=st.integers(1, 4), width=st.integers(1, 4),
              seed=st.integers(0, 50)),
    st.builds(fork_join_graph, st.just(REGISTRY),
              width=st.integers(2, 5)),
    st.builds(linear_solver_graph, st.just(REGISTRY),
              n=st.integers(20, 120)),
)


def make_schedule(graph, seed=0, queue_aware=False, k=1):
    fed = build_federation(registry=REGISTRY, seed=seed)
    selectors = {s: HostSelector(r) for s, r in fed.repositories.items()}
    sched = SiteScheduler("syracuse", fed.topology, k_remote_sites=k,
                          queue_aware=queue_aware)
    table, report = sched.schedule_with_selectors(graph, selectors)
    return fed, table, report


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(graph=graph_strategy, queue_aware=st.booleans())
def test_schedule_covers_every_node_with_feasible_hosts(graph, queue_aware):
    fed, table, _ = make_schedule(graph, queue_aware=queue_aware)
    assert set(table.entries) == set(graph.nodes)
    for entry in table.entries.values():
        for host in entry.hosts:
            repo = fed.repositories[entry.site]
            assert repo.task_constraints.is_runnable_on(entry.task_name,
                                                        host)
            assert host.split("/")[0] == entry.site
        assert entry.predicted_time_s > 0


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(graph=graph_strategy, queue_aware=st.booleans())
def test_timeline_respects_precedence_and_serialisation(graph, queue_aware):
    fed, table, _ = make_schedule(graph, queue_aware=queue_aware)
    tl = evaluate_schedule(graph, table, fed.topology)
    # precedence: child starts at/after parent finish
    for link in graph.links:
        assert tl.start[link.dst] >= tl.finish[link.src] - 1e-9
    # serialisation: tasks sharing a host never overlap
    by_host: dict[str, list[tuple[float, float]]] = {}
    for nid, entry in table.entries.items():
        for host in entry.hosts:
            by_host.setdefault(host, []).append(
                (tl.start[nid], tl.finish[nid]))
    for intervals in by_host.values():
        intervals.sort()
        for (s1, f1), (s2, f2) in zip(intervals, intervals[1:]):
            assert s2 >= f1 - 1e-9
    # makespan bounded below by the critical path on the fastest host
    assert tl.makespan > 0


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(graph=graph_strategy, seed=st.integers(0, 20))
def test_schedule_deterministic_per_seed(graph, seed):
    _, t1, r1 = make_schedule(graph, seed=seed)
    _, t2, r2 = make_schedule(graph, seed=seed)
    assert {n: e.hosts for n, e in t1.entries.items()} == \
        {n: e.hosts for n, e in t2.entries.items()}
    assert r1.scheduling_order == r2.scheduling_order


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(graph=graph_strategy)
def test_scheduling_order_is_priority_consistent(graph):
    """At each step the walk picks the highest-level *ready* node."""
    _, _, report = make_schedule(graph)
    levels = compute_levels(graph)
    scheduled: set[str] = set()
    for i, nid in enumerate(report.scheduling_order):
        # readiness at pick time
        assert set(graph.predecessors(nid)) <= scheduled
        # among ready nodes, nid had the max level (ties by name)
        ready = [cand for cand in graph.nodes
                 if cand not in scheduled
                 and set(graph.predecessors(cand)) <= scheduled]
        best = min(ready, key=lambda c: (-levels[c], c))
        assert nid == best
        scheduled.add(nid)


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(n=st.integers(20, 100), k=st.integers(0, 1))
def test_levels_invariant_parent_exceeds_child(n, k):
    graph = linear_solver_graph(REGISTRY, n=n)
    levels = compute_levels(graph)
    for link in graph.links:
        assert levels[link.src] > levels[link.dst]
    # entry max level == critical path cost
    assert max(levels.values()) == pytest.approx(
        graph.critical_path_cost())


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(graph=graph_strategy)
def test_queue_aware_never_places_infeasibly(graph):
    """The extension explores alternatives but stays within constraints."""
    fed, table, _ = make_schedule(graph, queue_aware=True)
    for entry in table.entries.values():
        repo = fed.repositories[entry.site]
        recs = {r.address
                for r in repo.resource_performance.hosts_at(entry.site)}
        assert set(entry.hosts) <= recs
