"""Unit tests for the deterministic metrics registry (repro.obs.metrics)."""

from __future__ import annotations

import pytest

from repro.obs.metrics import (
    DEFAULT_DEPTH_BUCKETS,
    DEFAULT_TIME_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


class TestCounter:
    def test_inc_and_value_per_label_set(self):
        c = Counter("messages_total")
        c.inc(kind="data")
        c.inc(2.0, kind="data")
        c.inc(kind="ctrl")
        assert c.value(kind="data") == 3.0
        assert c.value(kind="ctrl") == 1.0
        assert c.value(kind="never") == 0.0
        assert c.total() == 4.0

    def test_label_keyword_order_is_irrelevant(self):
        c = Counter("x_total")
        c.inc(a="1", b="2")
        c.inc(b="2", a="1")
        assert c.value(a="1", b="2") == 2.0
        assert len(c.samples()) == 1

    def test_negative_increment_rejected(self):
        c = Counter("x_total")
        with pytest.raises(ValueError):
            c.inc(-1.0)

    def test_samples_sorted_by_label_key(self):
        c = Counter("x_total")
        c.inc(host="h9")
        c.inc(host="h1")
        c.inc(host="h5")
        keys = [key for key, _ in c.samples()]
        assert keys == sorted(keys)

    def test_invalid_name_rejected(self):
        with pytest.raises(ValueError):
            Counter("bad name!")


class TestGauge:
    def test_set_overwrites_add_accumulates(self):
        g = Gauge("load")
        g.set(0.5, host="h1")
        g.set(0.7, host="h1")
        assert g.value(host="h1") == 0.7
        g.add(0.1, host="h1")
        assert g.value(host="h1") == pytest.approx(0.8)

    def test_add_may_go_negative(self):
        g = Gauge("delta")
        g.add(-2.5)
        assert g.value() == -2.5


class TestHistogram:
    def test_le_boundaries_are_upper_inclusive(self):
        h = Histogram("d", buckets=(1.0, 2.0, 5.0))
        for v in (0.5, 1.0, 1.5, 2.0, 5.0, 99.0):
            h.observe(v)
        s = h.series()
        # 0.5 and 1.0 -> le=1.0; 1.5 and 2.0 -> le=2.0; 5.0 -> le=5.0;
        # 99.0 -> +Inf overflow
        assert s.bucket_counts == [2, 2, 1, 1]
        assert s.count == 6
        assert s.sum == pytest.approx(109.0)
        assert s.min == 0.5 and s.max == 99.0
        assert s.mean == pytest.approx(109.0 / 6)

    def test_series_partitioned_by_labels(self):
        h = Histogram("d", buckets=(1.0,))
        h.observe(0.5, host="a")
        h.observe(0.5, host="b")
        assert h.series(host="a").count == 1
        assert h.series(host="missing") is None
        assert len(h.samples()) == 2

    def test_non_increasing_boundaries_rejected(self):
        with pytest.raises(ValueError):
            Histogram("d", buckets=(1.0, 1.0, 2.0))
        with pytest.raises(ValueError):
            Histogram("d", buckets=(2.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("d", buckets=())

    def test_default_bucket_tables_are_strictly_increasing(self):
        for bounds in (DEFAULT_TIME_BUCKETS, DEFAULT_DEPTH_BUCKETS):
            assert list(bounds) == sorted(set(bounds))


class TestMetricsRegistry:
    def test_factories_are_idempotent(self):
        reg = MetricsRegistry()
        a = reg.counter("x_total", help="x")
        b = reg.counter("x_total")
        assert a is b
        assert reg.histogram("h") is reg.histogram("h")

    def test_kind_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError):
            reg.gauge("x")

    def test_histogram_boundary_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.histogram("h", buckets=(1.0, 2.0))
        with pytest.raises(ValueError):
            reg.histogram("h", buckets=(1.0, 3.0))

    def test_collect_sorted_by_name(self):
        reg = MetricsRegistry()
        for name in ("zeta", "alpha", "mid"):
            reg.counter(name)
        assert [m.name for m in reg.collect()] == ["alpha", "mid", "zeta"]
        assert len(reg) == 3

    def test_clear_empties_the_registry(self):
        reg = MetricsRegistry()
        reg.counter("x").inc()
        reg.clear()
        assert len(reg) == 0
        assert reg.get("x") is None
