"""Tests for graph rendering and editor undo/redo."""

import pytest

from repro.afg import (
    ApplicationEditor,
    GraphBuilder,
    TaskProperties,
    node_depths,
    render_graph,
    render_summary,
)
from repro.tasklib import standard_registry
from repro.util.errors import EditorModeError
from repro.workloads import linear_solver_graph


@pytest.fixture(scope="module")
def registry():
    return standard_registry()


class TestNodeDepths:
    def test_entry_is_zero(self, registry):
        g = linear_solver_graph(registry, n=40)
        depths = node_depths(g)
        assert depths["gen-A"] == 0
        assert depths["gen-b"] == 0

    def test_depth_increases_along_links(self, registry):
        g = linear_solver_graph(registry, n=40)
        depths = node_depths(g)
        for link in g.links:
            assert depths[link.dst] > depths[link.src]

    def test_longest_path_depth(self, registry):
        g = linear_solver_graph(registry, n=40, verify=False)
        depths = node_depths(g)
        # gen-A -> lu -> inv -> combine -> solve = depths 0..4
        assert depths["solve"] == 4


class TestRenderGraph:
    def test_contains_all_nodes_and_layers(self, registry):
        g = linear_solver_graph(registry, n=40)
        text = render_graph(g)
        for nid in g.nodes:
            assert f"[{nid}]" in text
        assert "layer 0:" in text

    def test_shows_properties(self, registry):
        g = linear_solver_graph(registry, n=40, parallel_lu=True)
        g.node("lu").properties.preferred_site = "rome"
        text = render_graph(g)
        assert "parallel x2" in text
        assert "@rome" in text

    def test_empty_graph(self, registry):
        from repro.afg import ApplicationFlowGraph
        assert "(empty)" in render_graph(ApplicationFlowGraph("empty"))

    def test_ports_toggle(self, registry):
        g = linear_solver_graph(registry, n=40)
        with_ports = render_graph(g, show_ports=True)
        without = render_graph(g, show_ports=False)
        assert "lower -->" in with_ports
        assert "lower -->" not in without

    def test_summary_metrics(self, registry):
        g = linear_solver_graph(registry, n=40)
        text = render_summary(g)
        assert "tasks / links  : 8 /" in text
        assert "critical path" in text


class TestUndoRedo:
    def make(self, registry) -> ApplicationEditor:
        return ApplicationEditor(registry, "undo-demo")

    def test_undo_add_task(self, registry):
        ed = self.make(registry)
        ed.add_task("fft-1d", "f")
        assert "f" in ed.graph.nodes
        ed.undo()
        assert len(ed.graph) == 0

    def test_redo_restores(self, registry):
        ed = self.make(registry)
        ed.add_task("fft-1d", "f")
        ed.undo()
        assert ed.can_redo
        ed.redo()
        assert "f" in ed.graph.nodes

    def test_new_action_clears_redo(self, registry):
        ed = self.make(registry)
        ed.add_task("fft-1d", "f")
        ed.undo()
        ed.add_task("signal-generate", "s")
        assert not ed.can_redo
        with pytest.raises(EditorModeError):
            ed.redo()

    def test_undo_connect(self, registry):
        ed = self.make(registry)
        ed.add_task("signal-generate", "s")
        ed.add_task("fft-1d", "f")
        ed.set_mode("link")
        ed.connect("s", "signal", "f", "signal")
        assert len(ed.graph.links) == 1
        ed.undo()
        assert len(ed.graph.links) == 0
        assert set(ed.graph.nodes) == {"s", "f"}  # nodes survive

    def test_undo_set_properties(self, registry):
        ed = self.make(registry)
        ed.add_task("lu-decomposition", "lu")
        ed.set_properties("lu", TaskProperties(input_size=999.0))
        ed.undo()
        assert ed.get_properties("lu").input_size == 100.0

    def test_undo_remove_task_restores_links(self, registry):
        ed = self.make(registry)
        ed.add_task("signal-generate", "s")
        ed.add_task("fft-1d", "f")
        ed.set_mode("link")
        ed.connect("s", "signal", "f", "signal")
        ed.set_mode("task")
        ed.remove_task("f")
        ed.undo()
        assert "f" in ed.graph.nodes
        assert len(ed.graph.links) == 1

    def test_undo_empty_raises(self, registry):
        with pytest.raises(EditorModeError):
            self.make(registry).undo()

    def test_history_depth_bounded(self, registry):
        ed = self.make(registry)
        ed.HISTORY_DEPTH = 5
        for i in range(10):
            ed.add_task("fft-1d", f"f{i}")
        assert len(ed._undo_stack) == 5
        for _ in range(5):
            ed.undo()
        assert not ed.can_undo
        assert len(ed.graph) == 5  # the oldest five adds are permanent

    def test_undo_chain_full_workflow(self, registry):
        ed = self.make(registry)
        ed.add_task("signal-generate", "s")
        ed.add_task("fft-1d", "f")
        ed.set_mode("link")
        link = ed.connect("s", "signal", "f", "signal")
        ed.disconnect(link)
        ed.undo()  # undo disconnect -> link back
        assert len(ed.graph.links) == 1
        ed.undo()  # undo connect -> no links
        assert len(ed.graph.links) == 0
        ed.undo()  # undo add f
        assert set(ed.graph.nodes) == {"s"}

    def test_load_clears_history(self, registry, tmp_path):
        ed = self.make(registry)
        ed.add_task("fft-1d", "f")
        ed.save(tmp_path / "a.json")
        ed.load(tmp_path / "a.json")
        assert not ed.can_undo and not ed.can_redo
