"""Tests for level computation and the ready-set walk."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.afg import GraphBuilder
from repro.scheduling import ReadySet, compute_levels, priority_order
from repro.tasklib import standard_registry


@pytest.fixture(scope="module")
def registry():
    return standard_registry()


def chain_graph(registry, n=4):
    b = GraphBuilder(registry)
    s = b.task("signal-generate", "src")
    f = b.task("fft-1d", "fft")
    prev = f
    ids = [s, f]
    for i in range(n):
        nid = b.task("lowpass-filter", f"f{i}")
        ids.append(nid)
        b.link(prev, nid)
        prev = nid
    b.link(s, f)
    return b.build(), ids


class TestLevels:
    def test_exit_node_level_is_own_cost(self, registry):
        g, ids = chain_graph(registry)
        levels = compute_levels(g)
        exit_id = ids[-1]
        assert levels[exit_id] == pytest.approx(g.node(exit_id).base_cost())

    def test_levels_decrease_along_chain(self, registry):
        g, ids = chain_graph(registry)
        levels = compute_levels(g)
        for a, b in zip(ids, ids[1:]):
            assert levels[a] > levels[b]

    def test_entry_level_equals_critical_path(self, registry):
        g, ids = chain_graph(registry)
        levels = compute_levels(g)
        assert max(levels.values()) == pytest.approx(g.critical_path_cost())

    def test_custom_costs(self, registry):
        g, ids = chain_graph(registry, n=1)
        unit = {nid: 1.0 for nid in g.nodes}
        levels = compute_levels(g, costs=unit)
        # chain of 3 nodes: levels 3, 2, 1
        assert sorted(levels.values()) == [1.0, 2.0, 3.0]

    def test_diamond_takes_max_branch(self, registry):
        b = GraphBuilder(registry)
        b.task("matrix-generate", "g", input_size=50)
        b.task("lu-decomposition", "lu", input_size=50)
        b.task("matrix-inverse", "i1", input_size=50)
        b.task("matrix-inverse", "i2", input_size=50)
        b.task("matrix-multiply", "m", input_size=50)
        b.link("g", "lu")
        b.link("lu", "i1", src_port="lower")
        b.link("lu", "i2", src_port="upper")
        b.link("i1", "m", dst_port="a")
        b.link("i2", "m", dst_port="b")
        g = b.build()
        levels = compute_levels(g, costs={nid: 1.0 for nid in g.nodes})
        assert levels["g"] == 4.0  # g -> lu -> inv -> m
        assert levels["i1"] == levels["i2"] == 2.0


class TestPriorityOrder:
    def test_descending_levels(self, registry):
        g, _ = chain_graph(registry)
        levels = compute_levels(g)
        order = priority_order(g, levels)
        vals = [levels[nid] for nid in order]
        assert vals == sorted(vals, reverse=True)


class TestReadySet:
    def test_walk_respects_precedence(self, registry):
        g, _ = chain_graph(registry)
        ready = ReadySet(g, compute_levels(g))
        order = ready.drain()
        pos = {nid: i for i, nid in enumerate(order)}
        for link in g.links:
            assert pos[link.src] < pos[link.dst]
        assert len(order) == len(g)

    def test_highest_level_ready_first(self, registry):
        """Two independent chains: the longer chain's head goes first."""
        b = GraphBuilder(registry)
        # chain A: 3 filters; chain B: 1 filter
        sa = b.task("signal-generate", "sa")
        fa = b.task("fft-1d", "fa")
        b.link(sa, fa)
        prev = fa
        for i in range(3):
            nid = b.task("lowpass-filter", f"a{i}")
            b.link(prev, nid)
            prev = nid
        sb = b.task("signal-generate", "sb")
        fb = b.task("fft-1d", "fb")
        b.link(sb, fb)
        g = b.build()
        ready = ReadySet(g, compute_levels(g))
        assert ready.pop() == "sa"  # longer chain => higher level

    def test_pop_empty_raises(self, registry):
        g, _ = chain_graph(registry)
        ready = ReadySet(g, compute_levels(g))
        ready.drain()
        with pytest.raises(IndexError):
            ready.pop()

    def test_len_and_bool(self, registry):
        g, _ = chain_graph(registry)
        ready = ReadySet(g, compute_levels(g))
        assert bool(ready) and len(ready) == 1  # only the source is ready
        ready.drain()
        assert not ready

    def test_scheduled_property(self, registry):
        g, _ = chain_graph(registry, n=1)
        ready = ReadySet(g, compute_levels(g))
        first = ready.pop()
        assert ready.scheduled == {first}


@given(st.integers(1, 6), st.integers(1, 4))
def test_ready_walk_covers_layered_graphs(width, depth):
    """Property: the ready walk always yields every node exactly once in
    a precedence-respecting order on layered DAGs."""
    registry = standard_registry()
    b = GraphBuilder(registry)
    layers = []
    srcs = [b.task("signal-generate", f"s{i}") for i in range(width)]
    ffts = [b.task("fft-1d", f"x{i}") for i in range(width)]
    for s, f in zip(srcs, ffts):
        b.link(s, f)
    layers.append(ffts)
    for d in range(depth):
        layer = [b.task("lowpass-filter", f"l{d}-{i}") for i in range(width)]
        for i, nid in enumerate(layer):
            b.link(layers[-1][i], nid)
        layers.append(layer)
    g = b.build()
    from repro.scheduling import ReadySet, compute_levels
    order = ReadySet(g, compute_levels(g)).drain()
    assert sorted(order) == sorted(g.nodes)
    pos = {nid: i for i, nid in enumerate(order)}
    assert all(pos[l.src] < pos[l.dst] for l in g.links)
