"""Monitor-update coalescing: a transport optimisation, never a change.

The Group Manager may batch the monitor samples arriving in one tick
into a single ``{"samples": [...]}`` repository-update message
(``coalesce_updates``).  The contract mirrors the network-batching one:
the Site Manager applies coalesced samples per-sample in arrival order,
so every observable repository and WAL byte is identical with the knob
on or off — only the message count changes.
"""

from __future__ import annotations

from repro.obs import Observability
from repro.workloads import nynet_testbed


def dynamic_probe(vdce) -> dict:
    """Every dynamic repository byte the coalescing path may touch."""
    probe: dict = {}
    for site_name in sorted(vdce.repositories):
        db = vdce.repositories[site_name].resource_performance
        probe[site_name] = {
            "records": [
                (rec.address, rec.cpu_load, rec.available_memory_mb,
                 rec.status, rec.last_update, tuple(rec.load_window),
                 tuple(rec.load_window_times))
                for rec in db.all_records()],
            "updates_applied":
                vdce.site_managers[site_name].updates_applied,
        }
    return probe


def wal_probe(vdce) -> dict:
    """Replication WAL contents (kind, payload) per shipping site."""
    probe = {}
    for site_name, sm in sorted(vdce.site_managers.items()):
        if sm.replication is not None:
            probe[site_name] = [(rec.kind, rec.payload)
                                for rec in sm.replication.wal]
    return probe


def run_monitored(coalesce: bool, *, failover: bool = False,
                  obs: Observability | None = None,
                  until: float = 30.0):
    vdce = nynet_testbed(seed=5, trace=False, obs=obs,
                         coalesce_updates=coalesce)
    vdce.start()
    if failover:
        vdce.enable_failover("syracuse", ["h2", "h3"])
    vdce.run(until=until)
    return vdce


class TestCoalescingIdentity:
    def test_repository_bytes_identical_on_and_off(self):
        on = run_monitored(True)
        off = run_monitored(False)
        probe = dynamic_probe(on)
        assert probe == dynamic_probe(off)
        # the run actually exercised the path: samples were applied and
        # the load windows carry per-sample history in arrival order
        applied = sum(site["updates_applied"] for site in probe.values())
        assert applied > 0
        assert any(len(rec[5]) > 1 for site in probe.values()
                   for rec in site["records"])

    def test_replication_wal_identical_on_and_off(self):
        on = run_monitored(True, failover=True)
        off = run_monitored(False, failover=True)
        on_wal, off_wal = wal_probe(on), wal_probe(off)
        assert on_wal == off_wal
        assert on_wal["syracuse"], "WAL never shipped an update"

    def test_coalescing_actually_batches(self):
        obs = Observability()
        run_monitored(True, obs=obs)
        counter = obs.metrics.counter("gm_update_batches_total")
        assert counter.total() > 0

    def test_off_never_batches(self):
        obs = Observability()
        run_monitored(False, obs=obs)
        counter = obs.metrics.counter("gm_update_batches_total")
        assert counter.total() == 0
