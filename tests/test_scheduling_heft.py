"""Tests for the HEFT comparator."""

import pytest

from repro.scheduling import HeftScheduler, evaluate_schedule
from repro.scheduling.heft import _HostSchedule
from repro.util.errors import NoFeasibleHostError
from repro.workloads import fork_join_graph, linear_solver_graph

from .conftest import build_federation


@pytest.fixture
def fed(registry):
    return build_federation(registry=registry)


class TestHostSchedule:
    def test_empty_host_starts_at_ready(self):
        hs = _HostSchedule()
        assert hs.earliest_slot(5.0, 2.0) == 5.0

    def test_appends_after_busy(self):
        hs = _HostSchedule()
        hs.occupy(0.0, 10.0)
        assert hs.earliest_slot(2.0, 3.0) == 10.0

    def test_insertion_into_gap(self):
        hs = _HostSchedule()
        hs.occupy(0.0, 2.0)
        hs.occupy(10.0, 12.0)
        # a 3s task fits in the [2, 10) gap
        assert hs.earliest_slot(0.0, 3.0) == 2.0
        # a 9s task does not; goes after everything
        assert hs.earliest_slot(0.0, 9.0) == 12.0

    def test_ready_constraint_within_gap(self):
        hs = _HostSchedule()
        hs.occupy(0.0, 2.0)
        hs.occupy(10.0, 12.0)
        assert hs.earliest_slot(5.0, 3.0) == 5.0


class TestHeftScheduler:
    def test_covers_all_nodes(self, registry, fed):
        g = linear_solver_graph(registry, n=80)
        table = HeftScheduler(fed.repositories, fed.topology).schedule(g)
        assert set(table.entries) == set(g.nodes)

    def test_respects_constraints(self, registry):
        fed = build_federation(
            registry=registry,
            constrain={"lu-decomposition": {"rome/h0"}})
        g = linear_solver_graph(registry, n=60)
        table = HeftScheduler(fed.repositories, fed.topology).schedule(g)
        assert table.get("lu").host == "rome/h0"

    def test_infeasible_raises(self, registry):
        fed = build_federation(registry=registry,
                               constrain={"lu-decomposition": set()})
        g = linear_solver_graph(registry, n=60)
        with pytest.raises(NoFeasibleHostError):
            HeftScheduler(fed.repositories, fed.topology).schedule(g)

    def test_upward_ranks_decrease_along_edges(self, registry, fed):
        g = linear_solver_graph(registry, n=60)
        heft = HeftScheduler(fed.repositories, fed.topology)
        costs = {nid: heft._candidates(g.node(nid)) for nid in g.nodes}
        ranks = heft.upward_ranks(g, costs)
        for link in g.links:
            assert ranks[link.src] > ranks[link.dst]

    def test_spreads_independent_tasks(self, registry, fed):
        """EFT with insertion never piles parallel work on one host."""
        g = fork_join_graph(registry, width=4, size=2048)
        table = HeftScheduler(fed.repositories, fed.topology).schedule(g)
        assert len(table.hosts()) >= 3

    def test_valid_timeline(self, registry, fed):
        g = fork_join_graph(registry, width=3, size=2048)
        table = HeftScheduler(fed.repositories, fed.topology).schedule(g)
        tl = evaluate_schedule(g, table, fed.topology)
        for link in g.links:
            assert tl.start[link.dst] >= tl.finish[link.src] - 1e-9

    def test_deterministic(self, registry, fed):
        g = linear_solver_graph(registry, n=60)
        heft = HeftScheduler(fed.repositories, fed.topology)
        t1 = heft.schedule(g)
        heft2 = HeftScheduler(fed.repositories, fed.topology)
        t2 = heft2.schedule(g)
        assert {n: e.host for n, e in t1.entries.items()} == \
            {n: e.host for n, e in t2.entries.items()}
