"""Repository-hygiene checks: docs and code stay in sync."""

import re
from pathlib import Path

ROOT = Path(__file__).parent.parent


class TestDesignIndex:
    def test_every_listed_bench_exists(self):
        design = (ROOT / "DESIGN.md").read_text()
        for match in re.findall(r"benchmarks/(bench_\w+\.py)", design):
            assert (ROOT / "benchmarks" / match).exists(), match

    def test_every_bench_is_indexed_in_design(self):
        design = (ROOT / "DESIGN.md").read_text()
        for bench in (ROOT / "benchmarks").glob("bench_*.py"):
            assert bench.name in design, (
                f"{bench.name} missing from DESIGN.md's experiment index")

    def test_experiments_covers_every_figure(self):
        experiments = (ROOT / "EXPERIMENTS.md").read_text()
        for figure in ("F1", "F2", "F3", "F4", "F5", "F6", "F7",
                       "A1", "A2", "A3", "A4", "A5", "A6"):
            assert f"## {figure} " in experiments or \
                f"### {figure} " in experiments, figure


class TestReadme:
    def test_examples_table_matches_directory(self):
        readme = (ROOT / "README.md").read_text()
        for example in (ROOT / "examples").glob("*.py"):
            assert example.name in readme, (
                f"examples/{example.name} missing from the README table")

    def test_cli_commands_documented(self):
        from repro.cli import COMMANDS
        readme = (ROOT / "README.md").read_text()
        documented = sum(1 for cmd in COMMANDS if f"repro {cmd}" in readme)
        assert documented >= len(COMMANDS) - 2  # allow a couple implicit
