"""The checked-in cluster-trace sample and ``tools/fetch_trace.py``.

The repository ships ``data/traces/alibaba_sample.trace`` (~1000 jobs)
so trace-driven replay experiments run offline.  These tests pin the
sample's contract: it parses cleanly, round-trips byte-for-byte through
``parse_trace_line``/``as_line``, the offline regeneration mode of the
fetch tool reproduces it exactly, and the replay engine can drive it
end to end.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.traffic.replay import ReplayConfig, check_report, run_replay
from repro.traffic.trace import load_trace, parse_trace_line

REPO_ROOT = Path(__file__).resolve().parent.parent
SAMPLE = REPO_ROOT / "data" / "traces" / "alibaba_sample.trace"


class TestSampleFile:
    def test_sample_is_checked_in_and_sized(self):
        assert SAMPLE.is_file(), "data/traces/alibaba_sample.trace missing"
        requests = list(load_trace(SAMPLE))
        assert len(requests) == 1000

    def test_sample_loads_with_replayable_invariants(self):
        submits = []
        for req in load_trace(SAMPLE):
            assert req.nproc >= 1
            assert req.duration_s > 0
            assert req.tenant.startswith("t")
            submits.append(req.submit_time_s)
        assert submits == sorted(submits)

    def test_every_line_round_trips_byte_for_byte(self):
        for lineno, line in enumerate(SAMPLE.read_text().splitlines(),
                                      start=1):
            req = parse_trace_line(line, lineno)
            if req is None:  # the header comment
                continue
            assert req.as_line() == line
            again = parse_trace_line(req.as_line(), lineno)
            assert again == req

    def test_fetch_tool_regenerates_the_sample_exactly(self, tmp_path):
        import sys
        sys.path.insert(0, str(REPO_ROOT))
        try:
            from tools.fetch_trace import main
        finally:
            sys.path.remove(str(REPO_ROOT))
        out = tmp_path / "regen.trace"
        assert main(["--out", str(out)]) == 0
        assert out.read_bytes() == SAMPLE.read_bytes()


class TestSampleReplay:
    def test_sample_drives_a_clean_replay(self):
        config = ReplayConfig(generator="trace", trace_path=str(SAMPLE),
                              seed=3, tenants=8, users=200,
                              procs_per_site=32)
        report = run_replay(config)
        assert check_report(report) == []
        totals = report.totals()
        assert totals["arrivals"] == 1000
        assert totals["completed"] == totals["admitted"] > 0

    def test_sample_replay_is_deterministic(self):
        config = ReplayConfig(generator="trace", trace_path=str(SAMPLE),
                              seed=3, tenants=8, users=200,
                              procs_per_site=32)
        first = run_replay(config)
        second = run_replay(config)
        assert first.tenant_rows() == second.tenant_rows()

    def test_missing_trace_path_refuses(self):
        from repro.util.errors import ConfigurationError
        with pytest.raises(ConfigurationError):
            ReplayConfig(generator="trace").validate()
