"""Tests for the three visualization services."""

import pytest

from repro.viz import ApplicationPerformanceView, ComparativeView, WorkloadView
from repro.workloads import linear_solver_graph, quiet_testbed


@pytest.fixture(scope="module")
def completed():
    v = quiet_testbed(seed=4)
    v.start()
    g = linear_solver_graph(v.registry, n=40)
    run = v.run_application(g, "syracuse", max_sim_time_s=600)
    assert run.status == "completed"
    return v, run


class TestApplicationPerformanceView:
    def test_rows_cover_all_tasks(self, completed):
        _, run = completed
        view = ApplicationPerformanceView(run)
        assert {r["task"] for r in view.rows()} == set(run.graph.nodes)

    def test_rows_sorted_by_start(self, completed):
        _, run = completed
        starts = [r["start_s"] for r in ApplicationPerformanceView(run).rows()]
        assert starts == sorted(starts)

    def test_render_contains_tasks_and_makespan(self, completed):
        _, run = completed
        text = ApplicationPerformanceView(run).render()
        assert "lu" in text
        assert f"{run.makespan:.3f}" in text
        assert "█" in text

    def test_render_empty_run(self, completed):
        v, run = completed
        from repro.core.run import ApplicationRun
        empty = ApplicationRun(execution_id="x", graph=run.graph,
                               table=run.table, report=run.report)
        assert "no completed tasks" in ApplicationPerformanceView(empty).render()


class TestWorkloadView:
    def test_series_from_trace(self, completed):
        v, _ = completed
        view = WorkloadView(v.tracer)
        series = view.series()
        assert series  # at least the initial reports
        for pts in series.values():
            times = [t for t, _ in pts]
            assert times == sorted(times)

    def test_latest_and_render(self, completed):
        v, _ = completed
        view = WorkloadView(v.tracer)
        latest = view.latest()
        assert all(load >= 0 for load in latest.values())
        text = view.render()
        assert "Workload" in text

    def test_empty_tracer(self):
        from repro.simcore import Tracer
        assert "no measurements" in WorkloadView(Tracer()).render()


class TestComparativeView:
    def test_best_picks_minimum_makespan(self, completed):
        v, run = completed
        cv = ComparativeView()
        cv.add("config-a", run)
        # a fake slower run: same object twice with different label but
        # mutated copy
        import copy
        slower = copy.copy(run)
        slower.finished_at = run.finished_at + 100
        cv.add("config-b", slower)
        assert cv.best() == "config-a"
        rows = cv.table()
        assert rows[0]["configuration"] == "config-a"

    def test_render(self, completed):
        _, run = completed
        cv = ComparativeView()
        cv.add("only", run)
        assert "only" in cv.render()

    def test_best_empty_raises(self):
        with pytest.raises(ValueError):
            ComparativeView().best()

    def test_render_empty(self):
        assert "no runs" in ComparativeView().render()


class TestWorkloadHeatmap:
    def test_heatmap_rows_per_host(self):
        from repro.workloads import nynet_testbed
        v = nynet_testbed(seed=8, hosts_per_site=2, with_loads=True,
                          filter_policy="always")
        v.start()
        v.run(until=60)
        view = WorkloadView(v.tracer)
        text = view.heatmap(bins=20)
        assert "Workload heatmap" in text
        for host in v.world.all_hosts():
            assert host.address in text

    def test_heatmap_empty(self):
        from repro.simcore import Tracer
        assert "no measurements" in WorkloadView(Tracer()).heatmap()

    def test_heatmap_shade_scales_with_load(self):
        from repro.workloads import nynet_testbed
        v = nynet_testbed(seed=9, hosts_per_site=2, with_loads=False,
                          filter_policy="always")
        v.start()
        v.world.host("syracuse/h0").true_load = 3.9  # near max_load
        v.world.host("syracuse/h1").true_load = 0.05
        v.run(until=30)
        text = WorkloadView(v.tracer).heatmap(bins=10, max_load=4.0)
        hot = next(l for l in text.splitlines() if "syracuse/h0" in l)
        cold = next(l for l in text.splitlines() if "syracuse/h1" in l)
        assert "@" in hot or "%" in hot
        assert "@" not in cold and "%" not in cold
