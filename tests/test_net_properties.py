"""Property-based tests of the network substrate (hypothesis)."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.net import LinkSpec, Topology
from repro.util.errors import ConfigurationError


@st.composite
def random_topology(draw):
    """A connected random topology over 2-6 sites."""
    n = draw(st.integers(2, 6))
    sites = [f"s{i}" for i in range(n)]
    topo = Topology()
    for s in sites:
        topo.add_site(s)
    # spanning chain guarantees connectivity
    for a, b in zip(sites, sites[1:]):
        latency = draw(st.floats(1e-4, 0.1))
        bw = draw(st.floats(1e5, 1e9))
        topo.connect(a, b, LinkSpec(latency_s=latency, bandwidth_bps=bw))
    # extra random links
    extra = draw(st.integers(0, n))
    for _ in range(extra):
        i = draw(st.integers(0, n - 1))
        j = draw(st.integers(0, n - 1))
        if i == j or topo._graph.has_edge(sites[i], sites[j]):
            continue
        topo.connect(sites[i], sites[j],
                     LinkSpec(latency_s=draw(st.floats(1e-4, 0.1)),
                              bandwidth_bps=draw(st.floats(1e5, 1e9))))
    return topo, sites


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(data=st.data())
def test_latency_symmetric_and_positive(data):
    topo, sites = data.draw(random_topology())
    a = data.draw(st.sampled_from(sites))
    b = data.draw(st.sampled_from(sites))
    if a == b:
        return
    lab = topo.latency(a, b)
    lba = topo.latency(b, a)
    assert lab == pytest.approx(lba)
    assert lab > 0


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(data=st.data(), sizes=st.tuples(st.floats(0, 1e8),
                                       st.floats(0, 1e8)))
def test_transfer_time_monotone_in_size(data, sizes):
    topo, sites = data.draw(random_topology())
    a = data.draw(st.sampled_from(sites))
    b = data.draw(st.sampled_from(sites))
    lo, hi = sorted(sizes)
    assert topo.transfer_time(a, b, lo) <= topo.transfer_time(a, b, hi) + 1e-12


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(data=st.data())
def test_min_latency_path_beats_any_single_link(data):
    """The chosen path's latency never exceeds a direct link's latency
    when a direct link exists (shortest-path optimality witness)."""
    topo, sites = data.draw(random_topology())
    a = data.draw(st.sampled_from(sites))
    b = data.draw(st.sampled_from(sites))
    if a == b or not topo._graph.has_edge(a, b):
        return
    direct = topo._graph.edges[a, b]["link"].latency_s
    assert topo.latency(a, b) <= direct + 1e-12


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(data=st.data())
def test_neighbors_sorted_and_complete(data):
    topo, sites = data.draw(random_topology())
    origin = data.draw(st.sampled_from(sites))
    neighbors = topo.neighbors_by_latency(origin)
    assert set(neighbors) == set(sites) - {origin}  # chain => all reachable
    latencies = [topo.latency(origin, n) for n in neighbors]
    assert latencies == sorted(latencies)


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(data=st.data())
def test_paths_are_valid_walks(data):
    topo, sites = data.draw(random_topology())
    a = data.draw(st.sampled_from(sites))
    b = data.draw(st.sampled_from(sites))
    path = topo.path(a, b)
    assert path[0] == a and path[-1] == b
    assert len(path) == len(set(path))  # simple path
    for u, v in zip(path, path[1:]):
        assert topo._graph.has_edge(u, v)


def test_triangle_route_prefers_two_fast_hops():
    topo = Topology()
    for s in ("a", "b", "c"):
        topo.add_site(s)
    topo.connect("a", "b", LinkSpec(latency_s=1.0, bandwidth_bps=1e9))
    topo.connect("a", "c", LinkSpec(latency_s=0.1, bandwidth_bps=1e9))
    topo.connect("c", "b", LinkSpec(latency_s=0.1, bandwidth_bps=1e9))
    assert topo.path("a", "b") == ["a", "c", "b"]
    assert topo.latency("a", "b") == pytest.approx(0.2)


def test_unknown_site_rejected_everywhere():
    topo = Topology()
    topo.add_site("a")
    for fn in (lambda: topo.latency("a", "ghost"),
               lambda: topo.path("ghost", "a"),
               lambda: topo.lan("ghost"),
               lambda: topo.neighbors_by_latency("ghost")):
        with pytest.raises(ConfigurationError):
            fn()
