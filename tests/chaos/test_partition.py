"""Chaos under WAN partitions: flapping links with membership enabled.

The partition chaos contract (the elastic-membership PR's acceptance
suite): with the federation heartbeat daemons running, seeded
:class:`~repro.faults.LinkFlap` plans repeatedly sever and heal the only
WAN link while a pipelined application runs.  Sites quarantine each
other, degraded-mode scheduling re-queues the tasks stranded behind the
partition, rejoin reconciles — and through all of it no execution is
lost or duplicated, and the entire observable record (fault log and
membership ledger) is byte-identical across same-seed runs.

CI runs this file twice and diffs the uploaded artifacts byte-for-byte;
the in-process determinism test below is the fast local equivalent.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.faults import FaultPlan, LinkDown, LinkFlap
from tests.chaos.harness import ChaosOutcome, assert_invariants, run_chaos

#: fixed seeds, mirrored in the CI chaos-partition job
PARTITION_SEEDS = (4001, 4002, 4003, 4006)


def flap_plan(cycles: int = 3, at: float = 6.0, down_s: float = 12.0,
              up_s: float = 10.0) -> FaultPlan:
    """A deterministic flap of the single syracuse~rome WAN link.

    ``down_s`` comfortably exceeds the membership suspicion horizon
    (6.5 s), so every down phase quarantines both sides and every up
    phase rejoins them — the maximum-churn schedule for the
    requeue/reconcile machinery.
    """
    return FaultPlan([LinkFlap("syracuse", "rome", at=at, cycles=cycles,
                               down_s=down_s, up_s=up_s)])


def run_partition_chaos(seed: int, *, plan: FaultPlan | None = None,
                        obs: bool = False,
                        n_link_flaps: int = 2) -> ChaosOutcome:
    """One seeded membership-enabled chaos run.

    Without an explicit *plan*, the seeded random plan draws link flaps
    (plus the usual host crashes and message-fault windows) so partition
    faults compose with the rest of the chaos vocabulary.
    """
    kwargs = {} if plan is not None else {"n_link_flaps": n_link_flaps}
    return run_chaos(seed, n=160, membership=True, obs=obs, plan=plan,
                     max_sim_time_s=3000.0, **kwargs)


def assert_partition_invariants(outcome: ChaosOutcome) -> None:
    """The base chaos contract plus the membership-specific clauses."""
    assert_invariants(outcome)
    ctx = f"(seed {outcome.seed})"
    assert outcome.ledger is not None, f"membership ledger missing {ctx}"
    ledger = json.loads(outcome.ledger)
    for observer, events in ledger.items():
        quarantines = sum(e["event"] == "quarantine" for e in events)
        rejoins = sum(e["event"] == "rejoin" for e in events)
        # every healed partition must reconcile: rejoins can lag at
        # most one behind quarantines (a final unhealed down phase)
        assert quarantines - rejoins <= 1, \
            f"{observer} stuck quarantined: {events} {ctx}"


class TestPartitionChaos:
    @pytest.mark.parametrize("seed", PARTITION_SEEDS)
    def test_seeded_flap_plans_hold_the_contract(self, seed):
        assert_partition_invariants(run_partition_chaos(seed))

    def test_deterministic_flaps_complete_exactly_once(self):
        # min_sim_time_s rides past application completion so every
        # flap cycle (last heals at t=72) fires and reconciles
        outcome = run_chaos(11, n=160, membership=True, plan=flap_plan(),
                            max_sim_time_s=3000.0, min_sim_time_s=90.0)
        assert_partition_invariants(outcome)
        assert outcome.status == "completed"
        assert outcome.completions == outcome.total_tasks
        ledger = json.loads(outcome.ledger)
        for observer in ("syracuse", "rome"):
            events = [e["event"] for e in ledger[observer]]
            assert events.count("quarantine") == 3
            assert events.count("rejoin") == 3

    def test_unhealed_partition_still_terminates(self):
        """A permanent cut mid-run must end in a typed state, not hang:
        degraded-mode scheduling pulls the far side's tasks home."""
        outcome = run_partition_chaos(
            12, plan=FaultPlan([LinkDown("syracuse", "rome", at=8.0)]))
        assert_invariants(outcome)
        assert outcome.status == "completed"
        assert outcome.completions == outcome.total_tasks

    def test_same_seed_runs_are_byte_identical(self):
        first = run_partition_chaos(PARTITION_SEEDS[0], obs=True)
        second = run_partition_chaos(PARTITION_SEEDS[0], obs=True)
        assert first.fault_log == second.fault_log
        assert first.ledger == second.ledger
        assert first.chrome_trace == second.chrome_trace
        assert first.completions == second.completions
        assert first.makespan == second.makespan


def main() -> None:
    """CI artifact mode: run the fixed seeds, dump logs + ledgers.

    ``python -m tests.chaos.test_partition OUTDIR`` writes, per seed,
    the injector fault log, the membership ledger, and the Chrome
    trace; the chaos-partition CI job runs it twice and byte-diffs the
    two directories.
    """
    import sys

    outdir = sys.argv[1]
    os.makedirs(outdir, exist_ok=True)
    for seed in PARTITION_SEEDS:
        outcome = run_partition_chaos(seed, obs=True)
        assert_partition_invariants(outcome)
        base = os.path.join(outdir, f"seed{seed}")
        with open(f"{base}.faults.json", "w") as fh:
            fh.write(outcome.fault_log)
        with open(f"{base}.ledger.json", "w") as fh:
            fh.write(outcome.ledger)
        with open(f"{base}.trace.json", "w") as fh:
            fh.write(outcome.chrome_trace)
        print(f"seed {seed}: {outcome.status} "
              f"{outcome.completions}/{outcome.total_tasks} tasks, "
              f"faults={sum(outcome.fault_counts.values())}")


if __name__ == "__main__":
    main()
