"""Chaos suite: batched delivery is byte-invisible to every trace.

PR 7's batched event delivery must be a pure kernel optimisation:
``batching=False`` degrades every :meth:`Network.send_batch` to the
loop of plain sends it replaces, and two same-seed runs — one per mode
— must be *byte-identical* in the fault-injector log and the Chrome
trace, and equal in every outcome scalar.  Fault-hook consultations
happen per message in destination order either way, so the injector's
RNG draws, drops, and duplicates cannot diverge.  CI asserts this
inside the chaos job (see ``.github/workflows/ci.yml``).
"""

import json

from tests.chaos.harness import assert_invariants, run_chaos


class TestBatchingIdentity:
    def test_fault_log_and_outcome_identical(self, chaos_seed):
        batched = run_chaos(chaos_seed)
        unbatched = run_chaos(chaos_seed, batching=False)
        assert batched.plan == unbatched.plan
        assert batched.fault_log == unbatched.fault_log  # byte-identical
        assert batched.status == unbatched.status
        assert batched.completions == unbatched.completions
        assert batched.reschedules == unbatched.reschedules
        assert batched.makespan == unbatched.makespan
        assert batched.fault_counts == unbatched.fault_counts
        assert batched.tasks_executed == unbatched.tasks_executed
        assert_invariants(batched)

    def test_chrome_trace_byte_identical(self, chaos_seed):
        batched = run_chaos(chaos_seed, obs=True)
        unbatched = run_chaos(chaos_seed, obs=True, batching=False)
        assert batched.chrome_trace is not None
        assert batched.chrome_trace == unbatched.chrome_trace
        json.loads(batched.chrome_trace)  # still well-formed JSON
