"""The ISSUE acceptance scenario, pinned as a deterministic test.

A drop window on channel-setup messages forces the Data Manager through
its retry ladder; a host crash injected mid-run kills the machine running
the exit task.  The application must still complete via rescheduling,
and the post-mortem archive must show the crash, the retries, and the
reassignment.
"""

import pytest

from repro.faults import FaultPlan, HostCrash, MessageFaults
from repro.viz.postmortem import RunArchive
from repro.workloads import linear_solver_graph, quiet_testbed


@pytest.fixture(scope="module")
def recovered_run():
    v = quiet_testbed(seed=101)
    v.start()
    # Window 1: drop every channel-setup for the first 4 simulated
    # seconds.  The default retry ladder (1 + 2 + 4 s) resends until the
    # fourth attempt lands outside the window.
    v.apply_fault_plan(FaultPlan(events=(
        MessageFaults(at=0.0, duration=4.0, drop_prob=1.0,
                      kinds=("channel-setup",)),
    )))
    g = linear_solver_graph(v.registry, n=200)
    sites = sorted(v.world.sites)
    for i, nid in enumerate(g.nodes):
        g.node(nid).properties.preferred_site = sites[i % 2]
    process, run = v.submit(g, "syracuse", k_remote_sites=1)
    while run.table is None:
        v.env.run(until=v.now + 0.5)
    victim = run.table.get("verify").host
    # Window 2 (installed mid-run): crash the exit task's host while the
    # pipeline is still executing upstream tasks.
    v.apply_fault_plan(FaultPlan(events=(
        HostCrash(host=victim, at=v.now + 12.0),
    )))
    deadline = v.now + 2000
    while not process.triggered and v.now < deadline:
        v.env.run(until=v.now + 5.0)
    return v, run, victim


class TestCrashRecoveryAcceptance:
    def test_application_completes_despite_crash(self, recovered_run):
        v, run, victim = recovered_run
        assert run.status == "completed"
        assert len(run.completions) == len(run.graph)
        assert v.env.failed_processes == []

    def test_exit_task_reassigned_off_dead_host(self, recovered_run):
        _, run, victim = recovered_run
        assert run.reschedules >= 1
        assert run.table.get("verify").host != victim

    def test_retries_actually_happened(self, recovered_run):
        v, _, _ = recovered_run
        retries = sum(dm.stats.retries for dm in v.data_managers.values())
        assert retries >= 1
        assert v.tracer.count("dm:retry") == retries

    def test_postmortem_shows_crash_retries_and_reassignment(
            self, recovered_run):
        v, run, victim = recovered_run
        archive = RunArchive.from_run(run, tracer=v.tracer)
        categories = {row["category"] for row in archive.trace}
        assert "fault:host-down" in categories        # the crash
        assert "dm:retry" in categories               # the retries
        assert "vdce:rescheduled" in categories       # the reassignment
        downs = [row for row in archive.trace
                 if row["category"] == "fault:host-down"]
        assert any(row["detail"]["host"] == victim for row in downs)

    def test_monitor_observed_local_crash(self, recovered_run):
        v, _, victim = recovered_run
        monitor = v.monitors[victim]
        assert [kind for _, kind in monitor.transitions] == ["crashed"]
