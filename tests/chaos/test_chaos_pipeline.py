"""Chaos suite: the end-to-end pipeline under randomized-but-seeded faults.

Run separately from tier-1 in CI (``pytest tests/chaos``) with pinned
``CHAOS_SEEDS`` so any flake is reproducible by seed.  When
``CHAOS_TRACE_ARTIFACT`` points at a directory, the observed runs also
drop their Chrome ``trace_event`` exports there (CI uploads them as a
workflow artifact, one file per seed).
"""

import json
import os
from pathlib import Path

from repro.faults import FaultPlan

from tests.chaos.harness import assert_invariants, run_chaos


class TestChaosInvariants:
    def test_invariants_hold_under_seeded_faults(self, chaos_seed):
        outcome = run_chaos(chaos_seed)
        assert_invariants(outcome)
        # the plan generator must actually have produced faults to inject
        assert outcome.plan, f"empty fault plan for seed {chaos_seed}"

    def test_heavier_plans_still_terminate(self, chaos_seed):
        outcome = run_chaos(chaos_seed, n_host_crashes=3,
                            n_message_windows=3, n_partitions=2)
        assert_invariants(outcome)


class TestChaosDeterminism:
    def test_same_seed_byte_identical_fault_trace(self, chaos_seed):
        first = run_chaos(chaos_seed)
        second = run_chaos(chaos_seed)
        assert first.plan == second.plan
        assert first.fault_log == second.fault_log   # byte-identical JSON
        assert first.status == second.status
        assert first.makespan == second.makespan
        assert first.reschedules == second.reschedules

    def test_same_seed_byte_identical_chrome_trace(self, chaos_seed):
        first = run_chaos(chaos_seed, obs=True)
        second = run_chaos(chaos_seed, obs=True)
        assert first.chrome_trace is not None
        assert first.chrome_trace == second.chrome_trace  # byte-identical
        doc = json.loads(first.chrome_trace)
        assert doc["traceEvents"], "observed chaos run produced no events"
        assert any(ev.get("ph") == "X" for ev in doc["traceEvents"])
        artifact_dir = os.environ.get("CHAOS_TRACE_ARTIFACT")
        if artifact_dir:
            out = Path(artifact_dir)
            out.mkdir(parents=True, exist_ok=True)
            (out / f"chaos-trace-seed{chaos_seed}.json").write_text(
                first.chrome_trace)

    def test_unobserved_run_exports_nothing(self, chaos_seed):
        assert run_chaos(chaos_seed).chrome_trace is None

    def test_different_seeds_produce_different_plans(self):
        # plans differ already at generation time; no need to run the sim
        from repro.util.rng import RngRegistry
        from tests.chaos.harness import crash_candidates
        from repro.workloads import quiet_testbed

        seeds = [101, 202, 303]

        def plan_for(seed):
            v = quiet_testbed(seed=seed)
            return FaultPlan.random(
                RngRegistry(seed).stream("chaos-plan"),
                crash_candidates(v), sites=sorted(v.world.sites),
                horizon_s=60.0).to_dicts()

        docs = [plan_for(s) for s in seeds]
        assert docs[0] != docs[1] and docs[1] != docs[2]
