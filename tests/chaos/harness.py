"""The chaos harness: one end-to-end VDCE run under a seeded fault plan.

Lives in the test tree (not ``repro.faults``) because it drives the full
pipeline via :mod:`repro.workloads`, which itself imports the facade —
the library side must stay import-cycle-free.

:func:`run_chaos` builds the two-site testbed, generates a
randomized-but-seeded :class:`~repro.faults.FaultPlan`, pins the solver
graph's tasks alternately across the two sites (so cross-host channels
and WAN traffic actually exist for faults to hit), and drives the run to
a terminal state.  :func:`assert_invariants` encodes the chaos contract:
the application completes correctly or ends in a typed state, no task is
silently lost, no daemon dies silently, and rescheduling converges.
"""

from __future__ import annotations

import dataclasses
from typing import Any

from repro.faults import FaultPlan
from repro.obs import Observability
from repro.obs.export import chrome_trace_json
from repro.util.errors import VDCEError
from repro.workloads import linear_solver_graph, quiet_testbed

#: terminal states a chaos run may legitimately end in
TERMINAL_STATUSES = ("completed", "timeout", "rejected")

#: convergence bound: a run that reschedules more than this is livelocked
MAX_RESCHEDULES = 50


@dataclasses.dataclass
class ChaosOutcome:
    """Everything a chaos invariant check (or a human) needs afterwards."""

    seed: int
    status: str
    error: str | None
    total_tasks: int
    completions: int
    reschedules: int
    makespan: float
    verify_norm: float | None
    fault_counts: dict[str, int]
    fault_log: str                      # canonical JSON, determinism probe
    plan: list[dict[str, Any]]          # the generated plan, serialised
    failed_processes: list[str]
    chrome_trace: str | None = None     # Chrome trace_event JSON (obs runs)
    failovers: int = 0                  # standby promotions that fired
    tasks_executed: int = 0             # runs-to-completion over all hosts
    ledger: str | None = None           # federation ledger (membership runs)


def group_leaders(vdce) -> set[str]:
    """Host addresses acting as group leaders (the failure detectors)."""
    leaders = set()
    for site in vdce.world.sites.values():
        for group in site.groups:
            leaders.add(f"{site.name}/{site.group_leader(group)}")
    return leaders


def crash_candidates(vdce) -> list[str]:
    """Hosts a chaos plan may crash: everything except group leaders.

    A dead leader silences its whole group's failure detection — a real
    deployment would re-elect; this reproduction does not, so crashing a
    leader turns lost tasks undetectable by design, not by bug.
    """
    leaders = group_leaders(vdce)
    return [h.address for h in vdce.world.all_hosts()
            if h.address not in leaders]


def run_chaos(seed: int, n: int = 200, horizon_s: float = 60.0,
              max_sim_time_s: float = 2000.0, obs: bool = False,
              failover_standbys: dict[str, list[str]] | None = None,
              plan: FaultPlan | None = None,
              min_sim_time_s: float = 0.0,
              batching: bool = True,
              membership: bool = False,
              **plan_kwargs) -> ChaosOutcome:
    """One seeded chaos run of the linear-solver pipeline.

    With ``obs=True`` the run carries a live :class:`Observability`
    handle and the outcome's ``chrome_trace`` holds the exported Chrome
    ``trace_event`` JSON — the artifact CI uploads, and the probe the
    determinism test compares byte-for-byte across same-seed runs.

    *failover_standbys* (site name -> standby host names) enables the
    self-healing control plane before faults install, so plans may crash
    site servers; an explicit *plan* overrides the seeded random one.
    *min_sim_time_s* keeps the simulation running past application
    completion (failovers fire for planned faults landing afterwards —
    the control plane heals whether or not work is in flight).
    *batching* flips the network's same-tick fan-out coalescing; the
    batching-identity CI assertions run the same seed both ways and
    require byte-identical fault logs and traces.
    *membership* enables the federation heartbeat daemons, so link
    faults quarantine sites, degraded-mode scheduling re-queues their
    in-flight tasks, and the outcome carries the membership ``ledger``.
    """
    observability = Observability() if obs else None
    vdce = quiet_testbed(seed=seed, obs=observability, batching=batching)
    vdce.start()
    if membership:
        vdce.enable_membership()
    if failover_standbys:
        for site_name in sorted(failover_standbys):
            vdce.enable_failover(site_name,
                                 list(failover_standbys[site_name]))
    if plan is None:
        plan = FaultPlan.random(
            vdce.world.rng.stream("chaos-plan"), crash_candidates(vdce),
            sites=sorted(vdce.world.sites), horizon_s=horizon_s,
            **plan_kwargs)
    injector = vdce.apply_fault_plan(plan)
    graph = linear_solver_graph(vdce.registry, n=n)
    sites = sorted(vdce.world.sites)
    for i, nid in enumerate(graph.nodes):
        graph.node(nid).properties.preferred_site = sites[i % len(sites)]
    error = None
    run = None
    try:
        process, run = vdce.submit(graph, sites[0], k_remote_sites=1)
        deadline = vdce.now + max_sim_time_s
        while not process.triggered and vdce.now < deadline:
            vdce.env.run(until=vdce.now + 5.0)
        if process.triggered:
            if not process.ok:
                run.status = "rejected"
                raise process.exception
        else:
            run.status = "timeout"
    except VDCEError as exc:
        error = type(exc).__name__
    while vdce.now < min_sim_time_s:
        vdce.env.run(until=vdce.now + 5.0)
    results = run.results() if run is not None else {}
    norm = results.get("verify", {}).get("norm")
    return ChaosOutcome(
        seed=seed,
        status=run.status if run is not None else "rejected",
        error=error,
        total_tasks=len(graph),
        completions=len(run.completions) if run is not None else 0,
        reschedules=run.reschedules if run is not None else 0,
        makespan=run.makespan if run is not None else 0.0,
        verify_norm=norm,
        fault_counts=injector.counts(),
        fault_log=injector.log_json(),
        plan=plan.to_dicts(),
        failed_processes=[f"{name}: {exc!r}" for _, name, exc
                          in vdce.env.failed_processes],
        chrome_trace=(chrome_trace_json(observability.spans.spans,
                                        clock_end=vdce.now)
                      if observability is not None else None),
        failovers=vdce.recovery.failovers if vdce.recovery else 0,
        tasks_executed=sum(ac.stats.tasks_executed
                           for ac in vdce.app_controllers.values()),
        ledger=(vdce.federation.ledger_json()
                if vdce.federation is not None else None),
    )


def assert_invariants(outcome: ChaosOutcome) -> None:
    """The chaos contract; raises AssertionError with the seed attached."""
    ctx = f"(seed {outcome.seed}, plan {outcome.plan})"
    assert outcome.failed_processes == [], \
        f"daemons crashed silently: {outcome.failed_processes} {ctx}"
    assert outcome.status in TERMINAL_STATUSES, \
        f"non-terminal status {outcome.status!r} {ctx}"
    assert outcome.reschedules <= MAX_RESCHEDULES, \
        f"rescheduling livelock: {outcome.reschedules} reschedules {ctx}"
    if outcome.status == "completed":
        assert outcome.completions == outcome.total_tasks, \
            (f"task silently lost: {outcome.completions}/"
             f"{outcome.total_tasks} completed {ctx}")
        assert outcome.makespan > 0, f"non-positive makespan {ctx}"
        if outcome.verify_norm is not None:
            assert outcome.verify_norm < 1e-8, \
                f"wrong result: residual {outcome.verify_norm} {ctx}"
    else:
        # a non-completed end state must be attributable: either a typed
        # error was raised or at least one fault was actually injected
        assert outcome.error is not None or outcome.fault_counts, \
            f"untyped, unexplained failure {ctx}"
