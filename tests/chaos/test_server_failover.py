"""Chaos suite: site-server failover under ServerCrash plans.

The contract under test is the self-healing control plane's acceptance
criterion: a server crash mid-execution with a live standby must leave
every application *completed exactly once* (application-level completion
AND task-level execution counts), and two same-seed runs must produce
byte-identical fault-injector logs and Chrome traces — the failover
machinery (WAL shipping, heartbeat detection, rank-staggered promotion,
re-push reconciliation) must be deterministic end to end.

CI runs this module as the ``chaos-failover`` job with pinned
``CHAOS_SEEDS``; ``CHAOS_TRACE_ARTIFACT`` collects the injector logs
and failover Chrome traces as workflow artifacts.
"""

import json
import os
from pathlib import Path

from repro.faults import FaultPlan, HostCrash, ServerCrash

from tests.chaos.harness import assert_invariants, run_chaos

STANDBYS = {"syracuse": ["h1", "h2"], "rome": ["h1", "h2"]}

#: mid-execution crash of the submitting site's server: scheduling and
#: distribution are done (~1 s in), tasks are in flight for minutes
SERVER_CRASH_PLAN = FaultPlan(events=(
    ServerCrash(site="syracuse", at=12.0),
))

#: the promoted standby's machine dies too: second-rank standby takes over
DOUBLE_FAILOVER_PLAN = FaultPlan(events=(
    ServerCrash(site="syracuse", at=10.0, recover_after=40.0),
    HostCrash(host="syracuse/h1", at=45.0),
))

#: first-rank standby is already dead when the server fails: the dead
#: standby must never promote, the next rank takes over after its grace
DEAD_STANDBY_PLAN = FaultPlan(events=(
    HostCrash(host="syracuse/h1", at=5.0),
    ServerCrash(site="syracuse", at=10.0),
))


def artifact_dir() -> Path | None:
    raw = os.environ.get("CHAOS_TRACE_ARTIFACT")
    if not raw:
        return None
    out = Path(raw)
    out.mkdir(parents=True, exist_ok=True)
    return out


class TestFailoverExactlyOnce:
    def test_server_crash_completes_exactly_once(self, chaos_seed):
        outcome = run_chaos(chaos_seed, failover_standbys=STANDBYS,
                            plan=SERVER_CRASH_PLAN)
        assert_invariants(outcome)
        assert outcome.status == "completed", \
            f"failover did not heal the run (seed {chaos_seed})"
        assert outcome.failovers == 1
        assert outcome.completions == outcome.total_tasks
        # exactly once at the *task* level: the re-pushed allocations
        # must be deduplicated, not re-executed
        assert outcome.tasks_executed == outcome.total_tasks, \
            (f"duplicate task execution: {outcome.tasks_executed} runs "
             f"for {outcome.total_tasks} tasks (seed {chaos_seed})")
        assert outcome.verify_norm is not None
        assert outcome.verify_norm < 1e-8

    def test_double_failover_still_exactly_once(self, chaos_seed):
        # drive the sim past the second crash: the role must re-promote
        # even after the application finished
        outcome = run_chaos(chaos_seed, failover_standbys=STANDBYS,
                            plan=DOUBLE_FAILOVER_PLAN, min_sim_time_s=80.0)
        assert_invariants(outcome)
        assert outcome.status == "completed"
        assert outcome.failovers == 2
        assert outcome.tasks_executed == outcome.total_tasks
        # the original server recovered at t=50 but must NOT have
        # reclaimed the role (no split-brain): both promotions stand
        assert outcome.fault_counts.get("server-up") == 1

    def test_dead_first_rank_standby_never_promotes(self, chaos_seed):
        outcome = run_chaos(chaos_seed, failover_standbys=STANDBYS,
                            plan=DEAD_STANDBY_PLAN)
        assert_invariants(outcome)
        assert outcome.status == "completed"
        # exactly one promotion — by the surviving second-rank standby
        assert outcome.failovers == 1
        assert outcome.tasks_executed == outcome.total_tasks

    def test_random_server_plans_hold_invariants(self, chaos_seed):
        # randomized plans with include_servers may also crash standbys;
        # the run must still reach a terminal, attributable state
        outcome = run_chaos(chaos_seed, failover_standbys=STANDBYS,
                            include_servers=True, n_server_crashes=2)
        assert_invariants(outcome)


class TestUnsourceableRepush:
    def test_promotion_repush_never_kills_daemons(self):
        """Seed-13 regression, found by the happens-before triage sweep.

        rome/h1 crashes; its tasks reschedule (with forwarded inputs) to
        rome/h2; then rome's server crashes and h2 promotes.  The
        facade's promotion healing re-pushes every incomplete task at
        its current table assignment as an ``immediate`` push *without*
        inputs — and rome/h2 never opened those tasks' input endpoints,
        so the re-pushed task used to die on
        ``ChannelError("no open channel ...")``, taking its ``ac-exec``
        parent with it.  The Application Controller must refuse to run
        an immediate entry whose inputs cannot be sourced locally.
        """
        outcome = run_chaos(13, failover_standbys=STANDBYS,
                            include_servers=True)
        assert_invariants(outcome)
        assert outcome.status == "completed"
        assert outcome.failovers >= 1
        assert outcome.completions == outcome.total_tasks
        assert outcome.failed_processes == []


class TestFailoverDeterminism:
    def test_same_seed_byte_identical_injector_log(self, chaos_seed):
        first = run_chaos(chaos_seed, failover_standbys=STANDBYS,
                          plan=SERVER_CRASH_PLAN)
        second = run_chaos(chaos_seed, failover_standbys=STANDBYS,
                           plan=SERVER_CRASH_PLAN)
        assert first.fault_log == second.fault_log
        assert first.status == second.status
        assert first.makespan == second.makespan
        assert first.failovers == second.failovers
        assert first.tasks_executed == second.tasks_executed
        out = artifact_dir()
        if out:
            (out / f"failover-injector-log-seed{chaos_seed}.json"
             ).write_text(first.fault_log)

    def test_same_seed_byte_identical_chrome_trace(self, chaos_seed):
        first = run_chaos(chaos_seed, obs=True,
                          failover_standbys=STANDBYS,
                          plan=SERVER_CRASH_PLAN)
        second = run_chaos(chaos_seed, obs=True,
                           failover_standbys=STANDBYS,
                           plan=SERVER_CRASH_PLAN)
        assert first.chrome_trace is not None
        assert first.chrome_trace == second.chrome_trace
        doc = json.loads(first.chrome_trace)
        # the promotion itself must be visible as a failover span
        assert any(ev.get("cat") == "failover"
                   for ev in doc["traceEvents"]), \
            "no failover span in the Chrome trace"
        out = artifact_dir()
        if out:
            (out / f"failover-trace-seed{chaos_seed}.json").write_text(
                first.chrome_trace)

    def test_batching_off_byte_identical(self, chaos_seed):
        """WAL shipping, heartbeats, and the re-push all ride
        ``send_batch`` now; degrading every batch to plain sends must
        leave the failover machinery's traces byte-for-byte unchanged."""
        batched = run_chaos(chaos_seed, obs=True,
                            failover_standbys=STANDBYS,
                            plan=SERVER_CRASH_PLAN)
        unbatched = run_chaos(chaos_seed, obs=True,
                              failover_standbys=STANDBYS,
                              plan=SERVER_CRASH_PLAN, batching=False)
        assert batched.fault_log == unbatched.fault_log
        assert batched.chrome_trace == unbatched.chrome_trace
        assert batched.failovers == unbatched.failovers
        assert batched.tasks_executed == unbatched.tasks_executed
        assert batched.status == unbatched.status
        assert batched.makespan == unbatched.makespan
