"""Chaos-suite configuration: the seed set comes from the environment.

CI runs this suite with ``CHAOS_SEEDS`` pinned (see
``.github/workflows/ci.yml``) so flakes are reproducible by seed;
locally the same three seeds are the default.
"""

import os

import pytest


def chaos_seeds() -> list[int]:
    raw = os.environ.get("CHAOS_SEEDS", "101,202,303")
    return [int(tok) for tok in raw.replace(" ", "").split(",") if tok]


@pytest.fixture(params=chaos_seeds(), ids=lambda s: f"seed{s}")
def chaos_seed(request) -> int:
    return request.param
