"""Chaos suite: multi-tenant trace replay under server failover.

The traffic subsystem's chaos contract: a replay whose dispatched jobs
run as *real* applications (full submit → schedule → distribute →
execute pipeline via :class:`VdceReplayBackend`) must survive a site
server crash with a live standby — every admitted job completes
**exactly once per tenant** (application- and task-level counts agree),
the DRF audit stays clean, no daemon dies silently, and two same-seed
runs agree on every per-tenant count.
"""

from repro.faults import FaultPlan, ServerCrash
from repro.traffic import DRFAllocator, ReplayEngine, make_tenants
from repro.traffic.generators import OpenLoopGenerator
from repro.traffic.templates import TEMPLATE_NAMES
from repro.traffic.vdce_replay import VdceReplayBackend
from repro.util.rng import RngRegistry
from repro.workloads import quiet_testbed

STANDBYS = {"syracuse": ["h1", "h2"], "rome": ["h1", "h2"]}

#: crash the submitting site's server while replayed jobs are in flight
SERVER_CRASH_PLAN = FaultPlan(events=(
    ServerCrash(site="syracuse", at=12.0),
))

ARRIVALS = 8
TENANTS = 3
USERS = 6


def run_replay_chaos(seed, plan=None, standbys=None,
                     max_sim_time_s=4000.0):
    """One seeded multi-tenant replay over a live (faulted) VDCE."""
    vdce = quiet_testbed(seed=seed)
    vdce.start()
    if standbys:
        for site_name in sorted(standbys):
            vdce.enable_failover(site_name, list(standbys[site_name]))
    injector = vdce.apply_fault_plan(plan) if plan is not None else None
    tenants = make_tenants(TENANTS)
    allocator = DRFAllocator(64, 64 * 512.0, tenants)
    backend = VdceReplayBackend(
        vdce, sites=tuple(sorted(vdce.world.sites)), max_in_flight=2)
    arrivals = OpenLoopGenerator(
        RngRegistry(seed).stream("chaos-traffic"), count=ARRIVALS,
        rate_per_s=0.25, users=USERS, tenants=TENANTS,
        templates=TEMPLATE_NAMES)
    engine = ReplayEngine(vdce.env, arrivals, tenants, allocator,
                          backend)
    # the testbed env hosts infinite daemons: prime the lazy stream and
    # drive bounded slices until the replay drains (never bare run())
    engine.prime()
    deadline = vdce.now + max_sim_time_s
    while vdce.now < deadline:
        completed = sum(stats.completed
                        for stats in engine.outcome.tenants.values())
        if completed >= ARRIVALS:
            break
        vdce.env.run(until=vdce.now + 5.0)
    outcome = engine.finalize()
    return vdce, injector, backend, outcome


class TestReplayUnderFailover:
    def test_exactly_once_per_tenant_through_server_crash(self,
                                                          chaos_seed):
        vdce, injector, backend, outcome = run_replay_chaos(
            chaos_seed, plan=SERVER_CRASH_PLAN, standbys=STANDBYS)
        ctx = f"(seed {chaos_seed})"
        assert vdce.env.failed_processes == [], \
            f"daemons crashed silently {ctx}"
        assert injector.counts().get("server-down") == 1
        assert vdce.recovery is not None
        assert vdce.recovery.failovers == 1, \
            f"standby promotion did not fire {ctx}"
        # every arrival admitted, dispatched, and completed once
        dispatched = sum(s.dispatched for s in outcome.tenants.values())
        completed = sum(s.completed for s in outcome.tenants.values())
        assert dispatched == completed == ARRIVALS, \
            f"replay stranded jobs: {completed}/{ARRIVALS} {ctx}"
        assert outcome.drf_violations == 0
        # exactly once at the *task* level, per tenant: rescheduled /
        # re-pushed allocations are deduplicated, never re-counted
        assert backend.completions_by_tenant() \
            == backend.expected_tasks_by_tenant(), \
            f"duplicate or lost task execution {ctx}"
        assert sum(backend.completions_by_tenant().values()) > 0

    def test_fault_free_baseline_drains_clean(self):
        vdce, _, backend, outcome = run_replay_chaos(7)
        assert vdce.env.failed_processes == []
        assert vdce.recovery is None or vdce.recovery.failovers == 0
        completed = sum(s.completed for s in outcome.tenants.values())
        assert completed == ARRIVALS
        assert backend.completions_by_tenant() \
            == backend.expected_tasks_by_tenant()


class TestReplayChaosDeterminism:
    def test_same_seed_same_per_tenant_counts(self, chaos_seed):
        first = run_replay_chaos(chaos_seed, plan=SERVER_CRASH_PLAN,
                                 standbys=STANDBYS)
        second = run_replay_chaos(chaos_seed, plan=SERVER_CRASH_PLAN,
                                  standbys=STANDBYS)
        _, injector_a, backend_a, outcome_a = first
        _, injector_b, backend_b, outcome_b = second
        assert injector_a.log_json() == injector_b.log_json()
        assert backend_a.completions_by_tenant() \
            == backend_b.completions_by_tenant()
        for name in outcome_a.tenants:
            a, b = outcome_a.tenants[name], outcome_b.tenants[name]
            assert (a.dispatched, a.completed, a.wait_sum_s) \
                == (b.dispatched, b.completed, b.wait_sum_s)
        assert outcome_a.horizon_s == outcome_b.horizon_s
