"""Tests for the image-processing task library."""

import numpy as np
import pytest

from repro.tasklib import standard_registry
from repro.tasklib.imaging import build_imaging_library
from repro.util.errors import ExecutionError


@pytest.fixture(scope="module")
def lib():
    return build_imaging_library()


class TestImageGenerate:
    def test_shape_and_range(self, lib):
        img = lib.get("image-generate").execute(
            {}, {"n": 64, "seed": 1})["image"]
        assert img.shape == (64, 64)
        assert img.min() >= 0.0 and img.max() <= 1.0

    def test_deterministic(self, lib):
        gen = lib.get("image-generate")
        a = gen.execute({}, {"n": 32, "seed": 5})["image"]
        b = gen.execute({}, {"n": 32, "seed": 5})["image"]
        np.testing.assert_array_equal(a, b)

    def test_blobs_brighten_scene(self, lib):
        gen = lib.get("image-generate")
        flat = gen.execute({}, {"n": 64, "blobs": 0, "noise": 0.0})["image"]
        blobby = gen.execute({}, {"n": 64, "blobs": 8, "noise": 0.0})["image"]
        assert blobby.max() > flat.max()


class TestFilters:
    def test_blur_reduces_variance(self, lib):
        img = lib.get("image-generate").execute(
            {}, {"n": 64, "noise": 0.2, "seed": 2})["image"]
        blurred = lib.get("gaussian-blur").execute(
            {"image": img}, {"sigma": 2.0})["image"]
        assert blurred.var() < img.var()
        assert blurred.shape == img.shape

    def test_blur_preserves_mean(self, lib):
        img = lib.get("image-generate").execute(
            {}, {"n": 64, "seed": 3})["image"]
        blurred = lib.get("gaussian-blur").execute(
            {"image": img}, {"sigma": 1.0})["image"]
        # interior mean approximately preserved (borders lose mass)
        assert abs(blurred[8:-8, 8:-8].mean()
                   - img[8:-8, 8:-8].mean()) < 0.05

    def test_blur_bad_sigma(self, lib):
        with pytest.raises(ExecutionError):
            lib.get("gaussian-blur").execute(
                {"image": np.zeros((8, 8))}, {"sigma": 0})

    def test_edge_detect_flat_image_is_dark(self, lib):
        edges = lib.get("edge-detect").execute(
            {"image": np.full((32, 32), 0.5)})["edges"]
        assert edges[4:-4, 4:-4].max() < 1e-9

    def test_edge_detect_finds_step(self, lib):
        img = np.zeros((32, 32))
        img[:, 16:] = 1.0
        edges = lib.get("edge-detect").execute({"image": img})["edges"]
        # strongest response at the step column
        peak_col = int(np.argmax(edges[16]))
        assert abs(peak_col - 16) <= 1

    def test_rejects_non_2d(self, lib):
        with pytest.raises(ExecutionError):
            lib.get("edge-detect").execute({"image": np.zeros(8)})


class TestSegmentationPipeline:
    def test_threshold_mask_fraction(self, lib):
        img = lib.get("image-generate").execute(
            {}, {"n": 64, "seed": 4})["image"]
        mask = lib.get("threshold-segment").execute(
            {"image": img}, {"quantile": 0.9})["mask"]
        assert set(np.unique(mask)) <= {0.0, 1.0}
        assert 0.05 < mask.mean() < 0.2  # ~10% above the 0.9 quantile

    def test_threshold_bad_quantile(self, lib):
        with pytest.raises(ExecutionError):
            lib.get("threshold-segment").execute(
                {"image": np.zeros((4, 4))}, {"quantile": 1.5})

    def test_blob_count_separated_squares(self, lib):
        mask = np.zeros((40, 40))
        mask[5:10, 5:10] = 1.0
        mask[25:30, 25:32] = 1.0
        blobs = lib.get("blob-count").execute({"mask": mask})["blobs"]
        assert blobs.shape == (2, 4)
        sizes = sorted(blobs[:, 3])
        assert sizes == [25.0, 35.0]

    def test_blob_count_empty_mask(self, lib):
        blobs = lib.get("blob-count").execute(
            {"mask": np.zeros((10, 10))})["blobs"]
        assert blobs.shape == (0, 4)

    def test_diagonal_blobs_not_merged(self, lib):
        """4-connectivity: diagonal touching pixels are separate blobs."""
        mask = np.zeros((4, 4))
        mask[0, 0] = 1.0
        mask[1, 1] = 1.0
        blobs = lib.get("blob-count").execute({"mask": mask})["blobs"]
        assert blobs.shape[0] == 2

    def test_georegister_mapping(self, lib):
        blobs = np.array([[1.0, 10.0, 20.0, 25.0]])
        targets = lib.get("georegister").execute(
            {"blobs": blobs},
            {"origin": (43.0, -76.0), "meters_per_pixel": 30.0})["targets"]
        assert targets.shape == (1, 4)
        assert targets[0, 1] == pytest.approx(43.0 + 10 * 30e-5)
        assert targets[0, 2] == pytest.approx(-76.0 + 20 * 30e-5)

    def test_georegister_bad_shape(self, lib):
        with pytest.raises(ExecutionError):
            lib.get("georegister").execute({"blobs": np.zeros((2, 3))})

    def test_full_exploitation_pipeline(self, lib):
        """generate -> blur -> segment -> count -> georegister finds the
        planted blobs."""
        n_blobs = 5
        img = lib.get("image-generate").execute(
            {}, {"n": 96, "blobs": n_blobs, "noise": 0.02,
                 "seed": 9})["image"]
        smooth = lib.get("gaussian-blur").execute(
            {"image": img}, {"sigma": 1.0})["image"]
        mask = lib.get("threshold-segment").execute(
            {"image": smooth}, {"quantile": 0.97})["mask"]
        blobs = lib.get("blob-count").execute({"mask": mask})["blobs"]
        targets = lib.get("georegister").execute({"blobs": blobs})["targets"]
        # within a factor of 2 of the planted count (blobs can overlap)
        assert 2 <= targets.shape[0] <= 2 * n_blobs


class TestRegistryIntegration:
    def test_in_standard_registry(self):
        reg = standard_registry()
        assert "image-processing" in reg.menu()
        assert reg.resolve("edge-detect").library == "image-processing"

    def test_runs_on_vdce(self):
        """The imaging pipeline executes through the full simulated VDCE."""
        from repro.afg import GraphBuilder
        from repro.workloads import quiet_testbed
        v = quiet_testbed(seed=41)
        v.start()
        b = GraphBuilder(v.registry, name="exploitation")
        b.task("image-generate", "img", input_size=96,
               params={"n": 96, "blobs": 4, "seed": 3})
        b.task("gaussian-blur", "blur", input_size=96,
               params={"sigma": 1.0})
        b.task("threshold-segment", "seg", input_size=96,
               params={"quantile": 0.97})
        b.task("blob-count", "count", input_size=96)
        b.task("georegister", "geo", input_size=96)
        b.chain("img", "blur", "seg", "count", "geo")
        run = v.run_application(b.build(), "syracuse", max_sim_time_s=600)
        assert run.status == "completed"
        assert run.results()["geo"]["targets"].shape[1] == 4

    def test_runs_on_real_sockets(self):
        from repro.afg import GraphBuilder
        from repro.runtime.local import run_local
        reg = standard_registry()
        b = GraphBuilder(reg, name="exploitation-local")
        b.task("image-generate", "img", input_size=64,
               params={"n": 64, "blobs": 3, "seed": 8})
        b.task("edge-detect", "edges", input_size=64)
        b.link("img", "edges")
        result = run_local(b.build(), timeout_s=30.0)
        assert result.ok, result.errors
        assert result.outputs["edges"]["edges"].shape == (64, 64)
