"""The happens-before sanitizer: planted races, isolation, determinism.

Positive controls first — the zero-findings certificate over the chaos
and bakeoff scenarios is only evidence if a planted same-tick
write/write conflict and a planted cross-site mutation demonstrably
trip the detector.  Then the negative controls (causally ordered
same-tick accesses stay clean), the canonical-report determinism the CI
job pins, and the ``repro analyze`` CLI surface.
"""

from __future__ import annotations

import json

import pytest

from repro.analysis import AnalysisSession, AnalyzeConfig, run_analysis
from repro.analysis import hooks
from repro.analysis.runner import (
    Suppression,
    apply_suppressions,
    report_json,
    render_report,
)
from repro.cli import main
from repro.simcore import Environment


def attach(env: Environment, sites=("syracuse", "rome")) -> AnalysisSession:
    return AnalysisSession(env, sites=sites).attach()


class TestPlantedRaces:
    def test_same_tick_write_write_race_detected(self):
        """Two unordered processes writing one cell at one tick: a race."""
        env = Environment()
        with AnalysisSession(env, sites=("syracuse",)) as session:
            rec = session.recorder

            def writer(env):
                rec.write("syracuse", "planted", "w")
                yield env.timeout(1.0)

            env.process(writer(env), name="writer-a")
            env.process(writer(env), name="writer-b")
            env.run()
        races = session.recorder.races
        assert len(races) == 1
        race = races[0]
        assert race.cell == ("syracuse", "planted")
        assert race.first.write and race.second.write
        assert {race.first.label, race.second.label} \
            == {"writer-a", "writer-b"}
        assert race.first.stack and race.second.stack

    def test_same_tick_read_write_race_detected(self):
        env = Environment()
        with AnalysisSession(env, sites=("syracuse",)) as session:
            rec = session.recorder

            def reader(env):
                rec.read("syracuse", "planted")
                yield env.timeout(1.0)

            def writer(env):
                rec.write("syracuse", "planted")
                yield env.timeout(1.0)

            env.process(reader(env), name="r")
            env.process(writer(env), name="w")
            env.run()
        assert len(session.recorder.races) == 1

    def test_same_tick_read_read_is_clean(self):
        env = Environment()
        with AnalysisSession(env, sites=("syracuse",)) as session:
            rec = session.recorder

            def reader(env):
                rec.read("syracuse", "planted")
                yield env.timeout(1.0)

            env.process(reader(env), name="r1")
            env.process(reader(env), name="r2")
            env.run()
        assert session.recorder.races == []

    def test_trigger_ordered_same_tick_writes_are_clean(self):
        """A triggered event is a causal edge: same tick, no race."""
        env = Environment()
        with AnalysisSession(env, sites=("syracuse",)) as session:
            rec = session.recorder

            def first(env, gate):
                rec.write("syracuse", "planted", "first")
                gate.succeed()
                yield env.timeout(1.0)

            def second(env, gate):
                yield gate
                rec.write("syracuse", "planted", "second")

            gate = env.event()
            env.process(first(env, gate), name="first")
            env.process(second(env, gate), name="second")
            env.run()
        assert session.recorder.races == []

    def test_different_ticks_are_clean(self):
        env = Environment()
        with AnalysisSession(env, sites=("syracuse",)) as session:
            rec = session.recorder

            def writer(env, delay):
                yield env.timeout(delay)
                rec.write("syracuse", "planted")

            env.process(writer(env, 1.0), name="a")
            env.process(writer(env, 2.0), name="b")
            env.run()
        assert session.recorder.races == []


class TestPlantedIsolationViolation:
    def test_cross_site_mutation_flagged(self):
        """A rome-tagged process writing syracuse state is a violation."""
        env = Environment()
        with AnalysisSession(env, sites=("syracuse", "rome")) as session:
            rec = session.recorder

            def trespasser(env):
                rec.write("syracuse", "resource_performance",
                          "mark_down(h1)")
                yield env.timeout(1.0)

            proc = env.process(trespasser(env), name="rome-daemon")
            rec.tag_process(proc, "rome")
            env.run()
        rec = session.recorder
        assert rec.direct_matrix.get(("rome", "syracuse"), 0) == 1
        assert ("rome", "syracuse", 1) in rec.isolation_violations()

    def test_own_site_mutation_is_not_a_violation(self):
        env = Environment()
        with AnalysisSession(env, sites=("syracuse", "rome")) as session:
            rec = session.recorder

            def owner(env):
                rec.write("rome", "resource_performance")
                yield env.timeout(1.0)

            proc = env.process(owner(env), name="rome-daemon")
            rec.tag_process(proc, "rome")
            env.run()
        assert session.recorder.isolation_violations() == []


class TestSuppressions:
    def plant_race(self):
        env = Environment()
        with AnalysisSession(env, sites=("syracuse",)) as session:
            rec = session.recorder

            def writer(env):
                rec.write("syracuse", "wal", "append")
                yield env.timeout(1.0)

            env.process(writer(env), name="a")
            env.process(writer(env), name="b")
            env.run()
        return session.recorder

    def test_matching_glob_suppresses(self):
        rec = self.plant_race()
        assert len(rec.unsuppressed_races()) == 1
        apply_suppressions(rec.races, (Suppression(
            cell="syracuse/wal", reason="single-writer by construction"),))
        assert rec.unsuppressed_races() == []
        assert rec.races[0].suppressed
        assert rec.races[0].suppression == "single-writer by construction"

    def test_non_matching_glob_does_not_suppress(self):
        rec = self.plant_race()
        apply_suppressions(rec.races, (Suppression(cell="rome/*"),))
        assert len(rec.unsuppressed_races()) == 1

    def test_context_glob_must_match_too(self):
        rec = self.plant_race()
        apply_suppressions(rec.races, (Suppression(
            cell="syracuse/*", context="no-such-context"),))
        assert len(rec.unsuppressed_races()) == 1
        apply_suppressions(rec.races, (Suppression(
            cell="syracuse/*", context="a"),))
        assert rec.unsuppressed_races() == []


class TestSessionLifecycle:
    def test_attach_is_exclusive(self):
        env1, env2 = Environment(), Environment()
        with AnalysisSession(env1):
            with pytest.raises(RuntimeError):
                AnalysisSession(env2).attach()

    def test_detach_restores_plain_dispatch(self):
        env = Environment()
        with AnalysisSession(env):
            assert env._hb is not None
            assert hooks.HB is not None
        assert env._hb is None
        assert hooks.HB is None

    def test_instrumented_run_matches_plain_run(self):
        """The instrumented loop must replay engine semantics exactly."""
        def trace_run(session_on: bool):
            env = Environment()
            out: list[tuple[str, float]] = []

            def worker(env, name, delay):
                yield env.timeout(delay)
                out.append((name, env.now))
                yield env.timeout(delay)
                out.append((name, env.now))

            ctx = (AnalysisSession(env) if session_on else None)
            if ctx:
                ctx.attach()
            try:
                env.process(worker(env, "a", 1.0))
                env.process(worker(env, "b", 1.5))
                env.call_later(2.0, lambda _: out.append(("cb", env.now)),
                               None)
                env.run()
            finally:
                if ctx:
                    ctx.detach()
            return out, env.now

        assert trace_run(False) == trace_run(True)


SMALL = AnalyzeConfig(seeds=(101,), chaos_tasks=30)


class TestRunAnalysis:
    @pytest.fixture(scope="class")
    def report(self):
        return run_analysis(SMALL)

    def test_zero_unsuppressed_races_and_shardable(self, report):
        assert report["unsuppressed_races"] == 0
        cert = report["certificate"]
        assert cert["site_isolation"] is True
        assert cert["isolation_violations"] == []
        assert cert["same_tick_clean"] is True
        assert cert["shardable"] is True

    def test_all_cross_site_traffic_flows_through_network(self, report):
        matrix = report["cross_site_matrix"]
        sites = set(matrix["sites"])
        assert sites == {"rome", "syracuse"}
        for pair in matrix["direct"]:
            src, dst = pair.split("->")
            assert not (src in sites and dst in sites and src != dst), (
                f"direct cross-site access {pair}")
        # the scenarios genuinely cross sites — via Network messages
        assert any(src in sites and dst in sites and src != dst
                   for src, dst in (p.split("->")
                                    for p in matrix["network"]))

    def test_tracked_cells_cover_the_shared_state(self, report):
        cells = set(report["cells"])
        # submission lands at rome (first site in sorted order), so the
        # execution-table and task-performance cells live there
        for expected in ("rome/task_performance",
                         "rome/sm-exec",
                         "rome/wal",
                         "rome/resource_performance",
                         "syracuse/resource_performance",
                         "syracuse/wal"):
            assert expected in cells, f"untracked shared state {expected}"

    def test_every_run_reaches_a_terminal_state(self, report):
        assert len(report["runs"]) == 4  # 2 scenarios x 1 seed x 2 modes
        for run in report["runs"]:
            meta = run["meta"]
            if run["scenario"] == "chaos":
                assert meta["status"] in ("completed", "timeout", "rejected")
            else:
                assert set(meta["status"].values()) == {"completed"}

    def test_report_bytes_are_deterministic_per_seed(self, report):
        again = run_analysis(SMALL)
        assert report_json(again) == report_json(report)

    def test_render_report_carries_the_verdict(self, report):
        text = render_report(report)
        assert "SHARDABLE" in text
        assert "cross-site access matrix" in text

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValueError, match="unknown scenario"):
            run_analysis(AnalyzeConfig(scenarios=("nope",)))


class TestMembershipUnderSanitizer:
    def test_membership_enabled_run_stays_isolated_and_race_free(self):
        """The federation acceptance probe: heartbeats, quarantine,
        degraded re-queue, and rejoin catch-up all run under the
        sanitizer — no same-tick races, every cross-site interaction
        via Network."""
        from repro.faults import FaultPlan, LinkFlap
        from repro.workloads import linear_solver_graph, quiet_testbed

        vdce = quiet_testbed(seed=7)
        vdce.start()
        vdce.enable_membership()
        session = AnalysisSession(vdce.env, sites=vdce.world.sites)
        with session:
            session.track_vdce(vdce)
            vdce.apply_fault_plan(FaultPlan([
                LinkFlap("syracuse", "rome", at=6.0, down_s=12.0,
                         up_s=10.0, cycles=2)]))
            graph = linear_solver_graph(vdce.registry, n=60)
            sites = sorted(vdce.world.sites)
            for i, nid in enumerate(graph.nodes):
                graph.node(nid).properties.preferred_site = \
                    sites[i % len(sites)]
            process, run = vdce.submit(graph, sites[0], k_remote_sites=1)
            deadline = vdce.now + 2000.0
            while not process.triggered and vdce.now < deadline:
                vdce.env.run(until=vdce.now + 5.0)
            # ride through the whole flap schedule (last heal at t=50)
            # so quarantine/rejoin/catch-up run under the sanitizer too
            while vdce.now < 60.0:
                vdce.env.run(until=vdce.now + 5.0)
        rec = session.recorder
        assert run.status == "completed"
        assert rec.unsuppressed_races() == []
        assert rec.isolation_violations() == []
        # the flap genuinely exercised the membership machinery
        events = [e["event"]
                  for e in vdce.federation.daemon("syracuse").events]
        assert "quarantine" in events and "rejoin" in events


class TestAnalyzeCli:
    def test_analyze_bakeoff_smoke(self, capsys, tmp_path):
        out_path = tmp_path / "report.json"
        rc = main(["analyze", "--seeds", "101", "--scenario", "bakeoff",
                   "--batching", "on", "--json", str(out_path)])
        assert rc == 0
        assert "SHARDABLE" in capsys.readouterr().out
        doc = json.loads(out_path.read_text())
        assert doc["certificate"]["shardable"] is True
        assert doc["unsuppressed_races"] == 0

    def test_analyze_rejects_bad_scenario(self):
        with pytest.raises(SystemExit):
            main(["analyze", "--scenario", "bogus"])
