"""Property-based tests for dynamic rescheduling (seeded-random loops).

Two layers: the :class:`Rescheduler` unit property (a replacement never
lands on an excluded/failed host and its prediction is finite), and the
end-to-end property (after a single mid-run host crash, every rescheduled
task avoids the dead host and the run still finishes with a finite
makespan).
"""

import math

import numpy as np
import pytest

from repro.faults import FaultPlan, HostCrash
from repro.scheduling.allocation import AllocationEntry
from repro.scheduling.rescheduling import Rescheduler
from repro.util.errors import NoFeasibleHostError
from repro.workloads import linear_solver_graph, quiet_testbed

N_TRIALS = 100


@pytest.fixture(scope="module")
def world():
    v = quiet_testbed(seed=17)
    v.start()
    v.warm_up(10.0)  # monitors populate the dynamic repository columns
    graph = linear_solver_graph(v.registry, n=60)
    return v, graph


class TestReschedulerProperties:
    def test_replacement_never_on_failed_or_current_host(self, world):
        v, graph = world
        hosts = sorted(h.address for h in v.world.all_hosts())
        nodes = list(graph.nodes)
        rng = np.random.default_rng(2024)
        rescheduler = Rescheduler(v.repositories)
        for _ in range(N_TRIALS):
            node = graph.node(nodes[int(rng.integers(len(nodes)))])
            current_host = hosts[int(rng.integers(len(hosts)))]
            failed = hosts[int(rng.integers(len(hosts)))]
            current = AllocationEntry(
                node_id=node.node_id, task_name=node.task_name,
                site=current_host.split("/")[0], hosts=(current_host,),
                predicted_time_s=1.0)
            entry = rescheduler.reschedule(node, current,
                                           exclude_hosts={failed})
            assert failed not in entry.hosts
            assert current_host not in entry.hosts
            assert math.isfinite(entry.predicted_time_s)
            assert entry.predicted_time_s > 0

    def test_excluding_all_but_one_forces_that_host(self, world):
        v, graph = world
        hosts = sorted(h.address for h in v.world.all_hosts())
        rng = np.random.default_rng(7)
        rescheduler = Rescheduler(v.repositories)
        node = graph.node("lu")
        for _ in range(20):
            survivor = hosts[int(rng.integers(len(hosts)))]
            doomed = [h for h in hosts if h != survivor]
            current = AllocationEntry(
                node_id=node.node_id, task_name=node.task_name,
                site=doomed[0].split("/")[0], hosts=(doomed[0],),
                predicted_time_s=1.0)
            entry = rescheduler.reschedule(
                node, current, exclude_hosts=set(doomed))
            assert entry.hosts == (survivor,)

    def test_excluding_every_host_raises_typed_error(self, world):
        v, graph = world
        hosts = {h.address for h in v.world.all_hosts()}
        node = graph.node("lu")
        current = AllocationEntry(
            node_id=node.node_id, task_name=node.task_name,
            site="syracuse", hosts=(sorted(hosts)[0],),
            predicted_time_s=1.0)
        with pytest.raises(NoFeasibleHostError):
            node_entry = Rescheduler(v.repositories).reschedule(
                node, current, exclude_hosts=hosts)
            del node_entry


class TestEndToEndCrashProperty:
    @pytest.mark.parametrize("seed", [3, 7, 11])
    def test_single_crash_never_reassigns_to_dead_host(self, seed):
        v = quiet_testbed(seed=seed)
        v.start()
        graph = linear_solver_graph(v.registry, n=200)
        sites = sorted(v.world.sites)
        for i, nid in enumerate(graph.nodes):
            graph.node(nid).properties.preferred_site = sites[i % 2]
        process, run = v.submit(graph, "syracuse", k_remote_sites=1)
        while run.table is None:
            v.env.run(until=v.now + 0.5)
        leaders = {f"{s.name}/{s.group_leader(g)}"
                   for s in v.world.sites.values() for g in s.groups}
        used = sorted({e.host for e in run.table.entries.values()}
                      - leaders)
        assert used, "test premise broken: all tasks on group leaders"
        victim = used[int(np.random.default_rng(seed).integers(len(used)))]
        v.apply_fault_plan(FaultPlan(events=(
            HostCrash(host=victim, at=v.now + 5.0),
        )))
        deadline = v.now + 2000
        while not process.triggered and v.now < deadline:
            v.env.run(until=v.now + 5.0)
        assert run.status == "completed"
        assert math.isfinite(run.makespan) and run.makespan > 0
        moved = [r for r in v.tracer.query(category="vdce:rescheduled")]
        assert moved, "crash produced no rescheduling"
        for record in moved:
            assert record.detail["to"] != victim
