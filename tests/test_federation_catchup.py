"""Directory catch-up transfers: delta/snapshot modes and convergence.

The federation acceptance contract: a site that rejoins after a
partition (or joins fresh) converges its user-accounts directory to
byte-identical state — :meth:`DirectorySync.digest` — via the
DeltaTracker-cursored transfer, without ever replaying ``add_user``
(raw rows move verbatim, salts included).
"""

from __future__ import annotations

import json

from repro.faults import FaultPlan, LinkDown
from repro.federation import DIRECTORY_KINDS, DirectorySync
from repro.net.topology import ATM_OC3, ETHERNET_10
from repro.repository.site_repository import SiteRepository
from repro.repository.user_accounts import TenantRecord
from repro.resources.host import HostSpec
from repro.core.vdce import VDCE


def make_sync(site: str = "a") -> DirectorySync:
    return DirectorySync(SiteRepository(site))


class TestDirectorySyncUnits:
    def test_delta_mode_carries_only_dirtied_rows(self):
        src = make_sync()
        accounts = src.repository.user_accounts
        accounts.add_user("early", "pw")
        cursor = src.generation()
        accounts.add_tenant(TenantRecord(name="acme"))
        accounts.add_user("alice", "pw", tenant="acme")
        reply = src.build_reply(cursor)
        assert reply["mode"] == "delta"
        assert sorted(reply["users"]) == ["alice"]
        assert sorted(reply["tenants"]) == ["acme"]
        assert "early" not in reply["users"]

    def test_delta_mode_propagates_removals(self):
        src = make_sync()
        dst = make_sync("b")
        src.repository.user_accounts.add_user("doomed", "pw")
        dst.apply_reply(src.build_reply(None))
        assert "doomed" in dst.repository.user_accounts
        cursor = src.generation()
        src.repository.user_accounts.remove_user("doomed")
        reply = src.build_reply(cursor)
        assert reply["mode"] == "delta"
        assert reply["users"] == {"doomed": None}
        assert dst.apply_reply(reply) == 1
        assert "doomed" not in dst.repository.user_accounts
        assert dst.digest() == src.digest()

    def test_compacted_cursor_falls_back_to_snapshot(self):
        src = make_sync()
        src.repository.delta.max_journal = 8
        accounts = src.repository.user_accounts
        accounts.add_user("u0", "pw")
        cursor = src.generation()
        for i in range(1, 20):
            accounts.add_user(f"u{i}", "pw")
        assert src.repository.delta.events_since(cursor) is None
        reply = src.build_reply(cursor)
        assert reply["mode"] == "snapshot"
        assert len(reply["directory"]["users"]) == 20

    def test_none_cursor_means_snapshot(self):
        src = make_sync()
        src.repository.user_accounts.add_user("alice", "pw")
        reply = src.build_reply(None)
        assert reply["mode"] == "snapshot"

    def test_apply_is_idempotent_and_digests_converge(self):
        src = make_sync()
        dst = make_sync("b")
        src.repository.user_accounts.add_tenant(TenantRecord(name="t"))
        src.repository.user_accounts.add_user("alice", "pw", tenant="t")
        reply = src.build_reply(None)
        assert dst.apply_reply(reply) == 2
        generation = dst.generation()
        # a second identical transfer changes nothing — no journal churn
        assert dst.apply_reply(reply) == 0
        assert dst.generation() == generation
        assert dst.digest() == src.digest()

    def test_snapshot_merge_is_additive(self):
        src = make_sync()
        dst = make_sync("b")
        src.repository.user_accounts.add_user("from-src", "pw")
        dst.repository.user_accounts.add_user("local-only", "pw")
        dst.apply_reply(src.build_reply(None))
        accounts = dst.repository.user_accounts
        assert "from-src" in accounts and "local-only" in accounts

    def test_reply_size_scales_with_rows(self):
        src = make_sync()
        empty = DirectorySync.reply_size_bytes(src.build_reply(None))
        src.repository.user_accounts.add_user("alice", "pw")
        one = DirectorySync.reply_size_bytes(src.build_reply(None))
        assert one > empty

    def test_directory_kinds_cover_the_accounts_delta_contract(self):
        sync = make_sync()
        seen: list[str] = []
        sync.repository.user_accounts.subscribe(
            lambda kind, a, b: seen.append(kind))
        accounts = sync.repository.user_accounts
        accounts.add_tenant(TenantRecord(name="t"))
        accounts.add_user("u", "pw", tenant="t")
        accounts.remove_user("u")
        accounts.remove_tenant("t")
        assert set(seen) == DIRECTORY_KINDS


def two_site_vdce(seed: int) -> VDCE:
    """A minimal federation with no default user (deterministic rows)."""
    vdce = VDCE(seed=seed, trace=False)
    vdce.add_site("alpha", lan=ETHERNET_10)
    vdce.add_site("beta", lan=ETHERNET_10)
    vdce.connect_sites("alpha", "beta", ATM_OC3)
    for site, offset in (("alpha", 0), ("beta", 1)):
        for i in range(2):
            vdce.add_host(site, HostSpec(
                name=f"h{i}", arch="sparc", os="solaris",
                cpu_factor=1.0 + 0.2 * (offset + i), memory_mb=128,
                group="g0"))
    vdce.start(add_default_user=False)
    return vdce


MUTATIONS = (
    TenantRecord(name="acme", weight=2.0, quota_procs=8),
    TenantRecord(name="globex", weight=1.0, rate_per_s=5.0, burst=4),
)


def tenant_rows(vdce: VDCE, site: str) -> str:
    rows = vdce.repositories[site].user_accounts.export_rows()["tenants"]
    return json.dumps(rows, sort_keys=True, separators=(",", ":"))


class TestRejoinConvergence:
    def run_partitioned(self, seed: int = 7) -> VDCE:
        """Partition beta away, mutate alpha meanwhile, heal, sync."""
        vdce = two_site_vdce(seed)
        vdce.enable_membership()
        vdce.apply_fault_plan(FaultPlan([
            LinkDown("alpha", "beta", at=10.0, restore_after=30.0)]))

        def mutate(_arg):
            accounts = vdce.repositories["alpha"].user_accounts
            for record in MUTATIONS:
                accounts.add_tenant(record)
            accounts.add_user("alice", "pw", tenant="acme")

        vdce.env.call_later(20.0, mutate)
        vdce.run(until=80.0)
        return vdce

    def test_rejoiner_converges_to_full_digest_of_the_peer(self):
        vdce = self.run_partitioned()
        fed = vdce.federation
        assert fed is not None
        a = DirectorySync(vdce.repositories["alpha"])
        b = DirectorySync(vdce.repositories["beta"])
        # both sides quarantined and rejoined
        events = {e["event"] for e in fed.daemon("beta").events}
        assert {"quarantine", "rejoin", "catch-up"} <= events
        assert b.digest() == a.digest()
        assert "alice" in vdce.repositories["beta"].user_accounts

    def test_rejoin_used_delta_mode_not_snapshot(self):
        vdce = self.run_partitioned()
        catchups = [e for e in vdce.federation.daemon("beta").events
                    if e["event"] == "catch-up"]
        assert catchups and all(e["mode"] == "delta" for e in catchups)

    def test_matches_never_partitioned_control_run(self):
        """The acceptance digest check against an unpartitioned control.

        The control run applies the same mutations with the federation
        healthy; directory content is compared on the deterministic
        tenant rows (account rows carry per-process random salts, so
        cross-run comparison uses within-run digest equality above).
        """
        partitioned = self.run_partitioned()
        control = two_site_vdce(seed=7)
        control.enable_membership()
        accounts = control.repositories["alpha"].user_accounts
        for record in MUTATIONS:
            accounts.add_tenant(record)
        accounts.add_user("alice", "pw", tenant="acme")
        # healthy-federation propagation: beta pulls a snapshot
        control.federation.daemon("beta").request_snapshot("alpha")
        control.run(until=80.0)
        assert tenant_rows(partitioned, "beta") == \
            tenant_rows(control, "beta") == tenant_rows(control, "alpha")

    def test_fresh_joiner_bootstraps_via_snapshot(self):
        vdce = two_site_vdce(seed=11)
        vdce.enable_membership()
        accounts = vdce.repositories["alpha"].user_accounts
        accounts.add_tenant(TenantRecord(name="acme"))
        accounts.add_user("alice", "pw", tenant="acme")
        vdce.run(until=5.0)
        vdce.site_join(
            "gamma",
            hosts=[HostSpec(name="h0", arch="x86", os="linux",
                            cpu_factor=1.2, memory_mb=64, group="g0")],
            links={"alpha": ATM_OC3}, sponsor="alpha")
        vdce.run(until=20.0)
        gamma = DirectorySync(vdce.repositories["gamma"])
        assert gamma.digest() == DirectorySync(
            vdce.repositories["alpha"]).digest()
        catchups = [e for e in vdce.federation.daemon("gamma").events
                    if e["event"] == "catch-up"]
        assert catchups and catchups[0]["mode"] == "snapshot"
