"""Tests for the Host Selection Algorithm (paper Figure 5)."""

import pytest

from repro.afg import GraphBuilder, TaskProperties
from repro.prediction import PerformancePredictor
from repro.scheduling import HostSelector
from repro.util.errors import NoFeasibleHostError

from .conftest import build_federation


def solver_builder(registry) -> GraphBuilder:
    b = GraphBuilder(registry, name="solver")
    b.task("matrix-generate", "gen", input_size=50, params={"n": 50})
    b.task("lu-decomposition", "lu", input_size=50)
    b.link("gen", "lu")
    return b


class TestFeasibility:
    def test_machine_type_preference_filters(self, registry, federation):
        b = solver_builder(registry)
        b.set_properties("lu", machine_type="alpha", input_size=50)
        selector = HostSelector(federation.repositories["syracuse"])
        records = selector.feasible_records(b.graph.node("lu"))
        assert records and all(r.arch == "alpha" for r in records)

    def test_constraints_filter(self, registry):
        fed = build_federation(
            registry=registry,
            constrain={"lu-decomposition": {"syracuse/h0"}})
        b = solver_builder(registry)
        selector = HostSelector(fed.repositories["syracuse"])
        records = selector.feasible_records(b.graph.node("lu"))
        assert [r.address for r in records] == ["syracuse/h0"]

    def test_down_hosts_excluded_by_selection(self, registry, federation):
        repo = federation.repositories["syracuse"]
        for rec in list(repo.resource_performance.hosts_at("syracuse")):
            if rec.address != "syracuse/h1":
                repo.resource_performance.mark_down(rec.address, time=1.0)
        b = solver_builder(registry)
        selector = HostSelector(repo)
        choice = selector.select_for_task(b.graph.node("lu"))
        assert choice.hosts == ("syracuse/h1",)


class TestSelection:
    def test_picks_minimum_predicted(self, registry, federation):
        repo = federation.repositories["syracuse"]
        selector = HostSelector(repo)
        b = solver_builder(registry)
        node = b.graph.node("lu")
        choice = selector.select_for_task(node)
        # cross-check against brute force over feasible records
        predictor = PerformancePredictor(repo.task_performance)
        records = selector.feasible_records(node)
        best = min(
            (predictor.predict(node.definition, 50, r) for r in records),
            key=lambda p: (p.estimate_s, p.host))
        assert choice.hosts == (best.host,)
        assert choice.predicted_time_s == pytest.approx(best.estimate_s)

    def test_load_shifts_selection(self, registry, federation):
        repo = federation.repositories["syracuse"]
        selector = HostSelector(repo)
        b = solver_builder(registry)
        node = b.graph.node("lu")
        first = selector.select_for_task(node).hosts[0]
        # pile load onto the winner; selection should move
        for _ in range(5):
            repo.resource_performance.update_dynamic(
                first, cpu_load=25.0, available_memory_mb=64, time=1.0)
        second = selector.select_for_task(node).hosts[0]
        assert second != first

    def test_whole_graph_selection(self, registry, federation):
        selector = HostSelector(federation.repositories["syracuse"])
        g = solver_builder(registry).build()
        result = selector.select(g)
        assert set(result.choices) == {"gen", "lu"}
        assert result.infeasible == ()
        assert result.site == "syracuse"

    def test_infeasible_reported_not_raised(self, registry):
        fed = build_federation(registry=registry,
                               constrain={"lu-decomposition": set()})
        selector = HostSelector(fed.repositories["syracuse"])
        g = solver_builder(registry).build()
        result = selector.select(g)
        assert result.infeasible == ("lu",)
        assert "gen" in result.choices

    def test_no_feasible_host_raises_for_single_task(self, registry):
        fed = build_federation(registry=registry,
                               constrain={"lu-decomposition": set()})
        selector = HostSelector(fed.repositories["syracuse"])
        b = solver_builder(registry)
        with pytest.raises(NoFeasibleHostError):
            selector.select_for_task(b.graph.node("lu"))


class TestParallelExtension:
    def test_parallel_task_gets_requested_hosts(self, registry, federation):
        b = solver_builder(registry)
        b.set_properties("lu", computation_mode="parallel", processors=2,
                         input_size=50)
        selector = HostSelector(federation.repositories["syracuse"])
        choice = selector.select_for_task(b.graph.node("lu"))
        assert choice.processors == 2
        assert len(choice.hosts) == 2
        assert len(set(choice.hosts)) == 2

    def test_parallel_hosts_all_within_site(self, registry, federation):
        b = solver_builder(registry)
        b.set_properties("lu", computation_mode="parallel", processors=3,
                         input_size=50)
        selector = HostSelector(federation.repositories["rome"])
        choice = selector.select_for_task(b.graph.node("lu"))
        assert all(h.startswith("rome/") for h in choice.hosts)

    def test_insufficient_hosts_for_parallel(self, registry, federation):
        b = solver_builder(registry)
        b.set_properties("lu", computation_mode="parallel", processors=99,
                         input_size=50)
        selector = HostSelector(federation.repositories["syracuse"])
        with pytest.raises(NoFeasibleHostError):
            selector.select_for_task(b.graph.node("lu"))

    def test_parallel_predicted_faster_on_homogeneous_site(self, registry):
        """On identical machines, parallel mode always wins; on a
        heterogeneous site a slow partner can make it lose, which the
        selection correctly reflects (max over participants)."""
        fed = build_federation(
            registry=registry,
            templates=[dict(arch="sparc", os="solaris", cpu_factor=1.0,
                            memory_mb=128)])
        selector = HostSelector(fed.repositories["syracuse"])
        b = solver_builder(registry)
        node = b.graph.node("lu")
        seq = selector.select_for_task(node).predicted_time_s
        b.set_properties("lu", computation_mode="parallel", processors=2,
                         input_size=50)
        par = selector.select_for_task(b.graph.node("lu")).predicted_time_s
        assert par < seq

    def test_figure3_parallel_lu_on_two_sparc_nodes(self, registry):
        """Figure 3's exact property panel: parallel LU on 2 Solaris
        (sparc) machines."""
        fed = build_federation(registry=registry, hosts_per_site=5)
        b = solver_builder(registry)
        b.graph.node("lu").properties = TaskProperties(
            computation_mode="parallel", processors=2, machine_type="sparc",
            input_size=50)
        selector = HostSelector(fed.repositories["syracuse"])
        choice = selector.select_for_task(b.graph.node("lu"))
        recs = {r.address: r for r in
                fed.repositories["syracuse"]
                .resource_performance.hosts_at("syracuse")}
        assert all(recs[h].arch == "sparc" for h in choice.hosts)
        assert choice.processors == 2
