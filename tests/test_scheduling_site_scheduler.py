"""Tests for the Site Scheduler Algorithm (paper Figure 4), the allocation
table, makespan evaluation, baselines, rescheduling and QoS."""

import numpy as np
import pytest

from repro.afg import GraphBuilder
from repro.scheduling import (
    AllocationEntry,
    HostSelector,
    MinLoadScheduler,
    QoSRequirement,
    RandomScheduler,
    ReschedulePolicy,
    Rescheduler,
    ResourceAllocationTable,
    RoundRobinScheduler,
    SiteScheduler,
    assess_schedule,
    evaluate_schedule,
    predicted_schedule_length,
    require_admission,
)
from repro.util.errors import (
    NoFeasibleHostError,
    QoSViolationError,
    SchedulingError,
)

from .conftest import build_federation


def pipeline_graph(registry, n=4, size=200):
    b = GraphBuilder(registry, name="pipeline")
    s = b.task("signal-generate", "src", input_size=size,
               params={"n": size})
    f = b.task("fft-1d", "fft", input_size=size)
    b.link(s, f)
    prev = f
    for i in range(n):
        nid = b.task("lowpass-filter", f"f{i}", input_size=size)
        b.link(prev, nid)
        prev = nid
    return b.build()


def solver_graph(registry, size=50):
    b = GraphBuilder(registry, name="solver")
    b.task("matrix-generate", "gen-a", input_size=size, params={"n": size})
    b.task("vector-generate", "gen-b", input_size=size, params={"n": size})
    b.task("lu-decomposition", "lu", input_size=size)
    b.task("matrix-inverse", "inv-l", input_size=size)
    b.task("matrix-inverse", "inv-u", input_size=size)
    b.task("matrix-multiply", "mul", input_size=size)
    b.task("matrix-vector-multiply", "solve", input_size=size)
    b.link("gen-a", "lu")
    b.link("lu", "inv-l", src_port="lower")
    b.link("lu", "inv-u", src_port="upper")
    b.link("inv-u", "mul", dst_port="a")
    b.link("inv-l", "mul", dst_port="b")
    b.link("mul", "solve", dst_port="matrix")
    b.link("gen-b", "solve", dst_port="vector")
    return b.build()


def selectors_for(fed):
    return {site: HostSelector(repo)
            for site, repo in fed.repositories.items()}


class TestSiteScheduler:
    def test_all_tasks_allocated(self, registry, federation):
        sched = SiteScheduler("syracuse", federation.topology, k_remote_sites=1)
        g = solver_graph(registry)
        table, report = sched.schedule_with_selectors(g, selectors_for(federation))
        assert len(table) == len(g)
        assert report.local_site == "syracuse"
        assert set(report.scheduling_order) == set(g.nodes)

    def test_k0_keeps_everything_local(self, registry, federation):
        sched = SiteScheduler("syracuse", federation.topology, k_remote_sites=0)
        g = solver_graph(registry)
        table, _ = sched.schedule_with_selectors(g, selectors_for(federation))
        assert table.sites() == {"syracuse"}
        assert table.remote_fraction("syracuse") == 0.0

    def test_scheduling_order_follows_levels(self, registry, federation):
        sched = SiteScheduler("syracuse", federation.topology)
        g = solver_graph(registry)
        _, report = sched.schedule_with_selectors(g, selectors_for(federation))
        pos = {nid: i for i, nid in enumerate(report.scheduling_order)}
        for link in g.links:
            assert pos[link.src] < pos[link.dst]

    def test_missing_local_site_rejected(self, registry, federation):
        sched = SiteScheduler("nowhere", federation.topology)
        g = solver_graph(registry)
        with pytest.raises(SchedulingError):
            sched.schedule(g, {})

    def test_negative_k_rejected(self, federation):
        with pytest.raises(SchedulingError):
            SiteScheduler("syracuse", federation.topology, k_remote_sites=-1)

    def test_select_remote_sites_orders_by_latency(self, registry):
        fed = build_federation(site_names=("a", "b", "c"), registry=registry)
        sched = SiteScheduler("a", fed.topology, k_remote_sites=2)
        assert sched.select_remote_sites() == ["b", "c"]  # chain a-b-c

    def test_communication_heavy_chain_colocates(self, registry):
        """A chain with huge transfers should stay on one site even when a
        remote site has slightly faster machines."""
        fed = build_federation(registry=registry)
        # make the remote machines look attractive but the chain heavy
        g = pipeline_graph(registry, n=6, size=50000)
        sched = SiteScheduler("syracuse", fed.topology, k_remote_sites=1)
        table, _ = sched.schedule_with_selectors(g, selectors_for(fed))
        sites = [table.get(nid).site for nid in g.topological_order()]
        # after the entry task, consecutive tasks avoid site bouncing
        bounces = sum(1 for a, b in zip(sites[1:], sites[2:]) if a != b)
        assert bounces <= 1

    def test_entry_task_ignores_transfer(self, registry, federation):
        sched = SiteScheduler("syracuse", federation.topology, k_remote_sites=1)
        g = solver_graph(registry)
        table, report = sched.schedule_with_selectors(g, selectors_for(federation))
        assert table.get("gen-a").predicted_transfer_s == 0.0

    def test_loaded_local_site_offloads(self, registry):
        """When every local machine is overloaded, tasks should go remote
        (the benefit of the k>0 multicast)."""
        fed = build_federation(registry=registry)
        repo = fed.repositories["syracuse"]
        for rec in repo.resource_performance.hosts_at("syracuse"):
            for _ in range(5):
                repo.resource_performance.update_dynamic(
                    rec.address, cpu_load=50.0, available_memory_mb=64,
                    time=1.0)
        g = solver_graph(registry)
        sched = SiteScheduler("syracuse", fed.topology, k_remote_sites=1)
        table, _ = sched.schedule_with_selectors(g, selectors_for(fed))
        assert table.remote_fraction("syracuse") > 0.5

    def test_preferred_site_honoured_when_feasible(self, registry, federation):
        g = solver_graph(registry)
        g.node("lu").properties.preferred_site = "rome"
        sched = SiteScheduler("syracuse", federation.topology, k_remote_sites=1)
        table, _ = sched.schedule_with_selectors(g, selectors_for(federation))
        assert table.get("lu").site == "rome"

    def test_deterministic(self, registry, federation):
        g = solver_graph(registry)
        sched = SiteScheduler("syracuse", federation.topology, k_remote_sites=1)
        t1, _ = sched.schedule_with_selectors(g, selectors_for(federation))
        t2, _ = sched.schedule_with_selectors(g, selectors_for(federation))
        assert {n: e.hosts for n, e in t1.entries.items()} == \
            {n: e.hosts for n, e in t2.entries.items()}


class TestAllocationTable:
    def entry(self, nid="t1", host="s1/h1", **kw):
        defaults = dict(node_id=nid, task_name="fft-1d", site="s1",
                        hosts=(host,), predicted_time_s=1.0)
        defaults.update(kw)
        return AllocationEntry(**defaults)

    def test_assign_get(self):
        t = ResourceAllocationTable("app")
        t.assign(self.entry())
        assert t.get("t1").host == "s1/h1"
        assert "t1" in t and len(t) == 1

    def test_double_assign_rejected(self):
        t = ResourceAllocationTable("app")
        t.assign(self.entry())
        with pytest.raises(SchedulingError):
            t.assign(self.entry())

    def test_reassign(self):
        t = ResourceAllocationTable("app")
        t.assign(self.entry())
        old = t.reassign(self.entry(host="s1/h2"))
        assert old.host == "s1/h1"
        assert t.get("t1").host == "s1/h2"

    def test_reassign_unallocated_rejected(self):
        with pytest.raises(SchedulingError):
            ResourceAllocationTable("app").reassign(self.entry())

    def test_portions(self):
        t = ResourceAllocationTable("app")
        t.assign(self.entry("t1", "s1/h1"))
        t.assign(self.entry("t2", "s1/h2"))
        t.assign(self.entry("t3", "s1/h1"))
        assert {e.node_id for e in t.portion_for_host("s1/h1")} == {"t1", "t3"}
        assert len(t.portion_for_site("s1")) == 3

    def test_entry_validation(self):
        with pytest.raises(SchedulingError):
            AllocationEntry(node_id="x", task_name="t", site="s",
                            hosts=(), predicted_time_s=1.0)
        with pytest.raises(SchedulingError):
            AllocationEntry(node_id="x", task_name="t", site="s",
                            hosts=("a", "b"), predicted_time_s=1.0,
                            processors=1)


class TestMakespanEvaluation:
    def test_chain_serialises(self, registry, federation):
        g = pipeline_graph(registry, n=2)
        sched = SiteScheduler("syracuse", federation.topology, k_remote_sites=0)
        table, _ = sched.schedule_with_selectors(g, selectors_for(federation))
        tl = evaluate_schedule(g, table, federation.topology)
        # chain: makespan >= sum of predicted durations
        total = sum(table.get(n).predicted_time_s for n in g.nodes)
        assert tl.makespan >= total - 1e-9

    def test_same_host_tasks_serialise(self, registry, federation):
        """Independent tasks forced onto one host cannot overlap."""
        g = GraphBuilder(registry, name="par")
        a = g.task("signal-generate", "a", input_size=1024)
        b = g.task("signal-generate", "b", input_size=1024)
        graph = g.build()
        table = ResourceAllocationTable("par")
        for nid in ("a", "b"):
            table.assign(AllocationEntry(
                node_id=nid, task_name="signal-generate", site="syracuse",
                hosts=("syracuse/h0",), predicted_time_s=2.0))
        tl = evaluate_schedule(graph, table, federation.topology)
        assert tl.makespan == pytest.approx(4.0)
        assert {tl.start["a"], tl.start["b"]} == {0.0, 2.0}

    def test_different_hosts_overlap(self, registry, federation):
        g = GraphBuilder(registry, name="par")
        g.task("signal-generate", "a", input_size=1024)
        g.task("signal-generate", "b", input_size=1024)
        graph = g.build()
        table = ResourceAllocationTable("par")
        table.assign(AllocationEntry(node_id="a", task_name="signal-generate",
                                     site="syracuse", hosts=("syracuse/h0",),
                                     predicted_time_s=2.0))
        table.assign(AllocationEntry(node_id="b", task_name="signal-generate",
                                     site="syracuse", hosts=("syracuse/h1",),
                                     predicted_time_s=2.0))
        tl = evaluate_schedule(graph, table, federation.topology)
        assert tl.makespan == pytest.approx(2.0)

    def test_cross_site_transfer_delays_start(self, registry, federation):
        b = GraphBuilder(registry, name="x")
        b.task("matrix-generate", "g", input_size=500, params={"n": 500})
        b.task("matrix-inverse", "i", input_size=500)
        b.link("g", "i")
        graph = b.build()
        table = ResourceAllocationTable("x")
        table.assign(AllocationEntry(node_id="g", task_name="matrix-generate",
                                     site="syracuse", hosts=("syracuse/h0",),
                                     predicted_time_s=1.0))
        table.assign(AllocationEntry(node_id="i", task_name="matrix-inverse",
                                     site="rome", hosts=("rome/h0",),
                                     predicted_time_s=1.0))
        tl = evaluate_schedule(graph, table, federation.topology)
        expected_transfer = federation.topology.transfer_time(
            "syracuse", "rome", graph.node("g").output_bytes())
        assert tl.start["i"] == pytest.approx(1.0 + expected_transfer)

    def test_custom_duration_fn(self, registry, federation):
        g = pipeline_graph(registry, n=1)
        sched = SiteScheduler("syracuse", federation.topology, k_remote_sites=0)
        table, _ = sched.schedule_with_selectors(g, selectors_for(federation))
        tl = evaluate_schedule(g, table, federation.topology,
                               duration_fn=lambda nid: 1.0)
        assert tl.makespan >= 3.0  # three tasks in a chain at 1s each

    def test_predicted_schedule_length_positive(self, registry, federation):
        g = solver_graph(registry)
        sched = SiteScheduler("syracuse", federation.topology)
        table, _ = sched.schedule_with_selectors(g, selectors_for(federation))
        assert predicted_schedule_length(g, table, federation.topology) > 0


class TestBaselines:
    def test_all_baselines_produce_full_tables(self, registry, federation):
        g = solver_graph(registry)
        for sched in (RandomScheduler(federation.repositories,
                                      np.random.default_rng(0)),
                      RoundRobinScheduler(federation.repositories),
                      MinLoadScheduler(federation.repositories)):
            table = sched.schedule(g)
            assert len(table) == len(g)

    def test_round_robin_spreads(self, registry, federation):
        g = pipeline_graph(registry, n=6)
        table = RoundRobinScheduler(federation.repositories).schedule(g)
        assert len(table.hosts()) > 1

    def test_min_load_prefers_idle(self, registry, federation):
        repo = federation.repositories["syracuse"]
        for rec in repo.resource_performance.hosts_at("syracuse"):
            load = 0.0 if rec.address == "syracuse/h2" else 5.0
            repo.resource_performance.update_dynamic(
                rec.address, cpu_load=load, available_memory_mb=64, time=1.0)
        repo2 = federation.repositories["rome"]
        for rec in repo2.resource_performance.hosts_at("rome"):
            repo2.resource_performance.update_dynamic(
                rec.address, cpu_load=5.0, available_memory_mb=64, time=1.0)
        b = GraphBuilder(registry)
        b.task("fft-1d", "f", input_size=1024)
        b.task("signal-generate", "s", input_size=1024)
        b.link("s", "f")
        table = MinLoadScheduler(federation.repositories).schedule(b.build())
        assert table.get("f").host == "syracuse/h2"

    def test_baselines_respect_constraints(self, registry):
        fed = build_federation(
            registry=registry,
            constrain={"lu-decomposition": {"rome/h1"}})
        g = solver_graph(registry)
        for sched in (RandomScheduler(fed.repositories),
                      RoundRobinScheduler(fed.repositories),
                      MinLoadScheduler(fed.repositories)):
            table = sched.schedule(g)
            assert table.get("lu").host == "rome/h1"

    def test_infeasible_everywhere_raises(self, registry):
        fed = build_federation(registry=registry,
                               constrain={"lu-decomposition": set()})
        g = solver_graph(registry)
        with pytest.raises(NoFeasibleHostError):
            RandomScheduler(fed.repositories).schedule(g)

    def test_parallel_task_within_one_site(self, registry, federation):
        g = solver_graph(registry)
        g.node("lu").properties.computation_mode = "parallel"
        g.node("lu").properties.processors = 2
        for sched in (RandomScheduler(federation.repositories),
                      RoundRobinScheduler(federation.repositories),
                      MinLoadScheduler(federation.repositories)):
            table = sched.schedule(g)
            entry = table.get("lu")
            assert len(entry.hosts) == 2
            assert len({h.split("/")[0] for h in entry.hosts}) == 1


class TestRescheduler:
    def test_excludes_current_host(self, registry, federation):
        g = solver_graph(registry)
        node = g.node("lu")
        current = AllocationEntry(
            node_id="lu", task_name="lu-decomposition", site="syracuse",
            hosts=("syracuse/h0",), predicted_time_s=5.0)
        resched = Rescheduler(federation.repositories)
        new = resched.reschedule(node, current)
        assert new.hosts[0] != "syracuse/h0"

    def test_extra_exclusions(self, registry, federation):
        g = solver_graph(registry)
        node = g.node("lu")
        current = AllocationEntry(
            node_id="lu", task_name="lu-decomposition", site="syracuse",
            hosts=("syracuse/h0",), predicted_time_s=5.0)
        all_hosts = set(federation.hosts)
        exclude = all_hosts - {"rome/h2"}
        new = Rescheduler(federation.repositories).reschedule(
            node, current, exclude_hosts=exclude)
        assert new.hosts == ("rome/h2",)

    def test_nowhere_to_go_raises(self, registry, federation):
        g = solver_graph(registry)
        node = g.node("lu")
        current = AllocationEntry(
            node_id="lu", task_name="lu-decomposition", site="syracuse",
            hosts=("syracuse/h0",), predicted_time_s=5.0)
        with pytest.raises(NoFeasibleHostError):
            Rescheduler(federation.repositories).reschedule(
                node, current, exclude_hosts=set(federation.hosts))

    def test_policy_threshold(self):
        policy = ReschedulePolicy(load_threshold=2.0)
        assert policy.should_reschedule(2.5)
        assert not policy.should_reschedule(1.5)


class TestQoS:
    def test_admission_pass_and_fail(self, registry, federation):
        g = solver_graph(registry)
        sched = SiteScheduler("syracuse", federation.topology)
        table, _ = sched.schedule_with_selectors(g, selectors_for(federation))
        predicted = predicted_schedule_length(g, table, federation.topology)
        ok = assess_schedule(g, table, federation.topology,
                             QoSRequirement(deadline_s=predicted * 2))
        assert ok.admitted and ok.margin_s > 0
        bad = assess_schedule(g, table, federation.topology,
                              QoSRequirement(deadline_s=predicted / 2))
        assert not bad.admitted
        with pytest.raises(QoSViolationError):
            require_admission(g, table, federation.topology,
                              QoSRequirement(deadline_s=predicted / 2))

    def test_no_deadline_always_admitted(self, registry, federation):
        g = solver_graph(registry)
        sched = SiteScheduler("syracuse", federation.topology)
        table, _ = sched.schedule_with_selectors(g, selectors_for(federation))
        a = assess_schedule(g, table, federation.topology, QoSRequirement())
        assert a.admitted and a.margin_s is None

    def test_invalid_requirements(self):
        with pytest.raises(Exception):
            QoSRequirement(deadline_s=0)
        with pytest.raises(Exception):
            QoSRequirement(max_host_load=-1)
