"""Tests for the Data Manager, conversion, and runtime services."""

import numpy as np
import pytest

from repro.net import ATM_OC3, Network, Topology
from repro.resources import Host, HostSpec
from repro.runtime.data.conversion import (
    conversion_cost_s,
    conversion_needed,
    convert,
)
from repro.runtime.data.data_manager import ChannelSpec, DataManager
from repro.runtime.services import ConsoleService, IOService
from repro.simcore import Environment
from repro.util.errors import (
    ChannelError,
    ConsoleError,
    DataConversionError,
    RuntimeSystemError,
)


class TestConversion:
    def test_needed_only_when_orders_differ(self):
        assert conversion_needed("big", "little")
        assert not conversion_needed("big", "big")

    def test_unknown_order_rejected(self):
        with pytest.raises(DataConversionError):
            conversion_needed("middle", "big")

    def test_cost_zero_when_same_order(self):
        assert conversion_cost_s(1e6, "big", "big") == 0.0

    def test_cost_proportional_to_size(self):
        c1 = conversion_cost_s(1e6, "big", "little")
        c2 = conversion_cost_s(2e6, "big", "little")
        assert c2 == pytest.approx(2 * c1)
        assert c1 > 0

    def test_negative_size_rejected(self):
        with pytest.raises(DataConversionError):
            conversion_cost_s(-1, "big", "little")

    def test_array_conversion_preserves_values(self):
        arr = np.array([1.5, -2.25, 3e10])
        out = convert(arr, "big", "little")
        np.testing.assert_array_equal(out, arr)

    def test_non_array_passthrough(self):
        assert convert({"a": 1}, "big", "little") == {"a": 1}


def make_pair():
    """Two hosts on different sites with live Data Managers."""
    env = Environment()
    topo = Topology()
    topo.add_site("s1")
    topo.add_site("s2")
    topo.connect("s1", "s2", ATM_OC3)
    net = Network(env, topo)
    h1 = Host(spec=HostSpec(name="h1", arch="sparc"), site="s1")
    h2 = Host(spec=HostSpec(name="h2", arch="x86", os="linux"), site="s2")
    orders = {"s1/h1": "big", "s2/h2": "little"}
    dm1 = DataManager(env, net, h1, byte_orders=orders)
    dm2 = DataManager(env, net, h2, byte_orders=orders)
    return env, net, dm1, dm2


def spec(execution="e1", src_host="s1/h1", dst_host="s2/h2") -> ChannelSpec:
    return ChannelSpec(execution_id=execution, src_node="a", src_port="out",
                       src_host=src_host, dst_node="b", dst_port="in",
                       dst_host=dst_host)


class TestDataManager:
    def test_setup_handshake_round_trip(self):
        env, net, dm1, dm2 = make_pair()
        s = spec()
        proc = env.process(dm1.setup_channels([s]))
        env.run(until=proc)
        assert dm1.stats.setups_requested == 1
        assert dm2.stats.channels_opened == 1
        # handshake costs at least one WAN round trip
        assert env.now >= 2 * ATM_OC3.latency_s

    def test_send_and_receive_value(self):
        env, net, dm1, dm2 = make_pair()
        s = spec()
        env.run(until=env.process(dm1.setup_channels([s])))
        got = []

        def consumer(env):
            payload = yield dm2.receive("e1", "b", "in")
            got.append(payload)

        env.process(consumer(env))
        env.run(until=env.process(dm1.send_output(
            s, np.arange(4.0), size_bytes=1000)))
        env.run(until=env.now + 1.0)
        assert got and got[0]["src_node"] == "a"
        np.testing.assert_array_equal(got[0]["value"], np.arange(4.0))

    def test_heterogeneous_send_pays_conversion(self):
        env, net, dm1, dm2 = make_pair()
        s = spec()
        env.run(until=env.process(dm1.setup_channels([s])))
        t0 = env.now
        env.run(until=env.process(dm1.send_output(s, None, 40e6)))
        assert dm1.stats.conversions == 1
        assert env.now - t0 >= 1.0  # 40 MB at 40 MB/s modelled swap rate

    def test_homogeneous_send_pays_nothing(self):
        env = Environment()
        topo = Topology()
        topo.add_site("s1")
        net = Network(env, topo)
        h1 = Host(spec=HostSpec(name="h1"), site="s1")
        h2 = Host(spec=HostSpec(name="h2"), site="s1")
        orders = {"s1/h1": "big", "s1/h2": "big"}
        dm1 = DataManager(env, net, h1, byte_orders=orders)
        dm2 = DataManager(env, net, h2, byte_orders=orders)
        s = spec(dst_host="s1/h2")
        env.run(until=env.process(dm1.setup_channels([s])))
        env.run(until=env.process(dm1.send_output(s, None, 40e6)))
        assert dm1.stats.conversions == 0

    def test_local_channel_no_handshake(self):
        env, net, dm1, dm2 = make_pair()
        local = spec(dst_host="s1/h1")
        dm1.open_endpoint(local)
        proc = env.process(dm1.setup_channels([local]))
        env.run(until=proc)
        assert dm1.stats.setups_requested == 0

    def test_open_endpoint_wrong_host_rejected(self):
        env, net, dm1, dm2 = make_pair()
        with pytest.raises(ChannelError):
            dm1.open_endpoint(spec())  # dst is h2, not h1

    def test_open_endpoint_idempotent(self):
        """Producer handshake and consumer controller race to open the
        endpoint; the second opener must get the same store."""
        env, net, dm1, dm2 = make_pair()
        first = dm2.open_endpoint(spec())
        second = dm2.open_endpoint(spec())
        assert first is second
        assert dm2.stats.channels_opened == 1

    def test_orphan_data_dropped(self):
        env, net, dm1, dm2 = make_pair()
        s = spec()
        env.run(until=env.process(dm1.setup_channels([s])))
        dm2.close_execution("e1")
        env.run(until=env.process(dm1.send_output(s, 1, 100)))
        env.run(until=env.now + 1.0)
        with pytest.raises(ChannelError):
            dm2.endpoint(s.key)

    def test_close_execution_scoped(self):
        env, net, dm1, dm2 = make_pair()
        s1 = spec(execution="e1")
        s2 = spec(execution="e2")
        dm2.open_endpoint(s1)
        dm2.open_endpoint(s2)
        dm2.close_execution("e1")
        dm2.endpoint(s2.key)  # still open
        with pytest.raises(ChannelError):
            dm2.endpoint(s1.key)

    def test_setup_wrong_origin_rejected(self):
        env, net, dm1, dm2 = make_pair()
        with pytest.raises(ChannelError):
            env.run(until=env.process(dm2.setup_channels([spec()])))


class TestIOService:
    def test_register_value(self):
        io = IOService()
        io.register_value("matrix", [[1, 2]])
        assert io.resolve("matrix") == [[1, 2]]
        assert "matrix" in io

    def test_missing_input(self):
        with pytest.raises(RuntimeSystemError):
            IOService().resolve("ghost")

    def test_json_file(self, tmp_path):
        p = tmp_path / "in.json"
        p.write_text('{"n": 5}')
        io = IOService()
        io.register_file("config", p)
        assert io.resolve("config") == {"n": 5}

    def test_npy_file(self, tmp_path):
        p = tmp_path / "arr.npy"
        np.save(p, np.arange(3))
        io = IOService()
        io.register_file("arr", p)
        np.testing.assert_array_equal(io.resolve("arr"), np.arange(3))

    def test_unsupported_suffix(self, tmp_path):
        p = tmp_path / "x.csv"
        p.write_text("1,2")
        io = IOService()
        io.register_file("x", p)
        with pytest.raises(RuntimeSystemError):
            io.resolve("x")

    def test_missing_file(self, tmp_path):
        io = IOService()
        io.register_file("x", tmp_path / "nope.json")
        with pytest.raises(RuntimeSystemError):
            io.resolve("x")

    def test_provider(self):
        io = IOService()
        io.register_provider("gen", lambda: 42)
        assert io.resolve("gen") == 42


class TestConsoleService:
    def test_lifecycle(self):
        env = Environment()
        c = ConsoleService(env)
        c.start()
        c.suspend()
        assert c.is_suspended
        c.resume()
        c.complete()
        assert c.state == "completed"

    def test_invalid_transitions(self):
        env = Environment()
        c = ConsoleService(env)
        with pytest.raises(ConsoleError):
            c.suspend()  # not started
        c.start()
        c.complete()
        with pytest.raises(ConsoleError):
            c.resume()

    def test_gate_blocks_until_resume(self):
        env = Environment()
        c = ConsoleService(env)
        c.start()
        passed = []

        def worker(env):
            yield env.timeout(1.0)
            yield from c.wait_if_suspended()
            passed.append(env.now)

        def operator(env):
            c.suspend()
            yield env.timeout(10.0)
            c.resume()

        env.process(worker(env))
        env.process(operator(env))
        env.run()
        assert passed == [10.0]

    def test_suspended_time_accounting(self):
        env = Environment()
        c = ConsoleService(env)
        c.start()

        def script(env):
            yield env.timeout(5.0)
            c.suspend()
            yield env.timeout(3.0)
            c.resume()
            yield env.timeout(2.0)
            c.complete()

        env.process(script(env))
        env.run()
        assert c.suspended_time() == pytest.approx(3.0)

    def test_abort_releases_gate(self):
        env = Environment()
        c = ConsoleService(env)
        c.start()
        c.suspend()
        done = []

        def worker(env):
            yield from c.wait_if_suspended()
            done.append(c.state)

        env.process(worker(env))
        c.abort()
        env.run()
        assert done == ["aborted"]
