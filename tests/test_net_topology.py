"""Tests for the WAN/LAN topology and transfer-time model."""

import pytest

from repro.net import ATM_OC3, ETHERNET_10, T1_WAN, LinkSpec, Topology
from repro.util.errors import ConfigurationError


def three_site_topology() -> Topology:
    topo = Topology()
    for s in ("syracuse", "rome", "buffalo"):
        topo.add_site(s)
    topo.connect("syracuse", "rome", ATM_OC3)
    topo.connect("rome", "buffalo", T1_WAN)
    return topo


class TestLinkSpec:
    def test_transfer_time(self):
        link = LinkSpec(latency_s=0.01, bandwidth_bps=1e6)
        assert link.transfer_time(1e6) == pytest.approx(1.01)

    def test_zero_bytes_is_latency(self):
        assert ATM_OC3.transfer_time(0) == ATM_OC3.latency_s

    def test_negative_latency_rejected(self):
        with pytest.raises(ConfigurationError):
            LinkSpec(latency_s=-1, bandwidth_bps=1e6)

    def test_zero_bandwidth_rejected(self):
        with pytest.raises(ConfigurationError):
            LinkSpec(latency_s=0, bandwidth_bps=0)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            ATM_OC3.transfer_time(-1)


class TestTopology:
    def test_sites(self):
        topo = three_site_topology()
        assert set(topo.sites) == {"syracuse", "rome", "buffalo"}

    def test_duplicate_site_rejected(self):
        topo = Topology()
        topo.add_site("a")
        with pytest.raises(ConfigurationError):
            topo.add_site("a")

    def test_self_link_rejected(self):
        topo = Topology()
        topo.add_site("a")
        with pytest.raises(ConfigurationError):
            topo.connect("a", "a")

    def test_unknown_site_link_rejected(self):
        topo = Topology()
        topo.add_site("a")
        with pytest.raises(ConfigurationError):
            topo.connect("a", "nowhere")

    def test_direct_path(self):
        topo = three_site_topology()
        assert topo.path("syracuse", "rome") == ["syracuse", "rome"]

    def test_multi_hop_path(self):
        topo = three_site_topology()
        assert topo.path("syracuse", "buffalo") == [
            "syracuse", "rome", "buffalo"]

    def test_same_site_path(self):
        topo = three_site_topology()
        assert topo.path("rome", "rome") == ["rome"]

    def test_no_path_raises(self):
        topo = Topology()
        topo.add_site("a")
        topo.add_site("b")
        with pytest.raises(ConfigurationError):
            topo.path("a", "b")

    def test_intra_site_uses_lan(self):
        topo = three_site_topology()
        t = topo.transfer_time("rome", "rome", 1000)
        assert t == pytest.approx(ETHERNET_10.transfer_time(1000))

    def test_multi_hop_latency_adds_and_bandwidth_bottlenecks(self):
        topo = three_site_topology()
        nbytes = 1e6
        t = topo.transfer_time("syracuse", "buffalo", nbytes)
        expected = (ATM_OC3.latency_s + T1_WAN.latency_s
                    + nbytes / T1_WAN.bandwidth_bps)
        assert t == pytest.approx(expected)

    def test_transfer_time_monotone_in_size(self):
        topo = three_site_topology()
        sizes = [0, 1e3, 1e6, 1e9]
        times = [topo.transfer_time("syracuse", "rome", s) for s in sizes]
        assert times == sorted(times)

    def test_latency_symmetric(self):
        topo = three_site_topology()
        assert topo.latency("syracuse", "buffalo") == pytest.approx(
            topo.latency("buffalo", "syracuse"))

    def test_nearest_sites_order(self):
        topo = three_site_topology()
        assert topo.neighbors_by_latency("rome") == ["syracuse", "buffalo"]
        assert topo.nearest_sites("rome", 1) == ["syracuse"]
        assert topo.nearest_sites("rome", 0) == []

    def test_nearest_sites_excludes_unreachable(self):
        topo = three_site_topology()
        topo.add_site("island")
        assert "island" not in topo.neighbors_by_latency("rome")

    def test_nearest_sites_negative_k(self):
        topo = three_site_topology()
        with pytest.raises(ValueError):
            topo.nearest_sites("rome", -1)

    def test_picks_lower_latency_route(self):
        topo = Topology()
        for s in ("a", "b", "c"):
            topo.add_site(s)
        # Direct slow link vs two fast hops through c.
        topo.connect("a", "b", LinkSpec(latency_s=0.5, bandwidth_bps=1e9))
        topo.connect("a", "c", LinkSpec(latency_s=0.01, bandwidth_bps=1e9))
        topo.connect("c", "b", LinkSpec(latency_s=0.01, bandwidth_bps=1e9))
        assert topo.path("a", "b") == ["a", "c", "b"]


class TestRuntimeLinkMutation:
    """Mid-run link mutations must invalidate every cached cost.

    Regression guard for the WAN-cache staleness bug: ``_pair`` caches
    ``(latency, bandwidth)`` per site pair (with negative caching of
    partitions), so ``set_link``/``set_link_up``/``remove_site`` must
    flush it or transfer costs, neighbor rankings, and reachability keep
    reporting the pre-mutation world.
    """

    def test_set_link_refreshes_cached_transfer_costs(self):
        topo = three_site_topology()
        before = topo.transfer_time("syracuse", "rome", 1e6)  # warm cache
        slower = LinkSpec(latency_s=ATM_OC3.latency_s * 10,
                          bandwidth_bps=ATM_OC3.bandwidth_bps / 10)
        topo.set_link("syracuse", "rome", slower)
        after = topo.transfer_time("syracuse", "rome", 1e6)
        assert after == pytest.approx(slower.transfer_time(1e6))
        assert after > before

    def test_set_link_up_flips_cached_reachability(self):
        topo = three_site_topology()
        assert topo.reachable("syracuse", "buffalo")  # warm cache
        topo.set_link_up("rome", "buffalo", False)
        assert not topo.reachable("syracuse", "buffalo")
        topo.set_link_up("rome", "buffalo", True)  # negative cache flushed
        assert topo.reachable("syracuse", "buffalo")

    def test_set_link_reorders_cached_neighbor_ranking(self):
        topo = three_site_topology()
        assert topo.neighbors_by_latency("rome") == ["syracuse", "buffalo"]
        topo.set_link("rome", "syracuse", LinkSpec(
            latency_s=T1_WAN.latency_s * 100, bandwidth_bps=1e6))
        assert topo.neighbors_by_latency("rome") == ["buffalo", "syracuse"]

    def test_mutating_unknown_link_refuses(self):
        topo = three_site_topology()
        with pytest.raises(ConfigurationError):
            topo.set_link("syracuse", "buffalo", T1_WAN)  # never connected
        with pytest.raises(ConfigurationError):
            topo.set_link_up("syracuse", "nowhere", False)

    def test_down_link_keeps_spec_and_restores(self):
        topo = three_site_topology()
        spec = topo.link("syracuse", "rome")
        topo.set_link_up("syracuse", "rome", False)
        assert not topo.link_is_up("syracuse", "rome")
        assert topo.link("syracuse", "rome") is spec
        topo.set_link_up("syracuse", "rome", True)
        assert topo.link_is_up("syracuse", "rome")

    def test_removed_site_is_unreachable_not_an_error(self):
        topo = three_site_topology()
        assert topo.reachable("syracuse", "buffalo")  # warm cache
        topo.remove_site("buffalo")
        assert not topo.reachable("syracuse", "buffalo")
        assert not topo.reachable("buffalo", "syracuse")
        assert topo.reachable("syracuse", "rome")
        assert not topo.has_link("rome", "buffalo")

    def test_remove_site_drops_its_pending_schedule_steps(self):
        topo = three_site_topology()
        times = iter([0.0, 50.0, 50.0, 50.0])
        topo.clock = lambda: next(times)
        topo.schedule_link("rome", "buffalo", [(10.0, None)])
        topo.schedule_link("syracuse", "rome", [(20.0, None)])
        topo.remove_site("buffalo")
        # the surviving step still applies; the orphaned one is gone
        assert not topo.reachable("syracuse", "rome")
        assert topo.has_link("syracuse", "rome")

    def test_has_link_requires_both_sites_and_an_edge(self):
        topo = three_site_topology()
        assert topo.has_link("syracuse", "rome")
        assert not topo.has_link("syracuse", "buffalo")
        assert not topo.has_link("syracuse", "atlantis")
