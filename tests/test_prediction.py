"""Tests for forecasting, Predict(task, R), ground truth, calibration."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.prediction import (
    AdaptiveForecaster,
    EWMAForecaster,
    LastValueForecaster,
    MeanForecaster,
    PerformancePredictor,
    TrendForecaster,
    calibrate_weights,
    make_forecaster,
    register_tasks,
)
from repro.repository import ResourcePerformanceDB, TaskPerformanceDB
from repro.resources import Host, HostSpec
from repro.resources.groundtruth import ExecutionModel
from repro.tasklib import standard_registry
from repro.util.errors import ConfigurationError, NoFeasibleHostError


@pytest.fixture(scope="module")
def registry():
    return standard_registry()


class TestForecasters:
    def test_empty_window_forecasts_zero(self):
        for fc in (LastValueForecaster(), MeanForecaster(),
                   EWMAForecaster(), TrendForecaster(), AdaptiveForecaster()):
            assert fc.forecast([]) == 0.0

    def test_last_value(self):
        assert LastValueForecaster().forecast([1.0, 2.0, 5.0]) == 5.0

    def test_mean(self):
        assert MeanForecaster().forecast([1.0, 2.0, 3.0]) == 2.0

    def test_ewma_weights_recent(self):
        rising = [0.0, 0.0, 0.0, 1.0, 1.0]
        assert EWMAForecaster(0.5).forecast(rising) > \
            MeanForecaster().forecast(rising)

    def test_ewma_constant_series(self):
        assert EWMAForecaster().forecast([0.7] * 10) == pytest.approx(0.7)

    def test_ewma_bad_alpha(self):
        with pytest.raises(ConfigurationError):
            EWMAForecaster(alpha=0.0)

    def test_trend_extrapolates(self):
        window = [1.0, 2.0, 3.0, 4.0]
        assert TrendForecaster().forecast(window) == pytest.approx(5.0)

    def test_trend_clamped_at_zero(self):
        window = [3.0, 2.0, 1.0, 0.0]
        assert TrendForecaster().forecast(window) == 0.0

    def test_trend_single_sample(self):
        assert TrendForecaster().forecast([2.0]) == 2.0

    def test_adaptive_picks_trend_on_ramp(self):
        ramp = [float(i) for i in range(10)]
        # trend is exact on a ramp; others lag behind
        assert AdaptiveForecaster().forecast(ramp) == pytest.approx(10.0)

    def test_adaptive_short_window_falls_back_to_mean(self):
        assert AdaptiveForecaster().forecast([4.0, 6.0]) == 5.0

    def test_adaptive_backtest_errors(self):
        errs = AdaptiveForecaster().backtest_errors([1.0, 1.0, 1.0, 1.0])
        assert errs["last-value"] == 0.0

    def test_make_forecaster(self):
        assert make_forecaster("mean").name == "mean"
        with pytest.raises(ConfigurationError):
            make_forecaster("oracle")

    @given(st.lists(st.floats(0, 10), min_size=1, max_size=20))
    def test_forecasts_bounded_for_bounded_input(self, window):
        for fc in (LastValueForecaster(), MeanForecaster(),
                   EWMAForecaster()):
            f = fc.forecast(window)
            assert min(window) - 1e-9 <= f <= max(window) + 1e-9


class TestExecutionModel:
    def make_host(self, arch="sparc", cpu_factor=1.0) -> Host:
        return Host(spec=HostSpec(name=f"h-{arch}", arch=arch,
                                  os="solaris" if arch == "sparc" else "linux",
                                  cpu_factor=cpu_factor), site="s1")

    def test_deterministic(self, registry):
        d = registry.resolve("lu-decomposition")
        h = self.make_host()
        m1, m2 = ExecutionModel(seed=1), ExecutionModel(seed=1)
        assert m1.true_weight(d, h) == m2.true_weight(d, h)

    def test_seed_changes_jitter(self, registry):
        d = registry.resolve("lu-decomposition")
        h = self.make_host()
        assert ExecutionModel(seed=1).true_weight(d, h) != \
            ExecutionModel(seed=2).true_weight(d, h)

    def test_task_dependent_heterogeneity(self, registry):
        """alpha beats sparc on matrix ops but loses on c3i (paper's
        'best for one application, worst for another')."""
        model = ExecutionModel(jitter=0.0)
        alpha = self.make_host(arch="alpha")
        sparc = self.make_host(arch="sparc")
        lu = registry.resolve("lu-decomposition")
        c3i = registry.resolve("track-filter")
        assert model.true_weight(lu, alpha) < model.true_weight(lu, sparc)
        assert model.true_weight(c3i, alpha) > model.true_weight(c3i, sparc)

    def test_cpu_factor_scales_weight(self, registry):
        model = ExecutionModel(jitter=0.0)
        d = registry.resolve("fft-1d")
        fast = self.make_host(cpu_factor=0.5)
        slow = self.make_host(cpu_factor=2.0)
        assert model.true_weight(d, slow) == pytest.approx(
            4 * model.true_weight(d, fast))

    def test_duration_includes_load(self, registry):
        model = ExecutionModel(jitter=0.0)
        d = registry.resolve("fft-1d")
        h = self.make_host()
        base = model.duration(d, 1024, h)
        h.true_load = 1.0
        assert model.duration(d, 1024, h) == pytest.approx(2 * base)

    def test_parallel_duration_shorter(self, registry):
        model = ExecutionModel(jitter=0.0)
        d = registry.resolve("lu-decomposition")
        h = self.make_host()
        assert model.duration(d, 100, h, processors=4) < \
            model.duration(d, 100, h, processors=1)

    def test_bad_jitter(self):
        with pytest.raises(ValueError):
            ExecutionModel(jitter=1.5)


class TestPredictor:
    def setup_dbs(self, registry):
        tp = TaskPerformanceDB()
        rp = ResourcePerformanceDB()
        register_tasks(tp, registry.all_tasks())
        rp.register_host("s1", HostSpec(name="h1", cpu_factor=1.0,
                                        memory_mb=128))
        rp.register_host("s1", HostSpec(name="h2", cpu_factor=2.0,
                                        memory_mb=128))
        return tp, rp

    def test_predict_uses_measured_weight(self, registry):
        tp, rp = self.setup_dbs(registry)
        tp.set_weight("fft-1d", "s1/h1", 3.0)
        pred = PerformancePredictor(tp)
        d = registry.resolve("fft-1d")
        p = pred.predict(d, 1024, rp.get("s1/h1"))
        assert p.weight == 3.0
        assert p.estimate_s == pytest.approx(d.base_time_s * 3.0)

    def test_predict_falls_back_to_cpu_factor(self, registry):
        tp, rp = self.setup_dbs(registry)
        pred = PerformancePredictor(tp)
        d = registry.resolve("fft-1d")
        p = pred.predict(d, 1024, rp.get("s1/h2"))
        assert p.weight == 2.0

    def test_load_term_stretches_estimate(self, registry):
        tp, rp = self.setup_dbs(registry)
        rp.update_dynamic("s1/h1", cpu_load=1.0, available_memory_mb=128,
                          time=1.0)
        pred = PerformancePredictor(tp)
        d = registry.resolve("fft-1d")
        p = pred.predict(d, 1024, rp.get("s1/h1"))
        assert p.load_forecast == 1.0
        assert p.estimate_s == pytest.approx(d.base_time_s * 1.0 * 2.0)

    def test_memory_penalty_applied(self, registry):
        tp, rp = self.setup_dbs(registry)
        rp.update_dynamic("s1/h1", cpu_load=0.0, available_memory_mb=1.0,
                          time=1.0)
        pred = PerformancePredictor(tp)
        d = registry.resolve("matrix-generate")  # quadratic memory model
        p = pred.predict(d, 2000, rp.get("s1/h1"))
        assert p.memory_penalty > 1.0

    def test_ablation_toggles(self, registry):
        tp, rp = self.setup_dbs(registry)
        tp.set_weight("fft-1d", "s1/h1", 5.0)
        rp.update_dynamic("s1/h1", cpu_load=2.0, available_memory_mb=0.0,
                          time=1.0)
        d = registry.resolve("fft-1d")
        rec = rp.get("s1/h1")
        blind = PerformancePredictor(tp, use_weight=False, use_load=False,
                                     use_memory=False)
        p = blind.predict(d, 1024, rec)
        assert p.weight == 1.0
        assert p.load_forecast == 0.0
        assert p.memory_penalty == 1.0
        assert p.estimate_s == pytest.approx(d.base_time_s)

    def test_best_host_picks_minimum(self, registry):
        tp, rp = self.setup_dbs(registry)
        pred = PerformancePredictor(tp)
        d = registry.resolve("fft-1d")
        best = pred.best_host(d, 1024, rp.all_records())
        assert best.host == "s1/h1"  # cpu_factor 1 beats 2

    def test_best_host_skips_down(self, registry):
        tp, rp = self.setup_dbs(registry)
        rp.mark_down("s1/h1", time=1.0)
        pred = PerformancePredictor(tp)
        d = registry.resolve("fft-1d")
        best = pred.best_host(d, 1024, rp.all_records())
        assert best.host == "s1/h2"

    def test_best_host_no_candidates(self, registry):
        tp, rp = self.setup_dbs(registry)
        rp.mark_down("s1/h1", time=1.0)
        rp.mark_down("s1/h2", time=1.0)
        pred = PerformancePredictor(tp)
        with pytest.raises(NoFeasibleHostError):
            pred.best_host(registry.resolve("fft-1d"), 1024, rp.all_records())

    def test_perfect_view_predicts_exactly(self, registry):
        """With calibrated weights, idle hosts, and ample memory, the
        prediction equals the ground-truth dedicated duration."""
        tp, rp = self.setup_dbs(registry)
        model = ExecutionModel(jitter=0.1, seed=3)
        hosts = [Host(spec=HostSpec(name="h1", cpu_factor=1.0), site="s1"),
                 Host(spec=HostSpec(name="h2", cpu_factor=2.0), site="s1")]
        calibrate_weights(tp, registry.all_tasks(), hosts, model)
        pred = PerformancePredictor(tp)
        d = registry.resolve("lu-decomposition")
        for host in hosts:
            p = pred.predict(d, 150, rp.get(host.address))
            truth = model.dedicated_duration(d, 150, host)
            assert p.estimate_s == pytest.approx(truth, rel=1e-9)


class TestCalibration:
    def test_register_tasks_idempotent(self, registry):
        tp = TaskPerformanceDB()
        register_tasks(tp, registry.all_tasks())
        register_tasks(tp, registry.all_tasks())  # no duplicate error
        assert len(tp.task_names()) == len(registry.all_tasks())

    def test_full_coverage_seeds_all_pairs(self, registry):
        tp = TaskPerformanceDB()
        hosts = [Host(spec=HostSpec(name=f"h{i}"), site="s1")
                 for i in range(3)]
        n = calibrate_weights(tp, registry.all_tasks(), hosts,
                              ExecutionModel())
        assert n == len(registry.all_tasks()) * 3
        assert tp.has_weight("lu-decomposition", "s1/h0")

    def test_partial_coverage(self, registry):
        tp = TaskPerformanceDB()
        hosts = [Host(spec=HostSpec(name=f"h{i}"), site="s1")
                 for i in range(4)]
        total = len(registry.all_tasks()) * 4
        n = calibrate_weights(tp, registry.all_tasks(), hosts,
                              ExecutionModel(), coverage=0.5,
                              rng=np.random.default_rng(1))
        assert 0 < n < total

    def test_bad_coverage(self, registry):
        with pytest.raises(ValueError):
            calibrate_weights(TaskPerformanceDB(), [], [], ExecutionModel(),
                              coverage=1.5)
