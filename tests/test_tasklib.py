"""Tests for task definitions, the registry, and the three libraries."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.tasklib import (
    LibraryRegistry,
    TaskDefinition,
    TaskLibrary,
    TaskSignature,
    build_c3i_library,
    build_fourier_library,
    build_matrix_library,
    compute_scale,
    standard_registry,
)
from repro.util.errors import (
    ConfigurationError,
    ExecutionError,
    UnknownTaskError,
)


class TestComputeScale:
    def test_unit_at_base_size(self):
        for c in ("constant", "linear", "nlogn", "quadratic", "cubic"):
            assert compute_scale(c, 100, 100) == pytest.approx(1.0)

    def test_cubic_growth(self):
        assert compute_scale("cubic", 200, 100) == pytest.approx(8.0)

    def test_unknown_complexity(self):
        with pytest.raises(ConfigurationError):
            compute_scale("exponential", 10, 10)

    def test_nonpositive_size(self):
        with pytest.raises(ValueError):
            compute_scale("linear", 0, 10)

    @given(st.sampled_from(["linear", "nlogn", "quadratic", "cubic"]),
           st.floats(1.0, 1e4), st.floats(1.0, 1e4))
    def test_monotone(self, c, a, b):
        lo, hi = sorted((a, b))
        assert compute_scale(c, lo, 100) <= compute_scale(c, hi, 100) + 1e-9


class TestTaskSignature:
    def test_source_sink(self):
        assert TaskSignature(inputs=(), outputs=("o",)).is_source
        assert TaskSignature(inputs=("i",), outputs=()).is_sink

    def test_duplicate_ports_rejected(self):
        with pytest.raises(ConfigurationError):
            TaskSignature(inputs=("a", "a"))


class TestTaskDefinition:
    def make(self, **kw):
        defaults = dict(name="t", library="lib", description="d")
        defaults.update(kw)
        return TaskDefinition(**defaults)

    def test_base_execution_time_scales(self):
        d = self.make(base_time_s=2.0, base_size=100, complexity="cubic")
        assert d.base_execution_time(100) == pytest.approx(2.0)
        assert d.base_execution_time(200) == pytest.approx(16.0)

    def test_parallel_speedup(self):
        d = self.make(parallel_capable=True, parallel_efficiency=1.0,
                      base_time_s=8.0, base_size=100, complexity="constant")
        assert d.base_execution_time(100, processors=4) == pytest.approx(2.0)

    def test_parallel_efficiency_limits_speedup(self):
        d = self.make(parallel_capable=True, parallel_efficiency=0.5,
                      base_time_s=1.0, complexity="constant")
        t4 = d.base_execution_time(d.base_size, processors=4)
        assert t4 == pytest.approx(1.0 * (0.5 + 0.5 / 4))

    def test_parallel_on_sequential_task_rejected(self):
        d = self.make(parallel_capable=False)
        with pytest.raises(ConfigurationError):
            d.base_execution_time(100, processors=2)

    def test_invalid_processors(self):
        with pytest.raises(ValueError):
            self.make().base_execution_time(100, processors=0)

    def test_output_and_memory_models(self):
        d = self.make(output_bytes_per_unit=8.0, output_complexity="quadratic",
                      memory_mb_base=1.0, memory_mb_per_unit=0.001,
                      memory_complexity="linear")
        assert d.output_size_bytes(10) == pytest.approx(800.0)
        assert d.output_size_bytes(0) == 0.0
        assert d.memory_required_mb(100) == pytest.approx(1.1)

    def test_execute_without_impl_rejected(self):
        with pytest.raises(ConfigurationError):
            self.make().execute({})

    def test_execute_validates_ports(self):
        d = self.make(
            signature=TaskSignature(inputs=("x",), outputs=("y",)),
            impl=lambda ins, ps: {"y": ins["x"] + 1})
        assert d.execute({"x": 1}) == {"y": 2}
        with pytest.raises(ConfigurationError):
            d.execute({"wrong": 1})

    def test_execute_validates_outputs(self):
        d = self.make(
            signature=TaskSignature(inputs=(), outputs=("y",)),
            impl=lambda ins, ps: {"z": 1})
        with pytest.raises(ConfigurationError):
            d.execute({})

    def test_invalid_params_rejected(self):
        with pytest.raises(ConfigurationError):
            self.make(base_time_s=0)
        with pytest.raises(ConfigurationError):
            self.make(complexity="alien")
        with pytest.raises(ConfigurationError):
            self.make(parallel_efficiency=0.0)


class TestRegistry:
    def test_menu_structure(self):
        reg = standard_registry()
        menu = reg.menu()
        assert "matrix-operations" in menu
        assert "lu-decomposition" in menu["matrix-operations"]
        assert "c3i" in menu and "fourier-analysis" in menu

    def test_resolve(self):
        reg = standard_registry()
        d = reg.resolve("matrix-multiply")
        assert d.library == "matrix-operations"

    def test_resolve_unknown(self):
        with pytest.raises(UnknownTaskError):
            standard_registry().resolve("quantum-teleport")

    def test_duplicate_task_across_libraries_rejected(self):
        reg = LibraryRegistry()
        l1 = TaskLibrary("a")
        l1.add(TaskDefinition(name="t", library="a", description=""))
        l2 = TaskLibrary("b")
        l2.add(TaskDefinition(name="t", library="b", description=""))
        reg.add_library(l1)
        with pytest.raises(ConfigurationError):
            reg.add_library(l2)

    def test_library_rejects_foreign_task(self):
        lib = TaskLibrary("mine")
        with pytest.raises(ConfigurationError):
            lib.add(TaskDefinition(name="t", library="other", description=""))

    def test_all_tasks_sorted_unique(self):
        reg = standard_registry()
        names = [t.name for t in reg.all_tasks()]
        assert names == sorted(names)
        assert len(names) == len(set(names))


class TestMatrixLibrary:
    @pytest.fixture(scope="class")
    def lib(self):
        return build_matrix_library()

    def test_lu_reconstructs(self, lib):
        gen = lib.get("matrix-generate")
        lu = lib.get("lu-decomposition")
        a = gen.execute({}, {"n": 30, "seed": 3})["matrix"]
        out = lu.execute({"matrix": a})
        np.testing.assert_allclose(out["lower"] @ out["upper"], a, atol=1e-8)
        # L unit-lower-triangular, U upper-triangular
        assert np.allclose(np.diag(out["lower"]), 1.0)
        assert np.allclose(np.tril(out["upper"], -1), 0.0)
        assert np.allclose(np.triu(out["lower"], 1), 0.0)

    def test_lu_rejects_non_square(self, lib):
        with pytest.raises(ExecutionError):
            lib.get("lu-decomposition").execute({"matrix": np.ones((2, 3))})

    def test_lu_zero_pivot(self, lib):
        a = np.array([[0.0, 1.0], [1.0, 0.0]])
        with pytest.raises(ExecutionError):
            lib.get("lu-decomposition").execute({"matrix": a})

    def test_inverse(self, lib):
        a = np.array([[2.0, 0.0], [0.0, 4.0]])
        inv = lib.get("matrix-inverse").execute({"matrix": a})["inverse"]
        np.testing.assert_allclose(inv, [[0.5, 0], [0, 0.25]])

    def test_inverse_singular(self, lib):
        with pytest.raises(ExecutionError):
            lib.get("matrix-inverse").execute({"matrix": np.zeros((3, 3))})

    def test_full_solver_dataflow_matches_figure3(self, lib):
        """A^-1 = U^-1 @ L^-1 and x = A^-1 b solves Ax=b (Figure 3)."""
        n = 25
        a = lib.get("matrix-generate").execute({}, {"n": n, "seed": 7})["matrix"]
        b = lib.get("vector-generate").execute({}, {"n": n, "seed": 8})["vector"]
        lu = lib.get("lu-decomposition").execute({"matrix": a})
        li = lib.get("matrix-inverse").execute({"matrix": lu["lower"]})["inverse"]
        ui = lib.get("matrix-inverse").execute({"matrix": lu["upper"]})["inverse"]
        ainv = lib.get("matrix-multiply").execute({"a": ui, "b": li})["product"]
        x = lib.get("matrix-vector-multiply").execute(
            {"matrix": ainv, "vector": b})["product"]
        norm = lib.get("residual-norm").execute(
            {"matrix": a, "solution": x, "rhs": b})["norm"]
        assert norm < 1e-6

    def test_triangular_solve(self, lib):
        low = np.array([[2.0, 0.0], [1.0, 3.0]])
        rhs = np.array([4.0, 11.0])
        x = lib.get("triangular-solve").execute(
            {"matrix": low, "rhs": rhs}, {"lower": True})["solution"]
        np.testing.assert_allclose(low @ x, rhs)
        up = low.T
        y = lib.get("triangular-solve").execute(
            {"matrix": up, "rhs": rhs}, {"lower": False})["solution"]
        np.testing.assert_allclose(up @ y, rhs)

    def test_add_transpose(self, lib):
        a = np.array([[1.0, 2.0]])
        b = np.array([[3.0, 4.0]])
        assert (lib.get("matrix-add").execute({"a": a, "b": b})["sum"]
                == np.array([[4.0, 6.0]])).all()
        t = lib.get("matrix-transpose").execute({"matrix": a})["transposed"]
        assert t.shape == (2, 1)

    def test_multiply_shape_mismatch(self, lib):
        with pytest.raises(ExecutionError):
            lib.get("matrix-multiply").execute(
                {"a": np.ones((2, 3)), "b": np.ones((2, 3))})

    def test_generate_kinds(self, lib):
        gen = lib.get("matrix-generate")
        for kind in ("random", "diag-dominant", "spd"):
            m = gen.execute({}, {"n": 10, "kind": kind})["matrix"]
            assert m.shape == (10, 10)
        with pytest.raises(ExecutionError):
            gen.execute({}, {"kind": "hilbert"})

    def test_generate_deterministic(self, lib):
        gen = lib.get("matrix-generate")
        m1 = gen.execute({}, {"n": 5, "seed": 9})["matrix"]
        m2 = gen.execute({}, {"n": 5, "seed": 9})["matrix"]
        np.testing.assert_array_equal(m1, m2)

    @given(st.integers(2, 20), st.integers(0, 100))
    def test_lu_property_reconstruction(self, n, seed):
        lib = build_matrix_library()
        a = lib.get("matrix-generate").execute(
            {}, {"n": n, "seed": seed})["matrix"]
        out = lib.get("lu-decomposition").execute({"matrix": a})
        np.testing.assert_allclose(out["lower"] @ out["upper"], a,
                                   atol=1e-7, rtol=1e-7)


class TestFourierLibrary:
    @pytest.fixture(scope="class")
    def lib(self):
        return build_fourier_library()

    def test_fft_ifft_roundtrip(self, lib):
        sig = lib.get("signal-generate").execute(
            {}, {"n": 256, "noise": 0.0})["signal"]
        spec = lib.get("fft-1d").execute({"signal": sig})["spectrum"]
        back = lib.get("ifft-1d").execute({"spectrum": spec})["signal"]
        np.testing.assert_allclose(back, sig, atol=1e-9)

    def test_peak_detect_finds_tones(self, lib):
        sig = lib.get("signal-generate").execute(
            {}, {"n": 1000, "tones": [(50.0, 1.0), (120.0, 0.8)],
                 "noise": 0.0, "sample_rate": 1000.0})["signal"]
        spec = lib.get("fft-1d").execute({"signal": sig})["spectrum"]
        power = lib.get("power-spectrum").execute({"spectrum": spec})["power"]
        peaks = lib.get("peak-detect").execute(
            {"power": power}, {"count": 2, "sample_rate": 1000.0})["peaks"]
        assert set(np.round(peaks)) == {50.0, 120.0}

    def test_lowpass_removes_high_tone(self, lib):
        sig = lib.get("signal-generate").execute(
            {}, {"n": 1000, "tones": [(50.0, 1.0), (300.0, 1.0)],
                 "noise": 0.0, "sample_rate": 1000.0})["signal"]
        spec = lib.get("fft-1d").execute({"signal": sig})["spectrum"]
        filtered = lib.get("lowpass-filter").execute(
            {"spectrum": spec}, {"cutoff_hz": 100.0,
                                 "sample_rate": 1000.0})["spectrum"]
        power = lib.get("power-spectrum").execute(
            {"spectrum": filtered})["power"]
        peaks = lib.get("peak-detect").execute(
            {"power": power}, {"count": 1, "sample_rate": 1000.0})["peaks"]
        assert round(peaks[0]) == 50.0

    def test_lowpass_bad_cutoff(self, lib):
        with pytest.raises(ExecutionError):
            lib.get("lowpass-filter").execute(
                {"spectrum": np.ones(8, dtype=complex)}, {"cutoff_hz": -1})

    def test_convolve_length(self, lib):
        out = lib.get("convolve").execute(
            {"a": np.ones(4), "b": np.ones(3)})["result"]
        assert out.shape == (6,)
        np.testing.assert_allclose(out, [1, 2, 3, 3, 2, 1])


class TestC3ILibrary:
    @pytest.fixture(scope="class")
    def lib(self):
        return build_c3i_library()

    def test_scan_shape(self, lib):
        scans = lib.get("radar-scan").execute(
            {}, {"targets": 5, "steps": 4, "seed": 2})["scans"]
        assert scans.shape == (20, 4)

    def test_track_filter_recovers_velocity(self, lib):
        scans = lib.get("radar-scan").execute(
            {}, {"targets": 8, "steps": 30, "seed": 2, "noise": 1.0})["scans"]
        tracks = lib.get("track-filter").execute({"scans": scans})["tracks"]
        assert tracks.shape == (8, 5)
        speeds = np.linalg.norm(tracks[:, 3:5], axis=1)
        assert (speeds < 600).all()  # within generator velocity bounds

    def test_fusion_averages_matching_ids(self, lib):
        a = np.array([[1.0, 0.0, 0.0, 1.0, 0.0]])
        b = np.array([[1.0, 2.0, 2.0, 3.0, 0.0]])
        fused = lib.get("data-fusion").execute(
            {"tracks_a": a, "tracks_b": b})["fused"]
        np.testing.assert_allclose(fused, [[1.0, 1.0, 1.0, 2.0, 0.0]])

    def test_threat_ranking_prefers_approaching(self, lib):
        tracks = np.array([
            [0.0, 1000.0, 0.0, -300.0, 0.0],   # closing fast
            [1.0, 1000.0, 0.0, 300.0, 0.0],    # receding
        ])
        threats = lib.get("threat-assessment").execute(
            {"tracks": tracks})["threats"]
        assert threats[0, 0] == 0.0
        assert threats[0, 5] > threats[1, 5]

    def test_engagement_plan_round_robin(self, lib):
        threats = np.hstack([np.arange(6).reshape(-1, 1),
                             np.zeros((6, 4)),
                             np.arange(6, 0, -1).reshape(-1, 1)]).astype(float)
        plan = lib.get("engagement-plan").execute(
            {"threats": threats}, {"batteries": 2, "top_k": 4})["plan"]
        assert plan.shape == (4, 3)
        assert list(plan[:, 1]) == [0.0, 1.0, 0.0, 1.0]

    def test_full_pipeline(self, lib):
        scans = lib.get("radar-scan").execute(
            {}, {"targets": 10, "steps": 20, "seed": 5})["scans"]
        tracks = lib.get("track-filter").execute({"scans": scans})["tracks"]
        threats = lib.get("threat-assessment").execute(
            {"tracks": tracks})["threats"]
        plan = lib.get("engagement-plan").execute(
            {"threats": threats}, {"batteries": 3, "top_k": 5})["plan"]
        assert plan.shape == (5, 3)
        scores = threats[:, 5]
        assert (np.diff(scores) <= 1e-9).all()  # descending
