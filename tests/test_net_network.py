"""Tests for the simulated message network."""

import pytest

from repro.net import ATM_OC3, Message, Network, Topology, split_address
from repro.net.network import FaultAction, TrafficStats
from repro.simcore import Environment
from repro.util.errors import ChannelError, ConfigurationError


def make_net() -> tuple[Environment, Network]:
    env = Environment()
    topo = Topology()
    topo.add_site("s1")
    topo.add_site("s2")
    topo.connect("s1", "s2", ATM_OC3)
    return env, Network(env, topo)


class TestAddressing:
    def test_split_host_address(self):
        assert split_address("s1/h1") == ("s1", "s1/h1")

    def test_split_service_address(self):
        assert split_address("s1/h1/monitor") == ("s1", "s1/h1")

    def test_split_site_actor(self):
        assert split_address("s1") == ("s1", "s1")

    def test_malformed(self):
        with pytest.raises(ConfigurationError):
            split_address("/oops")


class TestDelivery:
    def test_message_arrives_with_delay(self):
        env, net = make_net()
        box = net.register("s2/h1")
        net.register("s1/h1")
        net.send("s1/h1", "s2/h1", "ping", payload=123, size_bytes=0)
        env.run()
        msg = box.try_get()
        assert msg is not None and msg.payload == 123
        # WAN latency + per-message overhead
        assert env.now >= ATM_OC3.latency_s

    def test_send_to_unregistered_raises(self):
        env, net = make_net()
        with pytest.raises(ChannelError):
            net.send("s1/h1", "s2/ghost", "ping")

    def test_intra_host_is_fast(self):
        env, net = make_net()
        box = net.register("s1/h1/svc")
        net.send("s1/h1/other", "s1/h1/svc", "local")
        env.run()
        assert box.try_get() is not None
        assert env.now < 0.001

    def test_larger_messages_take_longer(self):
        env, net = make_net()
        small = net.delay_for("s1/h1", "s2/h1", 100)
        big = net.delay_for("s1/h1", "s2/h1", 10_000_000)
        assert big > small

    def test_multicast_reaches_all(self):
        env, net = make_net()
        boxes = [net.register(f"s2/h{i}") for i in range(3)]
        net.multicast("s1/h1", [f"s2/h{i}" for i in range(3)], "afg",
                      payload="graph")
        env.run()
        for box in boxes:
            msg = box.try_get()
            assert msg is not None and msg.payload == "graph"

    def test_fifo_between_same_pair(self):
        env, net = make_net()
        box = net.register("s2/h1")

        def sender(env):
            for i in range(5):
                net.send("s1/h1", "s2/h1", "seq", payload=i, size_bytes=64)
                yield env.timeout(0.001)

        env.process(sender(env))
        env.run()
        got = []
        while (m := box.try_get()) is not None:
            got.append(m.payload)
        assert got == [0, 1, 2, 3, 4]


class TestFailureDrops:
    def test_down_host_drops_message(self):
        env, net = make_net()
        box = net.register("s2/h1")
        net.is_up = lambda host: host != "s2/h1"
        net.send("s1/h1", "s2/h1", "ping")
        env.run()
        assert box.try_get() is None
        assert net.stats.dropped == 1

    def test_down_sender_drops_message(self):
        env, net = make_net()
        box = net.register("s2/h1")
        net.is_up = lambda host: host != "s1/h1"
        net.send("s1/h1", "s2/h1", "ping")
        env.run()
        assert box.try_get() is None

    def test_mid_flight_crash_loses_message(self):
        env, net = make_net()
        box = net.register("s2/h1")
        up = {"s2/h1": True}
        net.is_up = lambda host: up.get(host, True)

        def crash(env):
            yield env.timeout(ATM_OC3.latency_s / 2)
            up["s2/h1"] = False

        net.send("s1/h1", "s2/h1", "ping", size_bytes=0)
        env.process(crash(env))
        env.run()
        assert box.try_get() is None


class TestDelayForEdgeCases:
    def test_zero_byte_payload_still_costs_latency(self):
        env, net = make_net()
        delay = net.delay_for("s1/h1", "s2/h1", 0)
        assert delay >= ATM_OC3.latency_s + net.per_message_overhead_s

    def test_zero_byte_loopback_costs_only_overhead(self):
        env, net = make_net()
        delay = net.delay_for("s1/h1", "s1/h1/svc", 0)
        assert delay == pytest.approx(1e-5 + net.per_message_overhead_s)

    def test_self_send_src_equals_dst(self):
        env, net = make_net()
        box = net.register("s1/h1")
        net.send("s1/h1", "s1/h1", "note", payload="self")
        env.run()
        msg = box.try_get()
        assert msg is not None and msg.src == msg.dst == "s1/h1"

    def test_self_send_uses_loopback_not_topology(self):
        env, net = make_net()
        # loopback between services of one host must not consult the WAN
        assert net.delay_for("s1/h1/a", "s1/h1/b", 1000) < \
            net.delay_for("s1/h1", "s1/h2", 1000)

    def test_unknown_site_raises(self):
        env, net = make_net()
        with pytest.raises(Exception):
            net.delay_for("s1/h1", "atlantis/h1", 100)

    def test_malformed_address_raises(self):
        env, net = make_net()
        with pytest.raises(ConfigurationError):
            net.delay_for("/bad", "s2/h1", 100)


class TestTrafficStats:
    def test_counters(self):
        env, net = make_net()
        net.register("s2/h1")
        net.send("s1/h1", "s2/h1", "a", size_bytes=100)
        net.send("s1/h1", "s2/h1", "a", size_bytes=50)
        net.send("s1/h1", "s2/h1", "b", size_bytes=25)
        assert net.stats.messages == 3
        assert net.stats.bytes == 175
        assert net.stats.by_kind == {"a": 2, "b": 1}
        assert net.stats.bytes_by_kind["a"] == 150

    def test_account_zero_byte_message(self):
        stats = TrafficStats()
        stats.account(Message(src="a", dst="b", kind="k", size_bytes=0))
        assert stats.messages == 1
        assert stats.bytes == 0
        assert stats.by_kind == {"k": 1}
        assert stats.bytes_by_kind["k"] == 0

    def test_account_accumulates_float_bytes(self):
        stats = TrafficStats()
        stats.account(Message(src="a", dst="b", kind="k", size_bytes=0.5))
        stats.account(Message(src="a", dst="b", kind="k", size_bytes=0.25))
        assert stats.bytes == pytest.approx(0.75)

    def test_dropped_messages_still_accounted_as_sent(self):
        env, net = make_net()
        net.register("s2/h1")
        net.is_up = lambda host: host != "s2/h1"
        net.send("s1/h1", "s2/h1", "a", size_bytes=10)
        assert net.stats.messages == 1
        assert net.stats.dropped == 1


class TestFaultHook:
    def test_hook_drop_counts_injected(self):
        env, net = make_net()
        box = net.register("s2/h1")
        net.fault_hook = lambda msg: FaultAction(drop=True)
        net.send("s1/h1", "s2/h1", "ping")
        env.run()
        assert box.try_get() is None
        assert net.stats.dropped == 1
        assert net.stats.injected_drops == 1

    def test_hook_duplicate_delivers_copies(self):
        env, net = make_net()
        box = net.register("s2/h1")
        net.fault_hook = lambda msg: FaultAction(duplicates=2)
        net.send("s1/h1", "s2/h1", "ping", payload=1)
        env.run()
        got = []
        while box.try_get() is not None:
            got.append(1)
        assert len(got) == 3
        assert net.stats.injected_duplicates == 2

    def test_hook_delay_slows_delivery(self):
        env, net = make_net()
        box = net.register("s2/h1")
        net.fault_hook = lambda msg: FaultAction(extra_delay_s=1.0)
        net.send("s1/h1", "s2/h1", "ping", size_bytes=0)
        env.run(until=0.5)
        assert box.try_get() is None
        env.run()
        assert box.try_get() is not None
        assert env.now >= 1.0

    def test_hook_none_means_no_fault(self):
        env, net = make_net()
        box = net.register("s2/h1")
        net.fault_hook = lambda msg: None
        net.send("s1/h1", "s2/h1", "ping")
        env.run()
        assert box.try_get() is not None
        assert net.stats.injected_drops == 0

    def test_hook_not_consulted_for_down_host(self):
        env, net = make_net()
        calls = []
        net.register("s2/h1")
        net.is_up = lambda host: host != "s2/h1"
        net.fault_hook = lambda msg: calls.append(msg)
        net.send("s1/h1", "s2/h1", "ping")
        assert calls == []  # natural drop wins before injection


class TestMessage:
    def test_reply_swaps_addresses(self):
        m = Message(src="a", dst="b", kind="req")
        r = m.reply("resp", payload=1)
        assert (r.src, r.dst, r.kind, r.payload) == ("b", "a", "resp", 1)

    def test_sequence_numbers_unique(self):
        a = Message(src="x", dst="y", kind="k")
        b = Message(src="x", dst="y", kind="k")
        assert a.seq != b.seq
