"""Tests for the Application Flow Graph structure and validation."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.afg import ApplicationFlowGraph, GraphBuilder, TaskProperties
from repro.tasklib import standard_registry
from repro.util.errors import CycleError, GraphError, PortError


@pytest.fixture(scope="module")
def registry():
    return standard_registry()


def solver_graph(registry) -> ApplicationFlowGraph:
    """The Figure 3 Linear Equation Solver AFG."""
    b = GraphBuilder(registry, name="linear-equation-solver")
    b.task("matrix-generate", "gen-a", input_size=50, params={"n": 50})
    b.task("vector-generate", "gen-b", input_size=50, params={"n": 50})
    b.task("lu-decomposition", "lu", input_size=50)
    b.task("matrix-inverse", "inv-l", input_size=50)
    b.task("matrix-inverse", "inv-u", input_size=50)
    b.task("matrix-multiply", "mul", input_size=50)
    b.task("matrix-vector-multiply", "solve", input_size=50)
    b.link("gen-a", "lu")
    b.link("lu", "inv-l", src_port="lower")
    b.link("lu", "inv-u", src_port="upper")
    b.link("inv-u", "mul", dst_port="a")
    b.link("inv-l", "mul", dst_port="b")
    b.link("mul", "solve", dst_port="matrix")
    b.link("gen-b", "solve", dst_port="vector")
    return b.build()


class TestGraphConstruction:
    def test_solver_graph_shape(self, registry):
        g = solver_graph(registry)
        assert len(g) == 7
        assert set(g.entry_nodes()) == {"gen-a", "gen-b"}
        assert g.exit_nodes() == ["solve"]

    def test_duplicate_node_id_rejected(self, registry):
        g = ApplicationFlowGraph()
        d = registry.resolve("matrix-generate")
        g.add_node("n1", d)
        with pytest.raises(GraphError):
            g.add_node("n1", d)

    def test_empty_node_id_rejected(self, registry):
        with pytest.raises(GraphError):
            ApplicationFlowGraph().add_node("", registry.resolve("fft-1d"))

    def test_empty_name_rejected(self):
        with pytest.raises(GraphError):
            ApplicationFlowGraph(name="")

    def test_link_unknown_node(self, registry):
        g = ApplicationFlowGraph()
        g.add_node("a", registry.resolve("matrix-generate"))
        with pytest.raises(GraphError):
            g.add_link("a", "matrix", "ghost", "matrix")

    def test_link_bad_ports(self, registry):
        g = ApplicationFlowGraph()
        g.add_node("a", registry.resolve("matrix-generate"))
        g.add_node("b", registry.resolve("lu-decomposition"))
        with pytest.raises(PortError):
            g.add_link("a", "nonexistent", "b", "matrix")
        with pytest.raises(PortError):
            g.add_link("a", "matrix", "b", "nonexistent")

    def test_input_port_fed_once(self, registry):
        g = ApplicationFlowGraph()
        g.add_node("a1", registry.resolve("matrix-generate"))
        g.add_node("a2", registry.resolve("matrix-generate"))
        g.add_node("b", registry.resolve("lu-decomposition"))
        g.add_link("a1", "matrix", "b", "matrix")
        with pytest.raises(PortError):
            g.add_link("a2", "matrix", "b", "matrix")

    def test_self_loop_rejected(self, registry):
        g = ApplicationFlowGraph()
        g.add_node("f", registry.resolve("lowpass-filter"))
        with pytest.raises(CycleError):
            g.add_link("f", "spectrum", "f", "spectrum")

    def test_cycle_rejected(self, registry):
        g = ApplicationFlowGraph()
        g.add_node("f1", registry.resolve("lowpass-filter"))
        g.add_node("f2", registry.resolve("lowpass-filter"))
        g.add_link("f1", "spectrum", "f2", "spectrum")
        with pytest.raises(CycleError):
            g.add_link("f2", "spectrum", "f1", "spectrum")

    def test_remove_node_drops_links(self, registry):
        g = solver_graph(registry)
        g.remove_node("lu")
        assert "lu" not in g.nodes
        assert all("lu" not in (l.src, l.dst) for l in g.links)

    def test_remove_missing_link(self, registry):
        from repro.afg import Link
        g = solver_graph(registry)
        with pytest.raises(GraphError):
            g.remove_link(Link("x", "y", "z", "w"))


class TestGraphQueries:
    def test_topological_order_respects_links(self, registry):
        g = solver_graph(registry)
        order = g.topological_order()
        pos = {nid: i for i, nid in enumerate(order)}
        for link in g.links:
            assert pos[link.src] < pos[link.dst]

    def test_predecessors_successors(self, registry):
        g = solver_graph(registry)
        assert set(g.successors("lu")) == {"inv-l", "inv-u"}
        assert set(g.predecessors("mul")) == {"inv-l", "inv-u"}
        assert g.predecessors("gen-a") == []

    def test_critical_path_at_least_max_node(self, registry):
        g = solver_graph(registry)
        cp = g.critical_path_cost()
        assert cp >= max(n.base_cost() for n in g.nodes.values())
        assert cp <= g.total_cost()

    def test_critical_path_chain_equals_total(self, registry):
        b = GraphBuilder(registry)
        ids = [b.task("lowpass-filter", f"f{i}") for i in range(4)]
        src = b.task("signal-generate", "sig")
        fft = b.task("fft-1d", "fft")
        b.chain(src, fft, *ids)
        g = b.build()
        assert g.critical_path_cost() == pytest.approx(g.total_cost())


class TestValidation:
    def test_empty_graph_invalid(self):
        with pytest.raises(GraphError):
            ApplicationFlowGraph().validate()

    def test_unconnected_input_rejected_on_submit(self, registry):
        g = ApplicationFlowGraph()
        g.add_node("lu", registry.resolve("lu-decomposition"))
        with pytest.raises(PortError):
            g.validate(require_connected_inputs=True)
        g.validate(require_connected_inputs=False)  # draft save is fine

    def test_valid_solver(self, registry):
        solver_graph(registry).validate()


class TestSerialization:
    def test_roundtrip(self, registry):
        g = solver_graph(registry)
        g.node("lu").properties = TaskProperties(
            computation_mode="parallel", processors=2, machine_type="sparc",
            input_size=50.0)
        data = g.to_dict()
        g2 = ApplicationFlowGraph.from_dict(data, registry)
        assert set(g2.nodes) == set(g.nodes)
        assert len(g2.links) == len(g.links)
        p = g2.node("lu").properties
        assert p.computation_mode == "parallel"
        assert p.processors == 2
        assert p.machine_type == "sparc"

    def test_json_safe(self, registry):
        import json
        g = solver_graph(registry)
        json.dumps(g.to_dict())  # must not raise


class TestGraphBuilder:
    def test_port_inference_requires_unique(self, registry):
        b = GraphBuilder(registry)
        b.task("lu-decomposition", "lu", input_size=10)
        b.task("matrix-inverse", "inv", input_size=10)
        with pytest.raises(PortError):
            b.link("lu", "inv")  # lu has two outputs

    def test_dst_inference_skips_fed_ports(self, registry):
        b = GraphBuilder(registry)
        a1 = b.task("matrix-generate", "a1", input_size=10)
        a2 = b.task("matrix-generate", "a2", input_size=10)
        m = b.task("matrix-multiply", "m", input_size=10)
        b.link(a1, m)  # feeds "a"... whichever is inferred first
        b.link(a2, m)  # must infer the remaining port
        fed = {l.dst_port for l in b.graph.in_links(m)}
        assert fed == {"a", "b"}

    def test_chain(self, registry):
        b = GraphBuilder(registry)
        s = b.task("signal-generate", "s")
        f = b.task("fft-1d", "f")
        p = b.task("power-spectrum", "p")
        b.chain(s, f, p)
        g = b.build()
        assert g.topological_order() == ["s", "f", "p"]

    def test_prop_kwargs(self, registry):
        b = GraphBuilder(registry)
        nid = b.task("matrix-generate", input_size=300, params={"n": 300})
        assert b.node(nid).properties.input_size == 300


class TestTaskNodeCosts:
    def test_base_cost_uses_parallel_mode(self, registry):
        b = GraphBuilder(registry)
        b.task("lu-decomposition", "lu")
        seq = b.node("lu").base_cost()
        b.set_properties("lu", computation_mode="parallel", processors=4)
        par = b.node("lu").base_cost()
        assert par < seq

    def test_output_bytes_quadratic_for_matrices(self, registry):
        b = GraphBuilder(registry)
        b.task("matrix-generate", "g", input_size=100)
        assert b.node("g").output_bytes() == pytest.approx(8 * 100**2)


@given(st.integers(2, 12), st.integers(0, 1000))
def test_random_layered_dags_are_valid(n_nodes, seed):
    """Property: randomly wired filter chains never violate DAG/port rules."""
    import numpy as np
    registry = standard_registry()
    rng = np.random.default_rng(seed)
    g = ApplicationFlowGraph(name="prop")
    filt = registry.resolve("lowpass-filter")
    src = registry.resolve("signal-generate")
    fft = registry.resolve("fft-1d")
    g.add_node("src", src)
    g.add_node("fft", fft)
    g.add_link("src", "signal", "fft", "signal")
    prev = "fft"
    for i in range(n_nodes):
        nid = f"f{i}"
        g.add_node(nid, filt)
        # connect from a random earlier spectrum producer
        candidates = ["fft"] + [f"f{j}" for j in range(i)]
        chosen = candidates[int(rng.integers(len(candidates)))]
        # input port may already be fed; fall back to prev free node
        try:
            g.add_link(chosen, "spectrum", nid, "spectrum")
        except Exception:
            g.add_link(prev, "spectrum", nid, "spectrum")
        prev = nid
    order = g.topological_order()
    pos = {nid: i for i, nid in enumerate(order)}
    assert all(pos[l.src] < pos[l.dst] for l in g.links)
