"""Tests for hosts, sites, load models, and failure injection."""

import numpy as np
import pytest

from repro.net import ATM_OC3
from repro.resources import (
    FailureInjector,
    Host,
    HostSpec,
    OnOffLoad,
    RandomWalkLoad,
    Site,
    SpikeLoad,
    VDCEnvironment,
    build_environment,
)
from repro.util.errors import ConfigurationError, NotRegisteredError


class TestHostSpec:
    def test_defaults(self):
        spec = HostSpec(name="h1")
        assert spec.arch == "sparc" and spec.byte_order == "big"

    def test_unknown_arch_rejected(self):
        with pytest.raises(ConfigurationError):
            HostSpec(name="h1", arch="vax")

    def test_unknown_os_rejected(self):
        with pytest.raises(ConfigurationError):
            HostSpec(name="h1", os="plan9")

    def test_bad_cpu_factor(self):
        with pytest.raises(ConfigurationError):
            HostSpec(name="h1", cpu_factor=0)

    def test_x86_little_endian(self):
        assert HostSpec(name="h", arch="x86", os="linux").byte_order == "little"


class TestHost:
    def make(self, **kw) -> Host:
        return Host(spec=HostSpec(name="h1", memory_mb=100, **kw), site="s1")

    def test_address(self):
        assert self.make().address == "s1/h1"

    def test_slash_in_name_rejected(self):
        with pytest.raises(ConfigurationError):
            Host(spec=HostSpec(name="a/b"), site="s1")

    def test_task_accounting(self):
        h = self.make()
        h.task_started(load=1.0, memory_mb=30)
        assert h.running_tasks == 1
        assert h.cpu_load == pytest.approx(1.0)
        assert h.memory_available_mb == pytest.approx(70)
        h.task_finished(load=1.0, memory_mb=30)
        assert h.running_tasks == 0
        assert h.cpu_load == 0.0
        assert h.memory_available_mb == 100

    def test_finish_without_start_raises(self):
        with pytest.raises(ConfigurationError):
            self.make().task_finished()

    def test_slowdown_dedicated(self):
        assert self.make().slowdown() == 1.0

    def test_slowdown_grows_with_load(self):
        h = self.make()
        h.true_load = 1.0
        assert h.slowdown() == pytest.approx(2.0)

    def test_slowdown_memory_overflow_penalty(self):
        h = self.make()
        base = h.slowdown()
        assert h.slowdown(extra_memory_mb=150) > base

    def test_memory_available_never_negative(self):
        h = self.make()
        h.memory_used_mb = 500
        assert h.memory_available_mb == 0.0


class TestSite:
    def test_add_and_get_host(self):
        s = Site("s1")
        s.add_host(HostSpec(name="h1"))
        assert s.host("h1").address == "s1/h1"

    def test_duplicate_host_rejected(self):
        s = Site("s1")
        s.add_host(HostSpec(name="h1"))
        with pytest.raises(ConfigurationError):
            s.add_host(HostSpec(name="h1"))

    def test_unknown_host(self):
        with pytest.raises(NotRegisteredError):
            Site("s1").host("ghost")

    def test_groups_and_leader(self):
        s = Site("s1")
        s.add_host(HostSpec(name="hb", group="g1"))
        s.add_host(HostSpec(name="ha", group="g1"))
        s.add_host(HostSpec(name="hc", group="g2"))
        assert s.groups == {"g1": ["hb", "ha"], "g2": ["hc"]}
        assert s.group_leader("g1") == "ha"  # deterministic: sorted first

    def test_remove_host_clears_empty_group(self):
        s = Site("s1")
        s.add_host(HostSpec(name="h1", group="g1"))
        s.remove_host("h1")
        assert s.groups == {}
        with pytest.raises(NotRegisteredError):
            s.group_leader("g1")

    def test_up_hosts_filters_down(self):
        s = Site("s1")
        s.add_host(HostSpec(name="h1"))
        s.add_host(HostSpec(name="h2"))
        s.host("h1").up = False
        assert [h.name for h in s.up_hosts()] == ["h2"]

    def test_invalid_site_name(self):
        with pytest.raises(ConfigurationError):
            Site("a/b")


class TestVDCEnvironment:
    def build(self) -> VDCEnvironment:
        return build_environment(
            site_hosts={
                "s1": [HostSpec(name="h1"), HostSpec(name="h2")],
                "s2": [HostSpec(name="h1")],
            },
            wan_links=[("s1", "s2", ATM_OC3)],
            seed=1,
        )

    def test_build(self):
        vdce = self.build()
        assert len(vdce.all_hosts()) == 3
        assert vdce.host("s2/h1").site == "s2"
        assert vdce.host("s1", "h2").name == "h2"

    def test_duplicate_site_rejected(self):
        vdce = self.build()
        with pytest.raises(ConfigurationError):
            vdce.add_site("s1")

    def test_host_bad_address(self):
        vdce = self.build()
        with pytest.raises(NotRegisteredError):
            vdce.host("s1")

    def test_network_is_up_tracks_host_state(self):
        vdce = self.build()
        assert vdce.network.is_up("s1/h1")
        vdce.host("s1/h1").up = False
        assert not vdce.network.is_up("s1/h1")
        assert vdce.network.is_up("s1/server")


class TestLoadModels:
    def test_random_walk_stays_nonnegative_and_moves(self):
        vdce = VDCEnvironment(seed=3)
        vdce.add_site("s1")
        h = vdce.add_host("s1", HostSpec(name="h1"))
        RandomWalkLoad(vdce.env, h, vdce.rng.stream("load"), mean=0.5)
        samples = []

        def sampler(env):
            for _ in range(50):
                yield env.timeout(1.0)
                samples.append(h.true_load)

        vdce.env.process(sampler(vdce.env))
        vdce.run(until=60)
        assert all(s >= 0 for s in samples)
        assert len(set(round(s, 6) for s in samples)) > 5  # actually varies

    def test_random_walk_reverts_to_mean(self):
        vdce = VDCEnvironment(seed=3)
        vdce.add_site("s1")
        h = vdce.add_host("s1", HostSpec(name="h1"))
        RandomWalkLoad(vdce.env, h, vdce.rng.stream("load"),
                       mean=2.0, volatility=0.01)
        vdce.run(until=200)
        assert 1.5 < h.true_load < 2.5

    def test_onoff_toggles(self):
        vdce = VDCEnvironment(seed=5)
        vdce.add_site("s1")
        h = vdce.add_host("s1", HostSpec(name="h1"))
        OnOffLoad(vdce.env, h, vdce.rng.stream("load"), on_load=1.0,
                  mean_on_s=5, mean_off_s=5)
        seen = set()

        def sampler(env):
            for _ in range(200):
                yield env.timeout(1.0)
                seen.add(h.true_load)

        vdce.env.process(sampler(vdce.env))
        vdce.run(until=250)
        assert 0.0 in seen and 1.0 in seen

    def test_spike_schedule(self):
        vdce = VDCEnvironment(seed=0)
        vdce.add_site("s1")
        h = vdce.add_host("s1", HostSpec(name="h1"))
        SpikeLoad(vdce.env, h, spikes=[(10.0, 5.0, 3.0)])
        vdce.run(until=9.9)
        assert h.true_load == 0.0
        vdce.run(until=12.0)
        assert h.true_load == 3.0
        vdce.run(until=20.0)
        assert h.true_load == 0.0

    def test_invalid_spike_rejected(self):
        vdce = VDCEnvironment(seed=0)
        vdce.add_site("s1")
        h = vdce.add_host("s1", HostSpec(name="h1"))
        with pytest.raises(ConfigurationError):
            SpikeLoad(vdce.env, h, spikes=[(-1.0, 5.0, 1.0)])

    def test_model_stop(self):
        vdce = VDCEnvironment(seed=0)
        vdce.add_site("s1")
        h = vdce.add_host("s1", HostSpec(name="h1"))
        m = RandomWalkLoad(vdce.env, h, vdce.rng.stream("load"))
        vdce.run(until=5)
        m.stop()
        vdce.run(until=6)
        assert not m.process.is_alive


class TestFailureInjector:
    def test_crash_and_recover(self):
        vdce = VDCEnvironment(seed=0)
        vdce.add_site("s1")
        h = vdce.add_host("s1", HostSpec(name="h1"))
        inj = FailureInjector(vdce.env)
        inj.crash_at(h, when=10.0, recover_after=5.0)
        vdce.run(until=11)
        assert not h.up
        vdce.run(until=16)
        assert h.up
        assert inj.downtime("s1/h1") == pytest.approx(5.0)

    def test_crash_without_recovery(self):
        vdce = VDCEnvironment(seed=0)
        vdce.add_site("s1")
        h = vdce.add_host("s1", HostSpec(name="h1"))
        inj = FailureInjector(vdce.env)
        inj.crash_at(h, when=2.0)
        vdce.run(until=10)
        assert not h.up
        assert inj.downtime("s1/h1") == pytest.approx(8.0)

    def test_past_crash_rejected(self):
        vdce = VDCEnvironment(seed=0)
        vdce.add_site("s1")
        h = vdce.add_host("s1", HostSpec(name="h1"))
        vdce.run(until=5)
        inj = FailureInjector(vdce.env)
        with pytest.raises(ConfigurationError):
            inj.crash_at(h, when=1.0)

    def test_random_crashes_produce_downtime(self):
        vdce = VDCEnvironment(seed=7)
        vdce.add_site("s1")
        h = vdce.add_host("s1", HostSpec(name="h1"))
        inj = FailureInjector(vdce.env)
        inj.random_crashes(h, vdce.rng.stream("fail"), mtbf_s=20, mttr_s=5)
        vdce.run(until=500)
        dt = inj.downtime("s1/h1")
        assert 0 < dt < 500


class TestTraceLoad:
    def make_host(self):
        from repro.resources import VDCEnvironment
        vdce = VDCEnvironment(seed=0)
        vdce.add_site("s1")
        return vdce, vdce.add_host("s1", HostSpec(name="h1"))

    def test_replays_points_in_order(self):
        from repro.resources import TraceLoad
        vdce, h = self.make_host()
        TraceLoad(vdce.env, h, [(0.0, 0.2), (5.0, 1.0), (10.0, 0.4)])
        vdce.run(until=1.0)
        assert h.true_load == 0.2
        vdce.run(until=6.0)
        assert h.true_load == 1.0
        vdce.run(until=11.0)
        assert h.true_load == 0.4

    def test_holds_final_value_without_repeat(self):
        from repro.resources import TraceLoad
        vdce, h = self.make_host()
        TraceLoad(vdce.env, h, [(0.0, 0.7)])
        vdce.run(until=100.0)
        assert h.true_load == 0.7

    def test_repeat_loops(self):
        from repro.resources import TraceLoad
        vdce, h = self.make_host()
        TraceLoad(vdce.env, h, [(0.0, 0.1), (2.0, 0.9)], repeat=True)
        seen = set()

        def sampler(env):
            for _ in range(40):
                yield env.timeout(0.5)
                seen.add(round(h.true_load, 3))

        vdce.env.process(sampler(vdce.env))
        vdce.run(until=25.0)
        assert {0.1, 0.9} <= seen  # both values recur across loops

    def test_validation(self):
        from repro.resources import TraceLoad
        vdce, h = self.make_host()
        with pytest.raises(ConfigurationError):
            TraceLoad(vdce.env, h, [])
        with pytest.raises(ConfigurationError):
            TraceLoad(vdce.env, h, [(5.0, 0.1), (1.0, 0.2)])
        with pytest.raises(ConfigurationError):
            TraceLoad(vdce.env, h, [(0.0, -1.0)])


class TestDiurnalTrace:
    def test_shape_and_bounds(self):
        from repro.resources import diurnal_trace
        trace = diurnal_trace(peak_load=2.0, base_load=0.2, day_s=100.0,
                              samples=20, noise=0.0)
        assert len(trace) == 20
        times = [t for t, _ in trace]
        loads = [v for _, v in trace]
        assert times == sorted(times)
        assert min(loads) >= 0.19 and max(loads) <= 2.01
        # the bulge peaks mid-day
        assert loads.index(max(loads)) in range(8, 13)

    def test_invalid_peak(self):
        from repro.resources import diurnal_trace
        with pytest.raises(ConfigurationError):
            diurnal_trace(peak_load=0.1, base_load=0.5)

    def test_drives_trace_load_end_to_end(self):
        from repro.resources import TraceLoad, diurnal_trace
        from repro.workloads import quiet_testbed
        v = quiet_testbed(seed=99)
        trace = diurnal_trace(day_s=200.0, samples=10, noise=0.0)
        TraceLoad(v.env, v.world.host("syracuse/h0"), trace, repeat=True)
        v.start()
        v.run(until=150.0)
        rec = v.repositories["syracuse"].resource_performance.get(
            "syracuse/h0")
        assert rec.load_window  # monitors picked the replayed loads up
