"""Tests for the site repository's four databases."""

import pytest

from repro.repository import (
    ResourcePerformanceDB,
    SiteRepository,
    Table,
    TaskConstraintsDB,
    TaskPerformanceDB,
    UserAccountsDB,
    composite_key,
)
from repro.resources import HostSpec
from repro.util.errors import (
    AuthenticationError,
    NotRegisteredError,
    RepositoryError,
)


class TestTable:
    def test_put_get_delete(self):
        t = Table("t")
        t.put("k", {"v": 1})
        assert t.get("k") == {"v": 1}
        assert "k" in t and len(t) == 1
        t.delete("k")
        assert "k" not in t

    def test_get_missing_raises(self):
        with pytest.raises(NotRegisteredError):
            Table("t").get("nope")

    def test_delete_missing_raises(self):
        with pytest.raises(NotRegisteredError):
            Table("t").delete("nope")

    def test_get_or_default(self):
        assert Table("t").get_or("nope", 42) == 42

    def test_save_load_roundtrip(self, tmp_path):
        t = Table("mytable")
        t.put("a", [1, 2, 3])
        t.put("b", {"x": "y"})
        t.save(tmp_path / "t.json")
        t2 = Table.load(tmp_path / "t.json")
        assert t2.name == "mytable"
        assert t2.get("a") == [1, 2, 3]
        assert t2.get("b") == {"x": "y"}

    def test_save_non_serialisable_raises(self, tmp_path):
        t = Table("t")
        t.put("k", object())
        with pytest.raises(RepositoryError):
            t.save(tmp_path / "t.json")

    def test_load_garbage_raises(self, tmp_path):
        p = tmp_path / "bad.json"
        p.write_text("not json at all {")
        with pytest.raises(RepositoryError):
            Table.load(p)

    def test_load_wrong_shape_raises(self, tmp_path):
        p = tmp_path / "bad.json"
        p.write_text('{"something": "else"}')
        with pytest.raises(RepositoryError):
            Table.load(p)

    def test_composite_key(self):
        assert composite_key("lu", "s1/h1") == "lu|s1/h1"

    def test_composite_key_rejects_separator(self):
        with pytest.raises(RepositoryError):
            composite_key("a|b", "c")


class TestUserAccounts:
    def test_add_and_authenticate(self):
        db = UserAccountsDB()
        acct = db.add_user("haluk", "secret", priority=7,
                           access_domain="multi-site")
        assert acct.user_id == 1
        assert acct.priority == 7
        got = db.authenticate("haluk", "secret")
        assert got.user_name == "haluk"

    def test_wrong_password_rejected(self):
        db = UserAccountsDB()
        db.add_user("u", "right")
        with pytest.raises(AuthenticationError):
            db.authenticate("u", "wrong")

    def test_unknown_user_rejected_same_message(self):
        db = UserAccountsDB()
        db.add_user("u", "pw")
        try:
            db.authenticate("ghost", "pw")
        except AuthenticationError as e1:
            try:
                db.authenticate("u", "bad")
            except AuthenticationError as e2:
                assert str(e1) == str(e2)  # no user-existence oracle

    def test_password_not_stored_plaintext(self):
        db = UserAccountsDB()
        acct = db.add_user("u", "topsecret")
        assert "topsecret" not in acct.password_hash
        assert "topsecret" not in acct.password_salt

    def test_duplicate_user_rejected(self):
        db = UserAccountsDB()
        db.add_user("u", "pw")
        with pytest.raises(RepositoryError):
            db.add_user("u", "pw2")

    def test_bad_domain_and_priority(self):
        db = UserAccountsDB()
        with pytest.raises(RepositoryError):
            db.add_user("u", "pw", access_domain="galactic")
        with pytest.raises(RepositoryError):
            db.add_user("u2", "pw", priority=11)

    def test_user_ids_increment(self):
        db = UserAccountsDB()
        a = db.add_user("a", "x")
        b = db.add_user("b", "x")
        assert (a.user_id, b.user_id) == (1, 2)

    def test_remove_user(self):
        db = UserAccountsDB()
        db.add_user("u", "pw")
        db.remove_user("u")
        assert "u" not in db

    def test_save_load_preserves_auth(self, tmp_path):
        db = UserAccountsDB()
        db.add_user("u", "pw")
        db.save(tmp_path / "users.json")
        db2 = UserAccountsDB.load(tmp_path / "users.json")
        assert db2.authenticate("u", "pw").user_name == "u"
        # new ids continue after the loaded maximum
        assert db2.add_user("v", "pw").user_id == 2


class TestResourcePerformance:
    def test_register_and_get(self):
        db = ResourcePerformanceDB()
        rec = db.register_host("s1", HostSpec(name="h1", memory_mb=256))
        assert rec.address == "s1/h1"
        assert db.get("s1/h1").total_memory_mb == 256
        assert db.get("s1/h1").available_memory_mb == 256

    def test_update_dynamic(self):
        db = ResourcePerformanceDB()
        db.register_host("s1", HostSpec(name="h1"))
        db.update_dynamic("s1/h1", cpu_load=0.8, available_memory_mb=64,
                          time=12.0)
        rec = db.get("s1/h1")
        assert rec.cpu_load == 0.8
        assert rec.last_update == 12.0
        assert rec.load_window == [0.8]

    def test_load_window_bounded(self):
        db = ResourcePerformanceDB(window=3)
        db.register_host("s1", HostSpec(name="h1"))
        for i in range(10):
            db.update_dynamic("s1/h1", float(i), 10.0, time=float(i))
        rec = db.get("s1/h1")
        assert rec.load_window == [7.0, 8.0, 9.0]
        assert rec.load_window_times == [7.0, 8.0, 9.0]

    def test_mark_down_up(self):
        db = ResourcePerformanceDB()
        db.register_host("s1", HostSpec(name="h1"))
        db.mark_down("s1/h1", time=5.0)
        assert db.get("s1/h1").status == "down"
        assert db.hosts_at("s1") == []
        assert len(db.hosts_at("s1", include_down=True)) == 1
        db.mark_up("s1/h1", time=9.0)
        assert db.get("s1/h1").status == "up"

    def test_hosts_at_filters_site(self):
        db = ResourcePerformanceDB()
        db.register_host("s1", HostSpec(name="h1"))
        db.register_host("s2", HostSpec(name="h1"))
        assert [r.address for r in db.hosts_at("s1")] == ["s1/h1"]

    def test_unregister(self):
        db = ResourcePerformanceDB()
        db.register_host("s1", HostSpec(name="h1"))
        db.unregister_host("s1/h1")
        assert "s1/h1" not in db
        with pytest.raises(NotRegisteredError):
            db.unregister_host("s1/h1")

    def test_save_load(self, tmp_path):
        db = ResourcePerformanceDB()
        db.register_host("s1", HostSpec(name="h1", arch="x86", os="linux"))
        db.update_dynamic("s1/h1", 0.5, 100, time=3.0)
        db.save(tmp_path / "r.json")
        db2 = ResourcePerformanceDB.load(tmp_path / "r.json")
        rec = db2.get("s1/h1")
        assert rec.arch == "x86" and rec.cpu_load == 0.5


class TestTaskPerformance:
    def test_register_and_get(self):
        db = TaskPerformanceDB()
        db.register_task("lu", base_time_s=2.0, computation_size=3.0,
                         communication_size=8.0, memory_mb=16.0)
        rec = db.get("lu")
        assert rec.base_time_s == 2.0
        assert "lu" in db

    def test_duplicate_rejected(self):
        db = TaskPerformanceDB()
        db.register_task("lu", 1.0)
        with pytest.raises(RepositoryError):
            db.register_task("lu", 1.0)

    def test_nonpositive_base_time_rejected(self):
        with pytest.raises(RepositoryError):
            TaskPerformanceDB().register_task("lu", 0.0)

    def test_weights(self):
        db = TaskPerformanceDB()
        db.register_task("lu", 1.0)
        db.set_weight("lu", "s1/h1", 1.5)
        assert db.weight("lu", "s1/h1") == 1.5
        assert db.weight("lu", "s1/h2", default=2.0) == 2.0
        with pytest.raises(NotRegisteredError):
            db.weight("lu", "s1/h2")

    def test_weight_requires_registered_task(self):
        db = TaskPerformanceDB()
        with pytest.raises(NotRegisteredError):
            db.set_weight("ghost", "s1/h1", 1.0)

    def test_nonpositive_weight_rejected(self):
        db = TaskPerformanceDB()
        db.register_task("lu", 1.0)
        with pytest.raises(RepositoryError):
            db.set_weight("lu", "s1/h1", 0.0)

    def test_record_execution_seeds_weight(self):
        db = TaskPerformanceDB()
        db.register_task("lu", base_time_s=2.0)
        # dedicated run of size-3 input took 12s -> weight = 12/(2*3) = 2.0
        db.record_execution("lu", "s1/h1", input_size=3.0, elapsed_s=14.0,
                            time=1.0, dedicated_elapsed_s=12.0)
        assert db.weight("lu", "s1/h1") == pytest.approx(2.0)

    def test_record_execution_ewma_refinement(self):
        db = TaskPerformanceDB()
        db.register_task("lu", base_time_s=1.0)
        db.set_weight("lu", "s1/h1", 1.0)
        db.record_execution("lu", "s1/h1", input_size=1.0, elapsed_s=3.0,
                            time=1.0, dedicated_elapsed_s=3.0)
        # EWMA: 0.7*1.0 + 0.3*3.0 = 1.6
        assert db.weight("lu", "s1/h1") == pytest.approx(1.6)

    def test_history_filtering(self):
        db = TaskPerformanceDB()
        db.register_task("lu", 1.0)
        db.record_execution("lu", "s1/h1", 1.0, 2.0, time=0.0)
        db.record_execution("lu", "s1/h2", 1.0, 3.0, time=1.0)
        assert len(db.history("lu")) == 2
        assert [s.host for s in db.history("lu", host="s1/h2")] == ["s1/h2"]

    def test_save_load(self, tmp_path):
        db = TaskPerformanceDB()
        db.register_task("lu", 2.0, memory_mb=32)
        db.set_weight("lu", "s1/h1", 1.2)
        db.record_execution("lu", "s1/h1", 1.0, 2.5, time=0.5)
        db.save(tmp_path / "t.json")
        db2 = TaskPerformanceDB.load(tmp_path / "t.json")
        assert db2.get("lu").memory_mb == 32
        assert db2.weight("lu", "s1/h1") == 1.2
        assert len(db2.history("lu")) == 1


class TestTaskConstraints:
    def test_register_and_query(self):
        db = TaskConstraintsDB()
        db.register_executable("lu", "s1/h1", "/usr/vdce/bin/lu")
        assert db.is_runnable_on("lu", "s1/h1")
        assert not db.is_runnable_on("lu", "s1/h2")
        assert db.executable_path("lu", "s1/h1") == "/usr/vdce/bin/lu"
        assert db.hosts_with("lu") == {"s1/h1"}

    def test_missing_executable_raises(self):
        db = TaskConstraintsDB()
        with pytest.raises(NotRegisteredError):
            db.executable_path("lu", "s1/h1")

    def test_unregister(self):
        db = TaskConstraintsDB()
        db.register_executable("lu", "s1/h1", "/bin/lu")
        db.unregister_executable("lu", "s1/h1")
        assert db.hosts_with("lu") == set()

    def test_tasks_on_host(self):
        db = TaskConstraintsDB()
        db.register_executable("lu", "s1/h1", "/bin/lu")
        db.register_executable("fft", "s1/h1", "/bin/fft")
        db.register_executable("fft", "s1/h2", "/bin/fft")
        assert db.tasks_on("s1/h1") == {"lu", "fft"}
        assert db.tasks_on("s1/h2") == {"fft"}

    def test_save_load(self, tmp_path):
        db = TaskConstraintsDB()
        db.register_executable("lu", "s1/h1", "/bin/lu")
        db.save(tmp_path / "c.json")
        db2 = TaskConstraintsDB.load(tmp_path / "c.json")
        assert db2.hosts_with("lu") == {"s1/h1"}


class TestSiteRepository:
    def test_bundles_four_databases(self):
        repo = SiteRepository("s1")
        assert repo.site == "s1"
        repo.user_accounts.add_user("u", "pw")
        repo.resource_performance.register_host("s1", HostSpec(name="h1"))
        repo.task_performance.register_task("lu", 1.0)
        repo.task_constraints.register_executable("lu", "s1/h1", "/bin/lu")

    def test_save_load_roundtrip(self, tmp_path):
        repo = SiteRepository("s1")
        repo.user_accounts.add_user("u", "pw")
        repo.resource_performance.register_host("s1", HostSpec(name="h1"))
        repo.task_performance.register_task("lu", 1.0)
        repo.task_constraints.register_executable("lu", "s1/h1", "/bin/lu")
        repo.save(tmp_path / "repo")
        loaded = SiteRepository.load("s1", tmp_path / "repo")
        assert loaded.user_accounts.authenticate("u", "pw")
        assert loaded.resource_performance.get("s1/h1")
        assert loaded.task_performance.get("lu")
        assert loaded.task_constraints.is_runnable_on("lu", "s1/h1")
