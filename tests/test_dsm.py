"""Tests for the DSM extension (the paper's stated future work)."""

import pytest

from repro.net import ATM_OC3, Topology
from repro.runtime.data.dsm import SharedMemory
from repro.simcore import Environment
from repro.util.errors import RuntimeSystemError


@pytest.fixture
def dsm():
    env = Environment()
    topo = Topology()
    for s in ("syracuse", "rome"):
        topo.add_site(s)
    topo.connect("syracuse", "rome", ATM_OC3)
    return env, SharedMemory(env, topo, home_site="syracuse",
                             value_size_bytes=1e6)


def run_proc(env, gen):
    proc = env.process(gen)
    return env.run(until=proc)


class TestSharedMemory:
    def test_write_then_read_roundtrip(self, dsm):
        env, mem = dsm

        def scenario(env):
            yield from mem.write("syracuse", "x", 42)
            value = yield from mem.read("rome", "x")
            return value

        assert run_proc(env, scenario(env)) == 42

    def test_read_unwritten_raises(self, dsm):
        env, mem = dsm

        def scenario(env):
            yield from mem.read("rome", "ghost")

        with pytest.raises(RuntimeSystemError):
            run_proc(env, scenario(env))

    def test_remote_miss_costs_wan_time(self, dsm):
        env, mem = dsm

        def scenario(env):
            yield from mem.write("syracuse", "x", 1)
            t0 = env.now
            yield from mem.read("rome", "x")
            return env.now - t0

        elapsed = run_proc(env, scenario(env))
        wan = mem.topology.latency("rome", "syracuse")
        assert elapsed >= wan

    def test_cached_reread_is_cheap(self, dsm):
        env, mem = dsm

        def scenario(env):
            yield from mem.write("syracuse", "x", 1)
            yield from mem.read("rome", "x")  # miss, fills cache
            t0 = env.now
            yield from mem.read("rome", "x")  # hit
            return env.now - t0

        elapsed = run_proc(env, scenario(env))
        assert elapsed < 1e-4
        assert mem.stats.read_hits == 1
        assert mem.stats.read_misses == 1

    def test_write_invalidates_remote_caches(self, dsm):
        env, mem = dsm

        def scenario(env):
            yield from mem.write("syracuse", "x", 1)
            v1 = yield from mem.read("rome", "x")
            yield from mem.write("syracuse", "x", 2)
            v2 = yield from mem.read("rome", "x")  # must re-fetch
            return v1, v2

        assert run_proc(env, scenario(env)) == (1, 2)
        assert mem.stats.invalidations_sent == 1
        assert mem.stats.read_misses == 2  # both rome reads missed

    def test_hit_rate(self, dsm):
        env, mem = dsm

        def scenario(env):
            yield from mem.write("syracuse", "x", 1)
            for _ in range(9):
                yield from mem.read("rome", "x")

        run_proc(env, scenario(env))
        assert mem.hit_rate() == pytest.approx(8 / 9)

    def test_remote_write_pays_transfer(self, dsm):
        env, mem = dsm

        def scenario(env):
            t0 = env.now
            yield from mem.write("rome", "y", "payload")
            return env.now - t0

        elapsed = run_proc(env, scenario(env))
        expected = mem.topology.transfer_time("rome", "syracuse", 1e6)
        assert elapsed >= expected * 0.99

    def test_unknown_home_site(self):
        env = Environment()
        topo = Topology()
        topo.add_site("a")
        with pytest.raises(RuntimeSystemError):
            SharedMemory(env, topo, home_site="nowhere")

    def test_peek_without_cost(self, dsm):
        env, mem = dsm

        def scenario(env):
            yield from mem.write("syracuse", "x", {"k": 1})

        run_proc(env, scenario(env))
        assert mem.peek("x") == {"k": 1}
        assert mem.peek("ghost") is None
