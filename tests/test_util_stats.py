"""Unit and property tests for repro.util.stats."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util import stats


class TestMeanVariance:
    def test_mean_simple(self):
        assert stats.mean([1.0, 2.0, 3.0]) == pytest.approx(2.0)

    def test_mean_single(self):
        assert stats.mean([7.5]) == 7.5

    def test_mean_empty_raises(self):
        with pytest.raises(ValueError):
            stats.mean([])

    def test_variance_known(self):
        # Var of [2,4,4,4,5,5,7,9] (sample) = 32/7
        xs = [2, 4, 4, 4, 5, 5, 7, 9]
        assert stats.variance(xs) == pytest.approx(32 / 7)

    def test_variance_single_is_zero(self):
        assert stats.variance([3.0]) == 0.0

    def test_stddev_is_sqrt_variance(self):
        xs = [1.0, 2.0, 4.0, 8.0]
        assert stats.stddev(xs) == pytest.approx(math.sqrt(stats.variance(xs)))

    @given(st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=50))
    def test_mean_bounded_by_extremes(self, xs):
        m = stats.mean(xs)
        assert min(xs) - 1e-6 <= m <= max(xs) + 1e-6

    @given(st.lists(st.floats(-1e6, 1e6), min_size=2, max_size=50))
    def test_variance_nonnegative(self, xs):
        assert stats.variance(xs) >= 0.0

    @given(st.lists(st.floats(-1e3, 1e3), min_size=1, max_size=30),
           st.floats(-1e3, 1e3))
    def test_mean_shift_invariance(self, xs, c):
        shifted = [x + c for x in xs]
        assert stats.mean(shifted) == pytest.approx(stats.mean(xs) + c, abs=1e-6)


class TestConfidenceInterval:
    def test_single_sample_zero_width(self):
        ci = stats.confidence_interval([5.0])
        assert ci.center == 5.0
        assert ci.half_width == 0.0
        assert ci.contains(5.0)

    def test_constant_samples_zero_width(self):
        ci = stats.confidence_interval([2.0] * 10)
        assert ci.half_width == 0.0

    def test_known_value(self):
        # n=4, mean=5, s=2 -> hw = t(3,.95)*2/2 = 3.182
        xs = [3.0, 5.0, 5.0, 7.0]
        ci = stats.confidence_interval(xs, 0.95)
        assert ci.center == pytest.approx(5.0)
        s = stats.stddev(xs)
        assert ci.half_width == pytest.approx(3.182 * s / 2.0)

    def test_higher_confidence_wider(self):
        xs = [1.0, 2.0, 3.0, 4.0, 5.0]
        ci90 = stats.confidence_interval(xs, 0.90)
        ci99 = stats.confidence_interval(xs, 0.99)
        assert ci99.half_width > ci90.half_width

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            stats.confidence_interval([])

    def test_unsupported_confidence_raises(self):
        with pytest.raises(ValueError):
            stats.confidence_interval([1.0, 2.0], confidence=0.42)

    def test_low_high(self):
        ci = stats.ConfidenceInterval(center=10.0, half_width=2.0,
                                      confidence=0.95)
        assert ci.low == 8.0 and ci.high == 12.0
        assert ci.contains(8.0) and ci.contains(12.0)
        assert not ci.contains(12.01)

    @given(st.lists(st.floats(-100, 100), min_size=2, max_size=40))
    def test_interval_contains_mean(self, xs):
        ci = stats.confidence_interval(xs)
        assert ci.contains(stats.mean(xs))


class TestTCritical:
    def test_df1(self):
        assert stats.t_critical(1, 0.95) == pytest.approx(12.706)

    def test_large_df_approaches_normal(self):
        assert stats.t_critical(1000, 0.95) == pytest.approx(1.96)

    def test_monotone_decreasing_in_df(self):
        vals = [stats.t_critical(df, 0.95) for df in range(1, 31)]
        assert vals == sorted(vals, reverse=True)

    def test_bad_df(self):
        with pytest.raises(ValueError):
            stats.t_critical(0)


class TestPercentileGeomean:
    def test_median(self):
        assert stats.percentile([1, 2, 3, 4, 5], 50) == 3.0

    def test_interpolation(self):
        assert stats.percentile([0.0, 10.0], 25) == pytest.approx(2.5)

    def test_extremes(self):
        xs = [5.0, 1.0, 9.0]
        assert stats.percentile(xs, 0) == 1.0
        assert stats.percentile(xs, 100) == 9.0

    def test_bad_q(self):
        with pytest.raises(ValueError):
            stats.percentile([1.0], 101)

    def test_geometric_mean_known(self):
        assert stats.geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_geometric_mean_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            stats.geometric_mean([1.0, 0.0])

    @given(st.lists(st.floats(0.01, 100), min_size=1, max_size=20))
    def test_geomean_le_mean(self, xs):
        assert stats.geometric_mean(xs) <= stats.mean(xs) + 1e-9
