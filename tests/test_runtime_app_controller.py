"""Targeted Application Controller behaviours (simulated backend)."""

import pytest

from repro import VDCE, ATM_OC3, HostSpec
from repro.tasklib import (
    LibraryRegistry,
    TaskDefinition,
    TaskLibrary,
    TaskSignature,
    build_matrix_library,
    standard_registry,
)
from repro.util.errors import ExecutionError
from repro.workloads import linear_solver_graph, quiet_testbed


def small_vdce(registry=None, seed=61):
    v = VDCE(seed=seed, registry=registry or standard_registry(),
             trace=True)
    v.add_site("syracuse")
    v.add_site("rome")
    v.connect_sites("syracuse", "rome", ATM_OC3)
    for i in range(3):
        v.add_host("syracuse", HostSpec(name=f"h{i}", memory_mb=256))
        v.add_host("rome", HostSpec(name=f"h{i}", memory_mb=256))
    v.start()
    return v


class TestParallelParticipants:
    def test_participants_occupied_during_parallel_task(self):
        v = small_vdce()
        g = linear_solver_graph(v.registry, n=150, parallel_lu=True)
        process, run = v.submit(g, "syracuse", k_remote_sites=0)
        while run.table is None:
            v.env.run(until=v.now + 0.5)
        lu_hosts = run.table.get("lu").hosts
        assert len(lu_hosts) == 2
        participant = v.world.host(lu_hosts[1])
        # sample the participant's activity while lu should be running
        busy_samples = []

        def sampler(env):
            for _ in range(400):
                yield env.timeout(0.05)
                busy_samples.append(participant.running_tasks)

        v.env.process(sampler(v.env))
        deadline = v.now + 600
        while not process.triggered and v.now < deadline:
            v.env.run(until=v.now + 5.0)
        assert run.status == "completed"
        assert max(busy_samples) >= 1  # the occupy message held it busy
        assert participant.running_tasks == 0  # and released it


class TestCompletionReports:
    def test_dedicated_elapsed_factors_out_load(self):
        v = small_vdce()
        # put known static load on every host so slowdown is deterministic
        for host in v.world.all_hosts():
            host.true_load = 1.0
        g = linear_solver_graph(v.registry, n=60)
        run = v.run_application(g, "syracuse", k_remote_sites=0,
                                max_sim_time_s=3600)
        assert run.status == "completed"
        for nid, payload in run.completions.items():
            entry = run.table.get(nid)
            if entry.processors > 1:
                continue
            # elapsed ~ dedicated * (1 + load [+ own task]); at least 2x
            assert payload["elapsed_s"] > payload["dedicated_elapsed_s"] \
                * 1.9

    def test_weights_refined_toward_truth(self):
        v = small_vdce()
        g = linear_solver_graph(v.registry, n=60)
        run = v.run_application(g, "syracuse", k_remote_sites=0,
                                max_sim_time_s=3600)
        tp = v.repositories["syracuse"].task_performance
        for nid, payload in run.completions.items():
            host = payload["host"]
            d = v.registry.resolve(payload["task_name"])
            truth = v.model.true_weight(d, v.world.host(host))
            got = tp.weight(payload["task_name"], host, default=None)
            assert got == pytest.approx(truth, rel=0.05)


class TestNumericErrorHandling:
    def make_registry(self):
        def exploding(inputs, params):
            raise ExecutionError("synthetic numeric failure")

        lib = TaskLibrary("faulty")
        lib.add(TaskDefinition(
            name="explode", library="faulty",
            description="raises ExecutionError",
            signature=TaskSignature(inputs=("matrix",), outputs=("out",)),
            base_time_s=0.1, base_size=100, complexity="constant",
            impl=exploding))
        reg = LibraryRegistry()
        reg.add_library(lib)
        reg.add_library(build_matrix_library())
        return reg

    def test_error_intercepted_run_completes(self):
        """Paper: the runtime 'intercepts the error messages generated' —
        a numeric failure yields None downstream, not a hang."""
        from repro.afg import GraphBuilder
        v = small_vdce(registry=self.make_registry())
        b = GraphBuilder(v.registry, name="faulty-app")
        b.task("matrix-generate", "g", input_size=20, params={"n": 20})
        b.task("explode", "boom", input_size=20)
        b.link("g", "boom", dst_port="matrix")
        run = v.run_application(b.build(), "syracuse", k_remote_sites=0,
                                max_sim_time_s=600)
        assert run.status == "completed"  # timing-wise the task "ran"
        assert run.completions["boom"]["outputs"]["out"] is None
        assert v.tracer.count("task-numeric-error") == 1


class TestImmediateRescheduledExecution:
    def test_forwarded_inputs_skip_channel_setup(self):
        """A rescheduled entry executes with forwarded inputs and reports
        completion without a second handshake."""
        from repro.net import EXECUTION_REQUEST
        import numpy as np
        v = small_vdce()
        sm = v.site_managers["syracuse"]
        # craft a fake single-task immediate request aimed at rome/h1
        d = v.registry.resolve("matrix-inverse")
        entry = {
            "node_id": "solo", "task_name": "matrix-inverse",
            "site": "rome", "hosts": ["rome/h1"], "processors": 1,
            "predicted_time_s": 1.0, "input_size": 10.0,
            "params": {}, "is_exit": True, "in_links": [], "out_links": [],
            "forward_inputs": {"matrix": np.eye(3) * 2.0},
        }
        # register a matching execution state so the completion lands
        from repro.runtime.control.site_manager import ExecutionState
        state = ExecutionState(execution_id="exec-manual",
                               application="manual",
                               expected_acks=set(),
                               finished=v.env.event(), total_tasks=1)
        sm._executions["exec-manual"] = state
        v.network.send(sm.address, "rome/h1/appctl", EXECUTION_REQUEST,
                       payload={"application": "manual",
                                "execution_id": "exec-manual",
                                "entries": [entry],
                                "coordinator": sm.address,
                                "immediate": True})
        deadline = v.now + 120
        while not state.finished.triggered and v.now < deadline:
            v.env.run(until=v.now + 1.0)
        assert state.finished.triggered
        report = state.completed_tasks["solo"]
        np.testing.assert_allclose(report["outputs"]["inverse"],
                                   np.eye(3) * 0.5)
        # no channel handshakes happened for this immediate execution
        assert v.network.stats.by_kind.get("channel-setup", 0) == 0
