"""Differential tests for the branch-and-bound optimal reference.

Three layers of evidence that :class:`OptimalScheduler` really is the
ground truth the bake-off gaps are measured against:

1. On tiny AFGs (<= 5-7 tasks, 4 hosts) branch-and-bound returns
   exactly the makespan brute-force enumeration finds — pruning never
   cuts the optimum.
2. The incremental makespan the search maintains equals what
   :func:`evaluate_schedule` computes for the returned table — the
   search's timeline IS the evaluator's.
3. The heuristics sit where they should: HEFT and the site scheduler
   within a small optimality gap, the random baseline strictly worse
   than optimal on every seed of a fixed set.
"""

from __future__ import annotations

import pytest

from repro.bakeoff import repository_predicted_durations
from repro.scheduling import (
    OptimalScheduler,
    SchedulerContext,
    brute_force_search,
    create_scheduler,
)
from repro.scheduling.makespan import evaluate_schedule
from repro.util.errors import SchedulingError
from repro.util.rng import RngRegistry
from repro.workloads import fork_join_graph, fourier_pipeline_graph

from .conftest import build_federation

#: the bound HEFT/site must beat on these graphs (measured ~0.14 worst)
HEURISTIC_GAP_BOUND = 0.5
RANDOM_SEEDS = (1, 2, 3, 4, 5)


@pytest.fixture(scope="module")
def small_federation(registry):
    # 2 sites x 2 hosts = 4 hosts: brute force stays enumerable
    return build_federation(hosts_per_site=2, registry=registry, seed=0)


def tiny_graphs(registry):
    return [fourier_pipeline_graph(registry, n=512, stages=1),  # 5 tasks
            fork_join_graph(registry, width=2, size=256)]       # 7 tasks


def predicted_makespan(graph, table, fed):
    """The common predicted objective (same as the bake-off scoring)."""
    return evaluate_schedule(
        graph, table, fed.topology,
        duration_fn=repository_predicted_durations(graph, table, fed)
    ).makespan


def context(fed, seed=0):
    return SchedulerContext(
        repositories=fed.repositories, topology=fed.topology,
        local_site="syracuse", k_remote_sites=1, rng=RngRegistry(seed))


class TestBranchAndBoundIsOptimal:
    def test_agrees_with_brute_force(self, registry, small_federation):
        fed = small_federation
        for graph in tiny_graphs(registry):
            reference = OptimalScheduler(fed.repositories, fed.topology)
            table, stats = reference.search(graph)
            _, brute_makespan = brute_force_search(
                graph, fed.repositories, fed.topology)
            assert stats.makespan_s == pytest.approx(brute_makespan,
                                                     rel=1e-12)
            assert stats.proven_optimal
            # pruning actually happened, yet the optimum survived
            assert stats.nodes_pruned > 0
            assert stats.nodes_explored < stats.candidates_total ** 2 * 100

    def test_search_makespan_matches_evaluator(self, registry,
                                               small_federation):
        """The search's incremental timeline is evaluate_schedule's:
        replaying the returned table yields the reported makespan."""
        fed = small_federation
        for graph in tiny_graphs(registry):
            table, stats = OptimalScheduler(
                fed.repositories, fed.topology).search(graph)
            replayed = evaluate_schedule(graph, table,
                                         fed.topology).makespan
            assert replayed == pytest.approx(stats.makespan_s, rel=1e-12)

    def test_node_budget_enforced(self, registry, small_federation):
        fed = small_federation
        graph = fork_join_graph(registry, width=2, size=256)
        tight = OptimalScheduler(fed.repositories, fed.topology,
                                 node_budget=3)
        with pytest.raises(SchedulingError, match="node budget"):
            tight.search(graph)

    def test_brute_force_combination_guard(self, registry,
                                           small_federation):
        fed = small_federation
        graph = fork_join_graph(registry, width=2, size=256)
        with pytest.raises(SchedulingError, match="enumerate"):
            brute_force_search(graph, fed.repositories, fed.topology,
                               max_combinations=10)


class TestHeuristicsAgainstOptimal:
    @pytest.mark.parametrize("name", ["heft", "site"])
    def test_heuristic_gap_within_bound(self, registry, small_federation,
                                        name):
        fed = small_federation
        for graph in tiny_graphs(registry):
            _, stats = OptimalScheduler(fed.repositories,
                                        fed.topology).search(graph)
            table = create_scheduler(name, context(fed)).schedule(graph)
            makespan = predicted_makespan(graph, table, fed)
            gap = makespan / stats.makespan_s - 1.0
            assert -1e-9 <= gap <= HEURISTIC_GAP_BOUND, \
                f"{name} gap {gap:.3f} out of bounds on {graph.name}"

    def test_random_strictly_worse_than_optimal(self, registry,
                                                small_federation):
        """On every seed of the fixed set, random placement loses to
        exhaustive search — the gap metric has real spread."""
        fed = small_federation
        for graph in tiny_graphs(registry):
            _, stats = OptimalScheduler(fed.repositories,
                                        fed.topology).search(graph)
            for seed in RANDOM_SEEDS:
                table = create_scheduler(
                    "random", context(fed, seed)).schedule(graph)
                makespan = predicted_makespan(graph, table, fed)
                assert makespan > stats.makespan_s, \
                    f"random (seed {seed}) matched optimal on {graph.name}"
