"""Tests for simcore Store (mailboxes) and Tracer."""

import pytest

from repro.simcore import Environment, Store, Tracer
from repro.util.errors import SimulationError


class TestStore:
    def test_put_then_get(self):
        env = Environment()
        store = Store(env)
        got = []

        def consumer(env):
            item = yield store.get()
            got.append((env.now, item))

        store.put("msg")
        env.process(consumer(env))
        env.run()
        assert got == [(0.0, "msg")]

    def test_get_blocks_until_put(self):
        env = Environment()
        store = Store(env)
        got = []

        def consumer(env):
            item = yield store.get()
            got.append((env.now, item))

        def producer(env):
            yield env.timeout(5.0)
            store.put("late")

        env.process(consumer(env))
        env.process(producer(env))
        env.run()
        assert got == [(5.0, "late")]

    def test_fifo_ordering(self):
        env = Environment()
        store = Store(env)
        out = []

        def consumer(env):
            for _ in range(3):
                item = yield store.get()
                out.append(item)

        for item in (1, 2, 3):
            store.put(item)
        env.process(consumer(env))
        env.run()
        assert out == [1, 2, 3]

    def test_capacity_blocks_putter(self):
        env = Environment()
        store = Store(env, capacity=1)
        events = []

        def producer(env):
            yield store.put("a")
            events.append(("a-stored", env.now))
            yield store.put("b")
            events.append(("b-stored", env.now))

        def consumer(env):
            yield env.timeout(10.0)
            item = yield store.get()
            events.append(("got", item, env.now))

        env.process(producer(env))
        env.process(consumer(env))
        env.run()
        assert ("a-stored", 0.0) in events
        assert ("got", "a", 10.0) in events
        assert ("b-stored", 10.0) in events

    def test_try_get(self):
        env = Environment()
        store = Store(env)
        assert store.try_get() is None
        store.put("x")
        env.run()
        assert store.try_get() == "x"
        assert store.try_get() is None

    def test_len(self):
        env = Environment()
        store = Store(env)
        store.put(1)
        store.put(2)
        assert len(store) == 2

    def test_bad_capacity(self):
        env = Environment()
        with pytest.raises(SimulationError):
            Store(env, capacity=0)

    def test_multiple_consumers_each_get_one(self):
        env = Environment()
        store = Store(env)
        got = []

        def consumer(env, tag):
            item = yield store.get()
            got.append((tag, item))

        env.process(consumer(env, "c1"))
        env.process(consumer(env, "c2"))
        store.put("first")
        store.put("second")
        env.run()
        assert sorted(got) == [("c1", "first"), ("c2", "second")]


class TestTracer:
    def test_record_and_query(self):
        tr = Tracer()
        tr.record(1.0, "load-report", "monitor:h1", load=0.5)
        tr.record(2.0, "load-report", "monitor:h2", load=0.7)
        tr.record(3.0, "echo", "gm:g1")
        assert tr.count("load-report") == 2
        assert tr.count("echo") == 1
        assert tr.count() == 3

    def test_query_by_actor_and_window(self):
        tr = Tracer()
        for t in range(10):
            tr.record(float(t), "tick", "a" if t % 2 else "b")
        recs = list(tr.query(category="tick", actor="a", since=3.0, until=7.0))
        assert [r.time for r in recs] == [3.0, 5.0, 7.0]

    def test_disabled_tracer_records_nothing(self):
        tr = Tracer(enabled=False)
        tr.record(0.0, "x", "y")
        assert tr.count() == 0

    def test_subscribe(self):
        tr = Tracer()
        seen = []
        tr.subscribe(lambda rec: seen.append(rec.category))
        tr.record(0.0, "alpha", "x")
        tr.record(1.0, "beta", "x")
        assert seen == ["alpha", "beta"]

    def test_categories_histogram(self):
        tr = Tracer()
        tr.record(0.0, "a", "x")
        tr.record(0.0, "a", "x")
        tr.record(0.0, "b", "x")
        assert tr.categories() == {"a": 2, "b": 1}

    def test_clear(self):
        tr = Tracer()
        tr.record(0.0, "a", "x")
        tr.clear()
        assert tr.count() == 0

    def test_unsubscribe_stops_delivery(self):
        tr = Tracer()
        seen = []
        cb = seen.append
        tr.subscribe(cb)
        tr.record(0.0, "a", "x")
        tr.unsubscribe(cb)
        tr.record(1.0, "b", "x")
        assert [r.category for r in seen] == ["a"]
        assert tr.subscriber_count == 0

    def test_unsubscribe_unknown_callback_is_noop(self):
        tr = Tracer()
        tr.unsubscribe(lambda rec: None)  # never subscribed
        assert tr.subscriber_count == 0

    def test_clear_keeps_subscribers_by_default(self):
        tr = Tracer()
        seen = []
        tr.subscribe(lambda rec: seen.append(rec.category))
        tr.record(0.0, "a", "x")
        tr.clear()
        tr.record(1.0, "b", "x")
        assert seen == ["a", "b"]
        assert tr.subscriber_count == 1

    def test_clear_with_subscribers_is_full_reset(self):
        tr = Tracer()
        seen = []
        tr.subscribe(lambda rec: seen.append(rec.category))
        tr.clear(subscribers=True)
        tr.record(0.0, "a", "x")
        assert seen == []
        assert tr.subscriber_count == 0
        assert tr.count() == 1

    def test_resubscribing_per_run_no_longer_leaks(self):
        # the leak unsubscribe() exists to prevent: one consumer
        # re-attached across runs must not fan out N times
        tr = Tracer()
        seen = []
        for _run in range(3):
            cb = seen.append
            tr.subscribe(cb)
            tr.record(0.0, "tick", "x")
            tr.unsubscribe(cb)
        assert len(seen) == 3
        assert tr.subscriber_count == 0

    def test_detail_payload(self):
        tr = Tracer()
        tr.record(5.0, "task-finish", "host-1", task="lu", elapsed=3.2)
        rec = tr.records[0]
        assert rec.detail == {"task": "lu", "elapsed": 3.2}
