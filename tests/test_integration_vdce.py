"""End-to-end integration tests: the full Editor -> Scheduler -> Runtime
pipeline over the simulated NYNET testbed."""

import numpy as np
import pytest

from repro import VDCE, HostSpec, QoSRequirement, TaskProperties
from repro.net import ATM_OC3
from repro.scheduling.rescheduling import ReschedulePolicy
from repro.util.errors import ConfigurationError, QoSViolationError
from repro.workloads import (
    c3i_scenario_graph,
    fourier_pipeline_graph,
    linear_solver_graph,
    nynet_testbed,
    quiet_testbed,
)


@pytest.fixture
def vdce():
    v = quiet_testbed(seed=5)
    v.start()
    return v


class TestLifecycleGuards:
    def test_submit_before_start_rejected(self):
        v = quiet_testbed(seed=1)
        with pytest.raises(ConfigurationError):
            v.submit(None, "syracuse")

    def test_add_site_after_start_rejected(self, vdce):
        with pytest.raises(ConfigurationError):
            vdce.add_site("late")

    def test_double_start_rejected(self, vdce):
        with pytest.raises(ConfigurationError):
            vdce.start()

    def test_start_without_sites_rejected(self):
        with pytest.raises(ConfigurationError):
            VDCE(seed=0).start()

    def test_unknown_site_submit(self, vdce):
        g = linear_solver_graph(vdce.registry, n=20)
        with pytest.raises(ConfigurationError):
            vdce.submit(g, "atlantis")


class TestEndToEndSolver:
    def test_solver_completes_and_verifies(self, vdce):
        g = linear_solver_graph(vdce.registry, n=40)
        run = vdce.run_application(g, "syracuse", max_sim_time_s=600)
        assert run.status == "completed"
        assert len(run.completions) == len(g)
        assert run.results()["verify"]["norm"] < 1e-8

    def test_makespan_ordering_sane(self, vdce):
        g = linear_solver_graph(vdce.registry, n=40)
        run = vdce.run_application(g, "syracuse", max_sim_time_s=600)
        assert 0 <= run.submitted_at <= run.scheduled_at <= run.started_at \
            <= run.finished_at
        assert run.makespan > 0

    def test_timeline_respects_precedence(self, vdce):
        g = linear_solver_graph(vdce.registry, n=40)
        run = vdce.run_application(g, "syracuse", max_sim_time_s=600)
        finish = {nid: p["started_s"] + p["elapsed_s"]
                  for nid, p in run.completions.items()}
        start = {nid: p["started_s"] for nid, p in run.completions.items()}
        for link in g.links:
            assert finish[link.src] <= start[link.dst] + 1e-9

    def test_execution_times_recorded_in_repository(self, vdce):
        g = linear_solver_graph(vdce.registry, n=40)
        vdce.run_application(g, "syracuse", max_sim_time_s=600)
        tp = vdce.repositories["syracuse"].task_performance
        assert len(tp.history("lu-decomposition")) >= 1

    def test_bigger_problems_take_longer(self, vdce):
        r1 = vdce.run_application(linear_solver_graph(vdce.registry, n=30),
                                  "syracuse", max_sim_time_s=600)
        r2 = vdce.run_application(linear_solver_graph(vdce.registry, n=90),
                                  "syracuse", max_sim_time_s=600)
        assert r2.execution_time > r1.execution_time

    def test_deterministic_replay(self):
        def once():
            v = quiet_testbed(seed=9)
            v.start()
            g = linear_solver_graph(v.registry, n=30)
            run = v.run_application(g, "syracuse", max_sim_time_s=600)
            return (run.makespan,
                    tuple(sorted((n, e.hosts) for n, e in
                                 run.table.entries.items())))

        assert once() == once()


class TestOtherApplications:
    def test_fourier_pipeline_finds_tones(self, vdce):
        g = fourier_pipeline_graph(vdce.registry, n=1000, stages=2)
        run = vdce.run_application(g, "rome", max_sim_time_s=600)
        assert run.status == "completed"
        peaks = run.results()["peaks"]["peaks"]
        assert set(np.round(peaks)) == {50.0, 180.0}

    def test_c3i_scenario_produces_plan(self, vdce):
        g = c3i_scenario_graph(vdce.registry, targets=15, steps=10)
        run = vdce.run_application(g, "syracuse", max_sim_time_s=600)
        assert run.status == "completed"
        plan = run.results()["plan"]["plan"]
        assert plan.shape[1] == 3 and plan.shape[0] >= 1

    def test_parallel_lu_variant_completes(self, vdce):
        g = linear_solver_graph(vdce.registry, n=60, parallel_lu=True)
        run = vdce.run_application(g, "syracuse", max_sim_time_s=600)
        assert run.status == "completed"
        entry = run.table.get("lu")
        assert entry.processors == 2 and len(entry.hosts) == 2
        assert run.results()["verify"]["norm"] < 1e-8


class TestEditorIntegration:
    def test_editor_to_execution(self, vdce):
        editor = vdce.open_editor("vdce", "vdce", "from-editor")
        editor.add_task("signal-generate", "s")
        editor.add_task("fft-1d", "f")
        editor.add_task("power-spectrum", "p")
        editor.set_mode("link")
        editor.connect("s", "signal", "f", "signal")
        editor.connect("f", "spectrum", "p", "spectrum")
        editor.set_mode("run")
        graph = editor.submit()
        run = vdce.run_application(graph, "syracuse", max_sim_time_s=600)
        assert run.status == "completed"
        assert run.results()["p"]["power"] is not None

    def test_bad_login(self, vdce):
        from repro.util.errors import AuthenticationError
        with pytest.raises(AuthenticationError):
            vdce.open_editor("vdce", "wrong")


class TestCrossSiteExecution:
    def test_overloaded_local_site_offloads_and_completes(self):
        v = quiet_testbed(seed=11)
        v.start()
        # saturate every syracuse machine so the scheduler goes remote
        for host in v.world.all_hosts():
            if host.site == "syracuse":
                host.true_load = 40.0
        v.warm_up(20.0)
        g = linear_solver_graph(v.registry, n=40)
        run = v.run_application(g, "syracuse", k_remote_sites=1,
                                max_sim_time_s=900)
        assert run.status == "completed"
        assert run.table.remote_fraction("syracuse") > 0.5
        assert run.results()["verify"]["norm"] < 1e-8

    def test_cross_site_data_really_flows(self):
        """Pin producer and consumer on different sites via preference."""
        v = quiet_testbed(seed=13)
        v.start()
        g = fourier_pipeline_graph(v.registry, n=500, stages=1)
        g.node("sig").properties.preferred_site = "syracuse"
        g.node("fft").properties.preferred_site = "rome"
        run = v.run_application(g, "syracuse", k_remote_sites=1,
                                max_sim_time_s=900)
        assert run.status == "completed"
        assert run.table.get("sig").site == "syracuse"
        assert run.table.get("fft").site == "rome"
        assert run.results()["peaks"]["peaks"] is not None


class TestQoSAdmission:
    def test_impossible_deadline_rejected(self, vdce):
        g = linear_solver_graph(vdce.registry, n=80)
        with pytest.raises(QoSViolationError):
            vdce.run_application(g, "syracuse",
                                 qos=QoSRequirement(deadline_s=1e-6),
                                 max_sim_time_s=600)

    def test_generous_deadline_admitted(self, vdce):
        g = linear_solver_graph(vdce.registry, n=40)
        run = vdce.run_application(g, "syracuse",
                                   qos=QoSRequirement(deadline_s=1e6),
                                   max_sim_time_s=600)
        assert run.status == "completed"


class TestDynamicRescheduling:
    def build(self):
        v = nynet_testbed(seed=21, with_loads=False, hosts_per_site=3,
                          reschedule_policy=ReschedulePolicy(
                              load_threshold=3.0, max_attempts=3))
        v.start()
        return v

    def test_load_spike_triggers_reschedule(self):
        from repro.resources.loads import SpikeLoad
        v = self.build()
        g = linear_solver_graph(v.registry, n=150)
        # figure out where lu would land, then spike that machine hard
        process, run = v.submit(g, "syracuse", k_remote_sites=1)
        while run.table is None:
            v.env.run(until=v.now + 1.0)
        lu_host = v.world.host(run.table.get("lu").host)
        SpikeLoad(v.env, lu_host, spikes=[(v.now + 0.05, 3000.0, 50.0)])
        deadline = v.now + 3000
        while not process.triggered and v.now < deadline:
            v.env.run(until=v.now + 5.0)
        assert process.triggered
        assert run.status == "completed"
        assert run.reschedules >= 1
        assert v.tracer.count("task-terminated") + \
            v.tracer.count("vdce:rescheduled") >= 1

    def test_host_crash_mid_execution_recovers(self):
        v = self.build()
        g = linear_solver_graph(v.registry, n=150)
        process, run = v.submit(g, "syracuse", k_remote_sites=1)
        while run.table is None:
            v.env.run(until=v.now + 1.0)
        lu_host = v.world.host(run.table.get("lu").host)
        v.failures.crash_at(lu_host, when=v.now + 0.05)
        deadline = v.now + 3000
        while not process.triggered and v.now < deadline:
            v.env.run(until=v.now + 5.0)
        assert process.triggered
        assert run.status == "completed"
        assert run.reschedules >= 1
        # the replacement host is not the dead one
        assert run.table.get("lu").host != lu_host.address


class TestPerApplicationQoSCeiling:
    def test_strict_max_host_load_triggers_earlier_rescheduling(self):
        """Two identical runs under the same moderate load: the strict
        QoS application reschedules away; the lax one rides it out."""
        from repro.resources.loads import SpikeLoad

        def run_with(max_host_load):
            v = nynet_testbed(seed=91, hosts_per_site=3, with_loads=False,
                              reschedule_policy=ReschedulePolicy(
                                  load_threshold=1e9))  # site policy: off
            v.start()
            g = linear_solver_graph(v.registry, n=150)
            process, run = v.submit(
                g, "syracuse", k_remote_sites=1,
                qos=QoSRequirement(deadline_s=1e9,
                                   max_host_load=max_host_load))
            while run.table is None:
                v.env.run(until=v.now + 0.5)
            victim = v.world.host(run.table.get("lu").host)
            SpikeLoad(v.env, victim, spikes=[(v.now + 0.05, 5000.0, 5.0)])
            deadline = v.now + 5000
            while not process.triggered and v.now < deadline:
                v.env.run(until=v.now + 5.0)
            assert run.status == "completed"
            return run

        strict = run_with(max_host_load=2.0)
        lax = run_with(max_host_load=100.0)
        assert strict.reschedules >= 1
        assert lax.reschedules == 0
        assert strict.makespan < lax.makespan


class TestFacadeTeardown:
    def test_stop_quiesces_event_queue(self):
        v = quiet_testbed(seed=121)
        v.start()
        g = linear_solver_graph(v.registry, n=40)
        run = v.run_application(g, "syracuse", max_sim_time_s=600)
        assert run.status == "completed"
        v.stop()
        # with every daemon stopped the queue drains without a horizon
        v.env.run()
        assert v.env.peek() == float("inf")
