"""Tests for the Control Manager: monitors, group managers, site managers,
the change filter, and failure detection."""

import pytest

from repro.runtime.control.change_filter import ChangeFilter
from repro.util.errors import ConfigurationError
from repro.workloads import quiet_testbed


class TestChangeFilter:
    def test_first_measurement_always_forwarded(self):
        f = ChangeFilter(policy="ci")
        assert f.observe("h1", 0.5) is True

    def test_always_policy(self):
        f = ChangeFilter(policy="always")
        assert all(f.observe("h1", 0.5) for _ in range(5))

    def test_ci_suppresses_stable_noisy_load(self):
        f = ChangeFilter(policy="ci", window=8)
        f.observe("h1", 0.50)
        noise = [0.52, 0.48, 0.51, 0.49, 0.50, 0.52, 0.48]
        sent = sum(f.observe("h1", v) for v in noise)
        assert sent <= 2  # most noise suppressed

    def test_ci_forwards_real_shift(self):
        f = ChangeFilter(policy="ci", window=8)
        for v in (0.50, 0.52, 0.48, 0.51):
            f.observe("h1", v)
        assert f.observe("h1", 3.0) is True

    def test_threshold_policy(self):
        f = ChangeFilter(policy="threshold", threshold=0.5)
        f.observe("h1", 1.0)
        assert f.observe("h1", 1.4) is False
        assert f.observe("h1", 1.6) is True

    def test_last_forwarded_tracks_sends_only(self):
        f = ChangeFilter(policy="threshold", threshold=0.5)
        f.observe("h1", 1.0)
        f.observe("h1", 1.1)  # suppressed
        assert f.last_forwarded("h1") == 1.0

    def test_per_host_independent(self):
        f = ChangeFilter(policy="threshold", threshold=0.5)
        f.observe("h1", 1.0)
        assert f.observe("h2", 9.0) is True  # first for h2

    def test_reset(self):
        f = ChangeFilter(policy="ci")
        f.observe("h1", 1.0)
        f.reset("h1")
        assert f.last_forwarded("h1") is None
        assert f.observe("h1", 1.0) is True

    def test_invalid_config(self):
        with pytest.raises(ConfigurationError):
            ChangeFilter(policy="psychic")
        with pytest.raises(ConfigurationError):
            ChangeFilter(window=1)
        with pytest.raises(ConfigurationError):
            ChangeFilter(threshold=0)


@pytest.fixture
def vdce():
    v = quiet_testbed(seed=3, trace=True)
    v.start()
    return v


class TestMonitoringPipeline:
    def test_monitor_reports_reach_repository(self, vdce):
        host = vdce.world.host("syracuse/h0")
        host.true_load = 1.5
        vdce.run(until=10)
        rec = vdce.repositories["syracuse"].resource_performance.get(
            "syracuse/h0")
        assert rec.cpu_load == pytest.approx(1.5)
        assert rec.last_update > 0

    def test_load_window_accumulates(self, vdce):
        vdce.world.host("syracuse/h1").true_load = 0.7
        vdce.run(until=30)
        rec = vdce.repositories["syracuse"].resource_performance.get(
            "syracuse/h1")
        assert len(rec.load_window) >= 1

    def test_remote_site_repository_only_has_own_hosts(self, vdce):
        vdce.run(until=10)
        rome = vdce.repositories["rome"].resource_performance
        assert "rome/h0" in rome
        assert "syracuse/h0" not in rome

    def test_stable_load_suppressed_by_ci_filter(self, vdce):
        """With constant loads, after the first report the CI filter (width
        0 on constant data, but equal values are not > last +- 0) forwards
        nothing new."""
        vdce.run(until=60)
        gm = vdce.group_managers[("syracuse", "g0")]
        # every host reported many times but forwards ~ once per host
        assert gm.stats.reports_received > 3 * gm.stats.updates_forwarded

    def test_changing_load_forwarded(self, vdce):
        host = vdce.world.host("syracuse/h0")
        gm = vdce.group_managers[("syracuse", "g0")]
        vdce.run(until=10)
        before = gm.stats.updates_forwarded
        host.true_load = 5.0
        vdce.run(until=20)
        assert gm.stats.updates_forwarded > before


class TestFailureDetection:
    def test_crash_marks_repository_down(self, vdce):
        host = vdce.world.host("syracuse/h1")
        vdce.failures.crash_at(host, when=10.0)
        vdce.run(until=40)
        rec = vdce.repositories["syracuse"].resource_performance.get(
            "syracuse/h1")
        assert rec.status == "down"

    def test_detection_latency_bounded_by_echo_budget(self, vdce):
        host = vdce.world.host("syracuse/h1")
        vdce.failures.crash_at(host, when=12.0)
        vdce.run(until=60)
        downs = [r for r in vdce.tracer.query(category="gm:host-down")]
        assert downs
        latency = downs[0].time - 12.0
        budget = vdce.echo_period_s * 2 + vdce.echo_timeout_s * 2 + \
            vdce.echo_period_s  # miss_limit=2 rounds + phase offset
        assert 0 < latency <= budget

    def test_recovery_marks_up_again(self, vdce):
        host = vdce.world.host("syracuse/h2")
        vdce.failures.crash_at(host, when=10.0, recover_after=30.0)
        vdce.run(until=100)
        rec = vdce.repositories["syracuse"].resource_performance.get(
            "syracuse/h2")
        assert rec.status == "up"
        gm = vdce.group_managers[("syracuse", "g0")]
        assert gm.stats.recoveries_detected >= 1

    def test_echo_rtt_measured(self, vdce):
        vdce.run(until=30)
        gm = vdce.group_managers[("syracuse", "g0")]
        assert gm.stats.rtt_samples
        for samples in gm.stats.rtt_samples.values():
            assert all(0 < s < vdce.echo_timeout_s for s in samples)

    def test_up_hosts_never_reported_down(self, vdce):
        vdce.run(until=60)
        assert vdce.tracer.count("gm:host-down") == 0


class TestSiteManagerScheduling:
    def test_message_level_scheduling_round(self, vdce):
        from repro.workloads import linear_solver_graph
        g = linear_solver_graph(vdce.registry, n=30)
        sm = vdce.site_managers["syracuse"]
        proc = vdce.env.process(sm.schedule_application(g, k_remote_sites=1))
        vdce.run(until=30)
        assert proc.triggered and proc.ok
        table, report = proc.value
        assert len(table) == len(g)
        assert set(report.consulted_sites) == {"syracuse", "rome"}

    def test_k0_consults_only_local(self, vdce):
        from repro.workloads import linear_solver_graph
        g = linear_solver_graph(vdce.registry, n=30)
        sm = vdce.site_managers["syracuse"]
        proc = vdce.env.process(sm.schedule_application(g, k_remote_sites=0))
        vdce.run(until=30)
        table, report = proc.value
        assert report.consulted_sites == ["syracuse"]
        assert table.sites() == {"syracuse"}

    def test_afg_multicast_traffic_counted(self, vdce):
        from repro.net import AFG_MULTICAST, HOST_SELECTION_REPLY
        from repro.workloads import linear_solver_graph
        g = linear_solver_graph(vdce.registry, n=30)
        sm = vdce.site_managers["syracuse"]
        proc = vdce.env.process(sm.schedule_application(g, k_remote_sites=1))
        vdce.run(until=30)
        assert proc.ok
        assert vdce.network.stats.by_kind[AFG_MULTICAST] == 1
        assert vdce.network.stats.by_kind[HOST_SELECTION_REPLY] == 1

    def test_unresponsive_remote_site_dropped(self, vdce):
        """A remote site whose server never answers is skipped after the
        selection timeout instead of hanging the round."""
        from repro.workloads import linear_solver_graph
        # intercept: kill rome's site manager inbox
        vdce.site_managers["rome"].stop()
        g = linear_solver_graph(vdce.registry, n=30)
        sm = vdce.site_managers["syracuse"]
        proc = vdce.env.process(sm.schedule_application(g, k_remote_sites=1))
        vdce.run(until=sm.selection_timeout_s + 20)
        assert proc.triggered and proc.ok
        table, report = proc.value
        assert table.sites() == {"syracuse"}
