"""Tests for smaller code paths not covered elsewhere."""

import numpy as np
import pytest

from repro.core.run import ApplicationRun
from repro.resources import HostSpec
from repro.scheduling import HostSelector, SiteScheduler
from repro.scheduling.makespan import evaluate_schedule
from repro.simcore import Environment
from repro.tasklib import TaskDefinition, validate_unique_names
from repro.util.errors import ConfigurationError
from repro.workloads import linear_solver_graph, quiet_testbed

from .conftest import build_federation


class TestRunRecord:
    def test_summary_fields(self, registry):
        v = quiet_testbed(seed=71)
        v.start()
        g = linear_solver_graph(v.registry, n=40)
        run = v.run_application(g, "syracuse", max_sim_time_s=600)
        s = run.summary()
        assert s["application"] == "linear-equation-solver"
        assert s["status"] == "completed"
        assert s["tasks"] == len(g)
        assert s["makespan_s"] > 0
        assert s["reschedules"] == 0

    def test_task_timeline_sorted(self, registry):
        v = quiet_testbed(seed=72)
        v.start()
        g = linear_solver_graph(v.registry, n=40)
        run = v.run_application(g, "syracuse", max_sim_time_s=600)
        rows = run.task_timeline()
        starts = [r[2] for r in rows]
        assert starts == sorted(starts)
        assert all(r[3] >= r[2] for r in rows)


class TestSchedulerEdgeCases:
    def test_unachievable_preference_recorded(self, registry):
        """A preferred site that cannot run the task is a soft failure:
        the task goes elsewhere and the report notes the unmet wish."""
        fed = build_federation(registry=registry)
        g = linear_solver_graph(registry, n=40)
        g.node("lu").properties.preferred_site = "atlantis"  # nonexistent
        selectors = {s: HostSelector(r)
                     for s, r in fed.repositories.items()}
        sched = SiteScheduler("syracuse", fed.topology, k_remote_sites=1)
        table, report = sched.schedule_with_selectors(g, selectors)
        assert table.get("lu").site in ("syracuse", "rome")
        assert report.per_task_candidates["lu"].get(
            "_preference_unmet") == 1.0

    def test_timeline_total_transfer(self, registry):
        fed = build_federation(registry=registry)
        g = linear_solver_graph(registry, n=40)
        g.node("lu").properties.preferred_site = "rome"
        selectors = {s: HostSelector(r)
                     for s, r in fed.repositories.items()}
        table, _ = SiteScheduler("syracuse", fed.topology,
                                 k_remote_sites=1).schedule_with_selectors(
            g, selectors)
        tl = evaluate_schedule(g, table, fed.topology)
        assert tl.total_transfer() > 0  # gen-A -> lu crosses sites


class TestSiteManagerResourceChanges:
    def test_resource_added_and_removed(self):
        v = quiet_testbed(seed=73)
        v.start()
        sm = v.site_managers["syracuse"]
        repo = v.repositories["syracuse"].resource_performance
        before = len(repo)
        sm.resource_added(HostSpec(name="newbie"))
        assert len(repo) == before + 1
        assert "syracuse/newbie" in repo
        sm.resource_removed("syracuse/newbie")
        assert len(repo) == before


class TestSimcoreEdges:
    def test_all_of_failure_propagates(self):
        env = Environment()

        def bad(env):
            yield env.timeout(1.0)
            raise ValueError("child failed")

        def parent(env):
            try:
                yield env.all_of([env.process(bad(env)),
                                  env.timeout(5.0)])
            except ValueError as e:
                return f"caught: {e}"

        p = env.process(parent(env))
        assert env.run(until=p) == "caught: child failed"

    def test_any_of_with_already_processed_event(self):
        env = Environment()

        def proc(env):
            done = env.timeout(0.5)
            yield env.timeout(1.0)  # `done` fires and is processed first
            idx, value = yield env.any_of([done, env.timeout(10.0)])
            return idx

        p = env.process(proc(env))
        assert env.run(until=p) == 0

    def test_failed_process_recorded(self):
        env = Environment()

        def boom(env):
            yield env.timeout(1.0)
            raise RuntimeError("crash")

        env.process(boom(env), name="victim")
        env.run(until=5.0)
        assert len(env.failed_processes) == 1
        when, name, exc = env.failed_processes[0]
        assert when == 1.0 and name == "victim"
        assert isinstance(exc, RuntimeError)


class TestTaskLibHelpers:
    def test_validate_unique_names(self):
        a = TaskDefinition(name="t", library="l", description="")
        b = TaskDefinition(name="t", library="l", description="")
        with pytest.raises(ConfigurationError):
            validate_unique_names([a, b])
        validate_unique_names([a])  # single is fine


class TestLocalRunnerIOService:
    def test_io_inputs_resolved_into_params(self, registry):
        from repro.afg import GraphBuilder
        from repro.runtime.local import LocalRunner
        from repro.runtime.services import IOService
        io = IOService()
        io.register_value("problem-size", 32)
        b = GraphBuilder(registry, name="io-demo")
        b.task("matrix-generate", "g", input_size=32,
               params={"seed": 3, "_io_inputs": {"n": "problem-size"}})
        runner = LocalRunner(b.build(), io=io, timeout_s=20.0)
        result = runner.run()
        assert result.ok, result.errors
        assert result.outputs["g"]["matrix"].shape == (32, 32)


class TestNetworkDelayModel:
    def test_delay_components(self):
        v = quiet_testbed(seed=74, trace=False)
        v.start()
        net = v.network
        # same host: near-zero; same site: LAN; cross site: WAN
        local = net.delay_for("syracuse/h0/a", "syracuse/h0/b", 100)
        lan = net.delay_for("syracuse/h0", "syracuse/h1", 100)
        wan = net.delay_for("syracuse/h0", "rome/h0", 100)
        assert local < lan < wan


class TestComparativeRunsIntegration:
    def test_comparative_view_over_real_runs(self):
        from repro.viz import ComparativeView
        cv = ComparativeView()
        for label, k in (("local-only", 0), ("federated", 1)):
            v = quiet_testbed(seed=75)
            v.start()
            g = linear_solver_graph(v.registry, n=50)
            cv.add(label, v.run_application(g, "syracuse",
                                            k_remote_sites=k,
                                            max_sim_time_s=600))
        table = cv.table()
        assert len(table) == 2
        assert cv.best() in ("local-only", "federated")


class TestWideAreaRing:
    def test_ring_topology_shortens_wraparound(self, registry):
        from repro.workloads import wide_area_testbed
        chain = wide_area_testbed(n_sites=4, seed=1, with_loads=False,
                                  trace=False)
        ring = wide_area_testbed(n_sites=4, seed=1, with_loads=False,
                                 trace=False, ring=True)
        # site0 -> site3: 3 hops on the chain, 1 hop on the ring
        assert len(chain.topology.path("site0", "site3")) == 4
        assert len(ring.topology.path("site0", "site3")) == 2
        assert ring.topology.latency("site0", "site3") < \
            chain.topology.latency("site0", "site3")


class TestGroupManagerAllocationPush:
    def test_portion_forwarded_to_assigned_machines(self):
        """Direct check of Figure 6 interaction 4: the Group Manager
        forwards each machine's related RAT portion."""
        from repro.net import ALLOCATION_PUSH, EXECUTION_REQUEST
        from repro.workloads import quiet_testbed
        v = quiet_testbed(seed=111)
        v.start()
        gm = v.group_managers[("syracuse", "g0")]
        v.network.send("syracuse/server/sitemgr", gm.address,
                       ALLOCATION_PUSH,
                       payload={"application": "x", "execution_id": "e9",
                                "portions": {"syracuse/h1": [
                                    {"node_id": "t", "hosts":
                                     ["syracuse/h1"]}]},
                                "coordinator": "syracuse/server/sitemgr"})
        v.run(until=1.0)
        sent = v.network.stats.by_kind.get(EXECUTION_REQUEST, 0)
        assert sent == 1


class TestPredictionMatchesGroundTruthSlowdown:
    def test_memory_penalty_parity(self, registry):
        """Predict()'s paging penalty uses the same slope as the host's
        ground-truth slowdown, so a perfectly informed prediction matches
        the simulator under memory pressure."""
        from repro.prediction import MEMORY_PENALTY_SLOPE
        from repro.resources import Host, HostSpec
        host = Host(spec=HostSpec(name="h", memory_mb=100.0), site="s")
        overflow_mb = 60.0
        host.memory_used_mb = 100.0  # full
        truth = host.slowdown(extra_memory_mb=overflow_mb)
        predicted = 1.0 + MEMORY_PENALTY_SLOPE * overflow_mb / 100.0
        # ground truth counts used+extra-total = 60 overflow, same formula
        assert truth == pytest.approx(predicted)


class TestPublicTestingHelpers:
    def test_build_federation_importable_from_library(self):
        """Downstream users can build fixtures without this repo's tests."""
        from repro.testing import Federation, build_federation
        fed = build_federation(site_names=("a", "b"), hosts_per_site=2)
        assert isinstance(fed, Federation)
        assert set(fed.repositories) == {"a", "b"}
        assert len(fed.hosts_at("a")) == 2
        # repositories are schedule-ready: calibrated + constrained
        repo = fed.repositories["a"]
        assert repo.task_performance.has_weight("lu-decomposition", "a/h0")
        assert repo.task_constraints.is_runnable_on("fft-1d", "a/h1")


class TestMakespanEvaluatorPaths:
    """makespan.py paths the bake-off scoring leans on (ISSUE 6 sat. 4)."""

    def _scored_table(self, registry):
        from repro.scheduling import SchedulerContext, create_scheduler
        from repro.workloads import fork_join_graph
        fed = build_federation(registry=registry)
        graph = fork_join_graph(registry, width=2, size=256)
        ctx = SchedulerContext(repositories=fed.repositories,
                               topology=fed.topology,
                               local_site="syracuse")
        return fed, graph, create_scheduler("heft", ctx).schedule(graph)

    def test_empty_timeline_defaults(self):
        from repro.scheduling.makespan import Timeline
        tl = Timeline()
        assert tl.makespan == 0.0
        assert tl.total_transfer() == 0.0

    def test_duration_fn_override_changes_makespan(self, registry):
        fed, graph, table = self._scored_table(registry)
        default = evaluate_schedule(graph, table, fed.topology)
        unit = evaluate_schedule(graph, table, fed.topology,
                                 duration_fn=lambda nid: 1.0)
        assert default.makespan != unit.makespan
        # every task lasts exactly 1s under the constant model
        assert all(unit.finish[n] - unit.start[n] == 1.0
                   for n in graph.nodes)

    def test_levels_reuse_matches_recompute(self, registry):
        from repro.scheduling.levels import compute_levels
        fed, graph, table = self._scored_table(registry)
        fresh = evaluate_schedule(graph, table, fed.topology)
        reused = evaluate_schedule(graph, table, fed.topology,
                                   levels=compute_levels(graph))
        assert fresh.start == reused.start
        assert fresh.finish == reused.finish

    def test_predicted_vs_ground_truth_duration_fns(self, registry):
        """The two bake-off duration models are both pluggable views of
        the same evaluator, and they disagree once true loads move."""
        from repro.bakeoff import (ground_truth_durations,
                                   repository_predicted_durations)
        fed, graph, table = self._scored_table(registry)
        for host in fed.hosts.values():
            host.true_load = 0.9  # repository still believes idle
        predicted = evaluate_schedule(
            graph, table, fed.topology,
            duration_fn=repository_predicted_durations(graph, table, fed))
        simulated = evaluate_schedule(
            graph, table, fed.topology,
            duration_fn=ground_truth_durations(graph, table, fed))
        assert simulated.makespan > predicted.makespan


class TestQoSAdmission:
    """qos.py admission paths, driven through bake-off-scored tables."""

    def _schedule(self, registry):
        from repro.scheduling import SchedulerContext, create_scheduler
        from repro.workloads import fourier_pipeline_graph
        fed = build_federation(registry=registry)
        graph = fourier_pipeline_graph(registry, n=512, stages=1)
        ctx = SchedulerContext(repositories=fed.repositories,
                               topology=fed.topology,
                               local_site="syracuse")
        return fed, graph, create_scheduler("site", ctx).schedule(graph)

    def test_no_deadline_always_admitted(self, registry):
        from repro.scheduling.qos import QoSRequirement, assess_schedule
        fed, graph, table = self._schedule(registry)
        verdict = assess_schedule(graph, table, fed.topology,
                                  QoSRequirement())
        assert verdict.admitted
        assert verdict.deadline_s is None and verdict.margin_s is None
        assert verdict.predicted_length_s > 0

    def test_generous_deadline_admitted_with_margin(self, registry):
        from repro.scheduling.qos import QoSRequirement, assess_schedule
        fed, graph, table = self._schedule(registry)
        verdict = assess_schedule(graph, table, fed.topology,
                                  QoSRequirement(deadline_s=3600.0))
        assert verdict.admitted
        assert verdict.margin_s == pytest.approx(
            3600.0 - verdict.predicted_length_s)

    def test_tight_deadline_rejected_and_raises(self, registry):
        from repro.scheduling.qos import (QoSRequirement, assess_schedule,
                                          require_admission)
        from repro.util.errors import QoSViolationError
        fed, graph, table = self._schedule(registry)
        tight = QoSRequirement(deadline_s=1e-9)
        assert not assess_schedule(graph, table, fed.topology,
                                   tight).admitted
        with pytest.raises(QoSViolationError, match="exceeds deadline"):
            require_admission(graph, table, fed.topology, tight)

    def test_requirement_validation(self):
        from repro.scheduling.qos import QoSRequirement
        with pytest.raises(ConfigurationError):
            QoSRequirement(deadline_s=0.0)
        with pytest.raises(ConfigurationError):
            QoSRequirement(max_host_load=-1.0)
