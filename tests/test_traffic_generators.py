"""Traffic generators and trace ingestion: determinism and statistics.

The contracts under test:

* same seed → byte-identical arrival sequences (rendered trace lines)
  for all three generators;
* open-loop arrivals converge to the configured rate;
* closed-loop arrivals respect the population invariant — at most one
  outstanding job per user (``submit[k+1] >= submit[k] + duration[k]``);
* trace files round-trip through dump/load and malformed lines raise
  typed errors.
"""

import collections

import pytest

from repro.traffic import (
    ClosedLoopGenerator,
    JobRequest,
    OpenLoopGenerator,
    TraceError,
    WorkloadShape,
    dump_trace,
    load_trace,
    parse_trace_line,
    synthetic_alibaba_trace,
    template_of_job,
    tenant_of_user,
)
from repro.traffic.templates import TEMPLATE_NAMES
from repro.util.rng import RngRegistry


def stream(seed=11, name="traffic-test"):
    return RngRegistry(seed).stream(name)


def render(requests):
    return "\n".join(req.as_line() for req in requests)


class TestDeterminism:
    @pytest.mark.parametrize("make", [
        lambda rng: OpenLoopGenerator(rng, count=400, rate_per_s=10.0,
                                      users=50, tenants=5,
                                      templates=TEMPLATE_NAMES),
        lambda rng: ClosedLoopGenerator(rng, count=400, users=30,
                                        tenants=3, think_time_s=5.0,
                                        templates=TEMPLATE_NAMES),
        lambda rng: synthetic_alibaba_trace(rng, count=400, users=50,
                                            tenants=5,
                                            templates=TEMPLATE_NAMES),
    ], ids=["open-loop", "closed-loop", "alibaba"])
    def test_same_seed_byte_identical(self, make):
        first = render(make(stream()))
        second = render(make(stream()))
        assert first == second
        assert len(first.splitlines()) == 400

    def test_different_seed_differs(self):
        first = render(OpenLoopGenerator(stream(1), 100, rate_per_s=10.0))
        second = render(OpenLoopGenerator(stream(2), 100, rate_per_s=10.0))
        assert first != second

    def test_stream_name_isolates_draws(self):
        # DET001: the generator owns a named stream, so an unrelated
        # consumer on another stream never perturbs the sequence
        reg = RngRegistry(7)
        a = render(OpenLoopGenerator(reg.stream("traffic-open-loop"),
                                     100, rate_per_s=10.0))
        reg2 = RngRegistry(7)
        reg2.stream("other").integers(1000)  # unrelated draw
        b = render(OpenLoopGenerator(reg2.stream("traffic-open-loop"),
                                     100, rate_per_s=10.0))
        assert a == b


class TestOpenLoop:
    def test_rate_convergence(self):
        n, rate = 20_000, 25.0
        reqs = list(OpenLoopGenerator(stream(), n, rate_per_s=rate,
                                      users=100, tenants=10))
        span = reqs[-1].submit_time_s - reqs[0].submit_time_s
        observed = (n - 1) / span
        assert observed == pytest.approx(rate, rel=0.05), \
            f"open-loop rate drifted: {observed:.2f}/s vs {rate}/s"

    def test_submit_times_non_decreasing(self):
        reqs = list(OpenLoopGenerator(stream(), 1000, rate_per_s=10.0))
        for a, b in zip(reqs, reqs[1:]):
            assert b.submit_time_s >= a.submit_time_s

    def test_tenant_binding_is_user_stable(self):
        reqs = list(OpenLoopGenerator(stream(), 2000, rate_per_s=10.0,
                                      users=40, tenants=4))
        by_user = {}
        for req in reqs:
            assert by_user.setdefault(req.user, req.tenant) == req.tenant
        assert len({req.tenant for req in reqs}) == 4

    def test_shape_caps_respected(self):
        shape = WorkloadShape(nproc_cap=4, min_duration_s=0.5)
        reqs = list(OpenLoopGenerator(stream(), 2000, rate_per_s=10.0,
                                      shape=shape))
        assert max(req.nproc for req in reqs) <= 4
        assert min(req.nproc for req in reqs) >= 1
        assert min(req.duration_s for req in reqs) >= 0.5

    def test_invalid_parameters_raise(self):
        with pytest.raises(TraceError):
            OpenLoopGenerator(stream(), 10, rate_per_s=0.0)
        with pytest.raises(TraceError):
            OpenLoopGenerator(stream(), 10, rate_per_s=1.0, users=0)
        with pytest.raises(TraceError):
            OpenLoopGenerator(stream(), 10, rate_per_s=1.0, users=5,
                              tenants=6)


class TestClosedLoop:
    def test_population_invariant(self):
        # at most one outstanding job per user: every user's next submit
        # is at or after the previous job's completion
        reqs = list(ClosedLoopGenerator(stream(), 3000, users=20,
                                        tenants=4, think_time_s=2.0))
        last_done = collections.defaultdict(float)
        for req in reqs:
            assert req.submit_time_s >= last_done[req.user] - 1e-9, \
                f"user {req.user} had two jobs outstanding"
            last_done[req.user] = req.submit_time_s + req.duration_s

    def test_all_users_participate(self):
        reqs = list(ClosedLoopGenerator(stream(), 2000, users=25,
                                        tenants=5, think_time_s=1.0))
        assert len({req.user for req in reqs}) == 25

    def test_zero_think_time_back_to_back(self):
        reqs = list(ClosedLoopGenerator(stream(), 50, users=1, tenants=1,
                                        think_time_s=0.0))
        for a, b in zip(reqs, reqs[1:]):
            assert b.submit_time_s == pytest.approx(
                a.submit_time_s + a.duration_s)

    def test_load_self_regulates_with_population(self):
        # double the users -> roughly double the throughput per horizon
        small = list(ClosedLoopGenerator(stream(), 2000, users=10,
                                         tenants=2, think_time_s=5.0))
        large = list(ClosedLoopGenerator(stream(), 2000, users=20,
                                         tenants=2, think_time_s=5.0))
        rate_small = 2000 / small[-1].submit_time_s
        rate_large = 2000 / large[-1].submit_time_s
        assert rate_large == pytest.approx(2 * rate_small, rel=0.25)


class TestAlibabaTrace:
    def test_count_and_ordering(self):
        reqs = list(synthetic_alibaba_trace(stream(), 2000, users=100,
                                            tenants=10))
        assert len(reqs) == 2000
        for a, b in zip(reqs, reqs[1:]):
            assert b.submit_time_s >= a.submit_time_s

    def test_heavy_tail_shape(self):
        reqs = list(synthetic_alibaba_trace(stream(), 5000, users=100,
                                            tenants=10))
        nprocs = sorted(req.nproc for req in reqs)
        # bulk small, fat tail: median tiny, max well above it
        assert nprocs[len(nprocs) // 2] <= 3
        assert nprocs[-1] >= 8
        durations = sorted(req.duration_s for req in reqs)
        assert durations[-1] / durations[len(durations) // 2] > 10


class TestTraceFiles:
    def test_dump_load_round_trip(self, tmp_path):
        reqs = list(OpenLoopGenerator(stream(), 200, rate_per_s=10.0,
                                      users=20, tenants=4,
                                      templates=TEMPLATE_NAMES))
        path = tmp_path / "trace.txt"
        assert dump_trace(reqs, path) == 200
        loaded = list(load_trace(path))
        assert [r.as_line() for r in loaded] == \
            [r.as_line() for r in reqs]

    def test_missing_columns_filled_deterministically(self, tmp_path):
        path = tmp_path / "bare.txt"
        path.write_text("# comment\n\nj1 2 0.0 5.0 alice\n"
                        "j2 1 1.0 2.0 bob\n")
        loaded = list(load_trace(path, tenants=4,
                                 templates=TEMPLATE_NAMES))
        assert [r.tenant for r in loaded] == \
            [tenant_of_user("alice", 4), tenant_of_user("bob", 4)]
        assert [r.template for r in loaded] == \
            [template_of_job("j1", TEMPLATE_NAMES),
             template_of_job("j2", TEMPLATE_NAMES)]

    def test_parse_errors_are_typed(self):
        assert parse_trace_line("# comment") is None
        assert parse_trace_line("   ") is None
        with pytest.raises(TraceError, match="5-7 columns"):
            parse_trace_line("j1 2 0.0", lineno=3)
        with pytest.raises(TraceError, match="nproc"):
            parse_trace_line("j1 0 0.0 5.0 u1")
        with pytest.raises(TraceError, match="duration"):
            parse_trace_line("j1 2 0.0 0.0 u1")
        with pytest.raises(TraceError):
            parse_trace_line("j1 two 0.0 5.0 u1")

    def test_decreasing_submit_times_rejected(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("j1 1 5.0 1.0 u1\nj2 1 4.0 1.0 u1\n")
        with pytest.raises(TraceError, match="non-decreasing"):
            list(load_trace(path))

    def test_as_line_omits_empty_template(self):
        req = JobRequest(job="j1", nproc=2, submit_time_s=0.0,
                         duration_s=1.0, user="u1", tenant="t00")
        assert req.as_line().endswith("u1 t00")
