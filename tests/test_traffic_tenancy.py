"""Tenant records in the user-accounts DB and federation provisioning.

Covers the satellite contract: ``UserAccountsDB`` publishes delta
events for every account/tenant mutation (INV002), tenant records
persist alongside accounts, the site repository journals user-accounts
deltas, and :func:`provision_tenants` registers the replay population
at every site.
"""

import pytest

from repro.repository import (
    DEFAULT_TENANT,
    SiteRepository,
    TenantRecord,
    UserAccountsDB,
)
from repro.testing import build_federation
from repro.traffic import make_tenants, provision_tenants
from repro.util.errors import RepositoryError


class TestTenantRecords:
    def test_add_and_fetch(self):
        db = UserAccountsDB()
        rec = TenantRecord(name="acme", weight=2.0, quota_procs=16,
                           rate_per_s=5.0, burst=4, max_pending=100)
        db.add_tenant(rec)
        assert db.tenant("acme") == rec
        assert db.has_tenant("acme")
        assert db.tenant_names() == ["acme"]

    def test_default_tenant_always_resolves(self):
        db = UserAccountsDB()
        rec = db.tenant(DEFAULT_TENANT)
        assert rec.quota_procs == 0 and rec.weight == 1.0
        assert not db.has_tenant(DEFAULT_TENANT)
        with pytest.raises(RepositoryError, match="unknown tenant"):
            db.tenant("nope")

    def test_validation(self):
        db = UserAccountsDB()
        with pytest.raises(RepositoryError, match="weight"):
            db.add_tenant(TenantRecord(name="x", weight=0.0))
        with pytest.raises(RepositoryError, match="quotas"):
            db.add_tenant(TenantRecord(name="x", quota_procs=-1))
        with pytest.raises(RepositoryError, match="rate/burst"):
            db.add_tenant(TenantRecord(name="x", burst=0))
        with pytest.raises(RepositoryError, match="may not be empty"):
            db.add_tenant(TenantRecord(name=""))

    def test_user_requires_known_tenant(self):
        db = UserAccountsDB()
        with pytest.raises(RepositoryError, match="add_tenant"):
            db.add_user("alice", password="pw", tenant="ghost")
        db.add_tenant(TenantRecord(name="acme"))
        account = db.add_user("alice", password="pw", tenant="acme")
        assert account.tenant == "acme"
        # the default tenant needs no registration
        assert db.add_user("bob", password="pw").tenant == DEFAULT_TENANT
        assert db.users_of("acme") == ["alice"]

    def test_remove_tenant_keeps_labels(self):
        db = UserAccountsDB()
        db.add_tenant(TenantRecord(name="acme"))
        db.add_user("alice", password="pw", tenant="acme")
        db.remove_tenant("acme")
        assert not db.has_tenant("acme")
        assert db.get("alice").tenant == "acme"


class TestDeltaPublication:
    def events_of(self, db):
        events = []
        db.subscribe(lambda kind, a, b: events.append((kind, a, b)))
        return events

    def test_every_mutation_publishes_and_stamps(self):
        db = UserAccountsDB()
        events = self.events_of(db)
        v0 = db.version
        db.add_tenant(TenantRecord(name="acme"))
        db.add_user("alice", password="pw", tenant="acme")
        db.remove_user("alice")
        db.remove_tenant("acme")
        assert events == [
            ("tenant", "acme", ""),
            ("user", "alice", "acme"),
            ("user-removed", "alice", ""),
            ("tenant-removed", "acme", ""),
        ]
        assert db.version == v0 + 4

    def test_reads_publish_nothing(self):
        db = UserAccountsDB()
        db.add_tenant(TenantRecord(name="acme"))
        db.add_user("alice", password="pw", tenant="acme")
        events = self.events_of(db)
        db.authenticate("alice", "pw")
        db.get("alice")
        db.tenant("acme")
        db.tenant_names()
        assert events == []

    def test_site_repository_journals_account_deltas(self):
        repo = SiteRepository("syracuse")
        cursor = repo.delta.generation
        repo.user_accounts.add_tenant(TenantRecord(name="acme"))
        repo.user_accounts.add_user("alice", password="pw",
                                    tenant="acme")
        assert repo.delta.events_since(cursor) == [
            ("tenant", "acme", ""),
            ("user", "alice", "acme"),
        ]


class TestPersistence:
    def test_tenants_round_trip(self, tmp_path):
        db = UserAccountsDB()
        db.add_tenant(TenantRecord(name="acme", weight=2.5,
                                   quota_procs=32, rate_per_s=4.0))
        db.add_user("alice", password="pw", tenant="acme")
        path = tmp_path / "accounts.json"
        db.save(path)
        assert db._tenants_path(path).exists()
        loaded = UserAccountsDB.load(path)
        assert loaded.tenant("acme") == db.tenant("acme")
        assert loaded.get("alice").tenant == "acme"
        assert loaded.authenticate("alice", "pw").user_name == "alice"

    def test_pre_tenancy_rows_backfill_default(self, tmp_path):
        db = UserAccountsDB()
        db.add_user("old", password="pw")
        path = tmp_path / "accounts.json"
        db._table.save(path)  # simulate a pre-tenancy snapshot: no
        # tenants sidecar file, rows without the column
        for _k, row in db._table.items():
            row.pop("tenant", None)
        db._table.save(path)
        loaded = UserAccountsDB.load(path)
        assert loaded.get("old").tenant == DEFAULT_TENANT


class TestProvisioning:
    def test_provision_registers_everywhere(self):
        fed = build_federation(site_names=("syracuse", "rome"), seed=1)
        tenants = make_tenants(4, weight_skew=0.5, quota_procs=16)
        created = provision_tenants(fed.repositories, tenants, users=40)
        assert created == 40
        for repo in fed.repositories.values():
            db = repo.user_accounts
            assert db.tenant_names() == sorted(tenants)
            assert db.tenant("t03").weight == pytest.approx(1.5)
            assert len(db) == 40
            # round-robin assignment: u0001 belongs to t01
            assert db.get("u0001").tenant == "t01"

    def test_user_cap_bounds_rows(self):
        fed = build_federation(site_names=("syracuse",), seed=1)
        tenants = make_tenants(2)
        created = provision_tenants(fed.repositories, tenants,
                                    users=1000, users_per_tenant_cap=8)
        assert created == 16
