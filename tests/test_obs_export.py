"""Exporter tests: Chrome trace_event schema, Prometheus text, JSONL.

The Chrome schema check here is the acceptance gate for the trace
export: every emitted event must satisfy the subset of the trace_event
format that Perfetto / chrome://tracing actually requires to load a
file (``traceEvents`` array; ``M`` metadata and ``X`` complete events
with numeric non-negative ``ts``/``dur``).
"""

from __future__ import annotations

import json

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.export import (
    chrome_trace_json,
    spans_to_jsonl,
    to_chrome_trace,
    to_prometheus_text,
)
from repro.obs.spans import SpanTracker


def assert_valid_chrome_trace(doc: dict) -> None:
    """Schema check: the subset of trace_event that viewers require."""
    assert isinstance(doc, dict)
    assert isinstance(doc["traceEvents"], list)
    for ev in doc["traceEvents"]:
        assert ev["ph"] in ("M", "X")
        assert isinstance(ev["pid"], int)
        assert isinstance(ev["tid"], int)
        assert isinstance(ev["name"], str) and ev["name"]
        assert isinstance(ev.get("args", {}), dict)
        if ev["ph"] == "X":
            assert isinstance(ev["cat"], str)
            assert isinstance(ev["ts"], (int, float)) and ev["ts"] >= 0
            assert isinstance(ev["dur"], (int, float)) and ev["dur"] >= 0


def tracked_spans() -> SpanTracker:
    st = SpanTracker()
    app = st.begin("app", "application", "site", 0.0)
    st.complete("sched", "schedule-round", "sm", 0.0, 0.25, parent_id=app,
                sites=2, tasks=3)
    t = st.begin("lu", "task-execution", "s/h1", 0.3, parent_id=app)
    st.complete("data", "message-delivery", "s/h1/dm", 0.4, 0.6,
                parent_id=t, bytes=4096)
    st.end(t, 1.5, elapsed=1.2)
    st.begin("late", "task-execution", "s/h2", 1.0, parent_id=app)  # open
    return st


class TestChromeTrace:
    def test_schema_valid(self):
        doc = to_chrome_trace(tracked_spans().spans, clock_end=2.0)
        assert_valid_chrome_trace(doc)
        assert doc["displayTimeUnit"] == "ms"

    def test_metadata_names_process_and_threads(self):
        doc = to_chrome_trace(tracked_spans().spans, clock_end=2.0)
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        assert meta[0] == {"ph": "M", "pid": 1, "tid": 0,
                           "name": "process_name", "args": {"name": "vdce"}}
        thread_names = [e["args"]["name"] for e in meta[1:]]
        assert thread_names == sorted(thread_names)  # deterministic tids

    def test_events_carry_causal_ids_in_args(self):
        doc = to_chrome_trace(tracked_spans().spans, clock_end=2.0)
        by_name = {e["name"]: e for e in doc["traceEvents"]
                   if e["ph"] == "X"}
        app_id = by_name["app"]["args"]["span_id"]
        assert by_name["sched"]["args"]["parent_id"] == app_id
        assert by_name["data"]["args"]["parent_id"] == \
            by_name["lu"]["args"]["span_id"]
        assert by_name["data"]["args"]["bytes"] == 4096

    def test_timestamps_are_microseconds(self):
        doc = to_chrome_trace(tracked_spans().spans, clock_end=2.0)
        by_name = {e["name"]: e for e in doc["traceEvents"]
                   if e["ph"] == "X"}
        assert by_name["lu"]["ts"] == pytest.approx(0.3e6)
        assert by_name["lu"]["dur"] == pytest.approx(1.2e6)

    def test_open_span_flagged_and_extended_to_clock_end(self):
        doc = to_chrome_trace(tracked_spans().spans, clock_end=2.0)
        late = next(e for e in doc["traceEvents"] if e["name"] == "late")
        assert late["args"]["open"] is True
        assert late["dur"] == pytest.approx(1.0e6)

    def test_json_is_canonical_and_reparseable(self):
        st = tracked_spans()
        text = chrome_trace_json(st.spans, clock_end=2.0)
        assert text == chrome_trace_json(st.spans, clock_end=2.0)
        assert " " not in text.split('"args"')[0]  # compact separators
        assert_valid_chrome_trace(json.loads(text))

    def test_empty_span_list_still_loads(self):
        doc = to_chrome_trace([], clock_end=None)
        assert_valid_chrome_trace(doc)
        assert len(doc["traceEvents"]) == 1  # the process_name record


class TestPrometheusText:
    def _registry(self) -> MetricsRegistry:
        reg = MetricsRegistry()
        c = reg.counter("msgs_total", help="messages")
        c.inc(kind="data")
        c.inc(2.0, kind="ctrl")
        reg.gauge("load").set(0.75, host="h1")
        h = reg.histogram("delay_seconds", buckets=(0.1, 1.0))
        for v in (0.05, 0.5, 5.0):
            h.observe(v, kind="data")
        return reg

    def test_exposition_structure(self):
        text = to_prometheus_text(self._registry())
        assert "# HELP msgs_total messages" in text
        assert "# TYPE msgs_total counter" in text
        assert 'msgs_total{kind="ctrl"} 2' in text
        assert 'msgs_total{kind="data"} 1' in text
        assert 'load{host="h1"} 0.75' in text

    def test_histogram_buckets_are_cumulative_with_inf(self):
        text = to_prometheus_text(self._registry())
        assert 'delay_seconds_bucket{kind="data",le="0.1"} 1' in text
        assert 'delay_seconds_bucket{kind="data",le="1.0"} 2' in text
        assert 'delay_seconds_bucket{kind="data",le="+Inf"} 3' in text
        assert 'delay_seconds_sum{kind="data"} 5.55' in text
        assert 'delay_seconds_count{kind="data"} 3' in text

    def test_empty_registry_exports_empty_string(self):
        assert to_prometheus_text(MetricsRegistry()) == ""

    def test_dump_is_byte_stable(self):
        reg = self._registry()
        assert to_prometheus_text(reg) == to_prometheus_text(reg)


class TestSpanJsonl:
    def test_one_canonical_line_per_span(self):
        st = tracked_spans()
        lines = spans_to_jsonl(st.spans).splitlines()
        assert len(lines) == len(st.spans)
        objs = [json.loads(line) for line in lines]
        assert [o["span_id"] for o in objs] == \
            [s.span_id for s in st.spans]
        open_obj = next(o for o in objs if o["name"] == "late")
        assert open_obj["end_s"] is None
