"""Tests for the programmatic experiment drivers."""

import json

import pytest

from repro.experiments import (
    ExperimentResult,
    failure_detection_sweep,
    format_table,
    monitoring_comparison,
    prediction_ablation,
    scheduler_comparison,
)
from repro.workloads.applications import linear_solver_graph


class TestExperimentResult:
    def test_render_and_column(self):
        r = ExperimentResult(name="demo",
                             rows=[{"a": 1, "b": 2.5}, {"a": 3, "b": 4.0}])
        text = r.render()
        assert "demo" in text and "2.500" in text
        assert r.column("a") == [1, 3]

    def test_rows_json_serialisable(self):
        r = monitoring_comparison(duration_s=30.0)
        json.dumps(r.rows)  # must not raise

    def test_format_table_empty(self):
        assert "(no rows)" in format_table("x", [])


class TestSchedulerComparison:
    @pytest.fixture(scope="class")
    def result(self):
        small = {"linear-solver": lambda reg: linear_solver_graph(reg,
                                                                  n=120)}
        return scheduler_comparison(seeds=(1, 2), families=small)

    def test_all_schedulers_present(self, result):
        row = result.rows[0]
        for name in ("vdce", "vdce-queue-aware", "min-load", "round-robin",
                     "random", "heft"):
            assert name in row and row[name] > 0

    def test_vdce_beats_random_on_solver(self, result):
        row = result.rows[0]
        assert row["vdce"] < row["random"]

    def test_metadata(self, result):
        assert result.metadata["seeds"] == [1, 2]


class TestPredictionAblation:
    def test_full_is_baseline(self):
        small = {"linear-solver": lambda reg: linear_solver_graph(reg,
                                                                  n=120)}
        r = prediction_ablation(seeds=(1,), families=small)
        by = {row["variant"]: row for row in r.rows}
        assert by["full"]["gmean_slowdown"] == pytest.approx(1.0)
        assert by["no-weight"]["gmean_slowdown"] >= 1.0


class TestMonitoringComparison:
    def test_policies_share_report_stream(self):
        r = monitoring_comparison(duration_s=40.0)
        reports = {row["reports"] for row in r.rows}
        assert len(reports) == 1  # identical measurement volume
        by = {row["policy"]: row for row in r.rows}
        assert by["always"]["traffic_reduction"] == pytest.approx(1.0)
        assert by["ci"]["forwarded"] < by["always"]["forwarded"]


class TestFailureDetectionSweep:
    def test_latency_grows_with_period(self):
        r = failure_detection_sweep(periods=(2.0, 8.0), seeds=(1, 2))
        assert all(row["detections"] == 2 for row in r.rows)
        assert r.rows[1]["mean_latency_s"] > r.rows[0]["mean_latency_s"]


class TestCapacityPlanning:
    def test_parallel_friendly_app_needs_fewer_hosts_for_loose_deadline(
            self):
        from repro.experiments import capacity_plan
        from repro.workloads import fork_join_graph
        from repro.tasklib import standard_registry
        graph = fork_join_graph(standard_registry(), width=4, size=2048)
        solo = capacity_plan(graph, deadline_s=1e9, max_hosts=1)
        assert solo.feasible and solo.hosts_needed == 1
        serial_time = solo.predicted_s
        # demand ~60% of the serial time: needs real parallelism
        plan = capacity_plan(graph, deadline_s=serial_time * 0.6,
                             max_hosts=8)
        assert plan.feasible
        assert plan.hosts_needed > 1
        assert plan.predicted_s <= serial_time * 0.6
        # the sweep is monotone non-increasing in hosts (EFT walk)
        values = [p for _n, p in plan.sweep]
        assert all(b <= a * 1.001 for a, b in zip(values, values[1:]))

    def test_impossible_deadline_reported_infeasible(self):
        from repro.experiments import capacity_plan
        from repro.workloads import linear_solver_graph
        from repro.tasklib import standard_registry
        graph = linear_solver_graph(standard_registry(), n=200)
        plan = capacity_plan(graph, deadline_s=1e-6, max_hosts=4)
        assert not plan.feasible
        assert plan.hosts_needed is None
        assert len(plan.sweep) == 4  # tried every size

    def test_validation(self):
        from repro.experiments import capacity_plan
        from repro.workloads import linear_solver_graph
        from repro.tasklib import standard_registry
        graph = linear_solver_graph(standard_registry(), n=30)
        import pytest as _pytest
        from repro.util.errors import ConfigurationError
        with _pytest.raises(ConfigurationError):
            capacity_plan(graph, deadline_s=0)
        with _pytest.raises(ConfigurationError):
            capacity_plan(graph, deadline_s=1.0, max_hosts=0)
