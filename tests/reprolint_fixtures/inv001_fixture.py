"""INV001 fixture: versioned classes and the stamp-on-mutate contract."""


def versioned(attr):  # stand-in for repro.util.versioned
    def mark(cls):
        return cls
    return mark


class Plain:
    """Not versioned: mutations without stamps are nobody's business."""

    def set(self, x):
        self.value = x


@versioned("_version")
class Database:
    def __init__(self):
        self._data = {}
        self._version = 0
        self._version_clock = 0

    def good_set(self, key, value):
        self._data[key] = value
        self._version += 1

    def good_stamped(self, rec):
        rec.cpu_load = 1.0
        self._stamp(rec)

    def bad_set(self, key, value):  # expect: INV001
        self._data[key] = value

    def bad_alias(self, key):  # expect: INV001
        rec = self.get(key)
        rec.cpu_load = 2.0

    def read_only(self, key):
        return self._data[key]

    def _stamp(self, rec):
        rec.version = self._version_clock
        self._version_clock += 1

    def get(self, key):
        return self._data[key]

    @classmethod
    def load(cls, path):
        db = cls()
        db._data = {"from": path}
        return db


class TaskPerformanceDB:  # versioned by name, no decorator needed
    def bad_register(self, name, rec):  # expect: INV001
        self._records[name] = rec
