"""INV002 fixture: the delta-publication contract (notify + generation)."""


class Plain:
    """Not a delta source: version bumps without notify are fine here."""

    def bump(self):
        self._version += 1


class ResourcePerformanceDB:
    def _notify(self, kind, a="", b=""):
        for cb in self._subscribers:
            cb(kind, a, b)

    def _stamp(self, rec):
        self._version_clock += 1
        rec.version = self._version_clock
        self._notify("host", rec.address)

    def good_unregister(self, address):
        del self._records[address]
        self._version_clock += 1
        self._notify("host-removed", address)

    def good_delegated(self, address):
        rec = self.get(address)
        rec.cpu_load = 0.5
        self._stamp(rec)

    def bad_silent_bump(self, rec):  # expect: INV002
        self._version_clock += 1
        rec.version = self._version_clock

    def bad_record_stamp(self, rec):  # expect: INV002
        rec.version = 7

    def read_only(self, address):
        return self._records[address]

    @classmethod
    def load(cls, path):
        db = cls()
        db._version_clock = 3
        return db


class TaskConstraintsDB:
    def good_register(self, task, host):
        self._table[(task, host)] = "/bin/task"
        self._version += 1
        self._notify("constraint", task, host)

    def bad_register(self, task, host):  # expect: INV002
        self._table[(task, host)] = "/bin/task"
        self._version += 1


class UserAccountsDB:
    def _notify(self, kind, a="", b=""):
        for cb in self._subscribers:
            cb(kind, a, b)

    def _stamp(self, kind, a="", b=""):
        self._version_clock += 1
        self._notify(kind, a, b)

    def good_add_tenant(self, record):
        self._tenants[record.name] = record
        self._stamp("tenant", record.name)

    def bad_remove_user(self, user_name):  # expect: INV002
        del self._table[user_name]
        self._version_clock += 1

    def read_only(self, name):
        return self._tenants[name]


class DeltaTracker:
    def __init__(self):
        self.generation = 0
        self._events = []

    def good_record(self, kind, a, b):
        self._events.append((kind, a, b))
        self.generation += 1

    def good_compact(self, drop):
        del self._events[:drop]
        self.generation += 1

    def bad_append(self, kind):  # expect: INV002
        self._events.append((kind, "", ""))

    def bad_rebind(self):  # expect: INV002
        self._events = []

    def bad_slice_delete(self, drop):  # expect: INV002
        del self._events[:drop]

    def bad_item_assign(self, i, event):  # expect: INV002
        self._events[i] = event

    def read_only(self, cursor):
        return self._events[cursor:]
