"""ISO001 fixture: cross-site reach-through mutations vs. legitimate use.

Lines carrying the expect annotation must be reported; all other lines
must stay clean.
"""


class Facade:
    def __init__(self, repositories, site_managers, monitors):
        self.repositories = repositories
        self.site_managers = site_managers
        self.monitors = monitors
        self.repository = repositories["local"]

    def bad_registry_mutations(self, site, host, t):
        rp = "resource_performance"
        self.repositories[site].resource_performance.mark_down(host, t)  # expect: ISO001
        self.repositories[site].task_performance.record_execution(  # expect: ISO001
            "solve", host, input_size=1.0, elapsed_s=2.0, time=t)
        self.site_managers[site]._executions.clear()  # expect: ISO001
        self.monitors[host].mailbox.put_nowait({"kind": "fake"})  # expect: ISO001
        _ = rp

    def bad_foreign_repository(self, sm, host, t):
        sm.repository.resource_performance.mark_up(host, t)  # expect: ISO001

    def fine_reads_and_own_state(self, site, host, t):
        # reads through registries are the facade's job (staleness paid)
        record = self.repositories[site].resource_performance.get(host)
        # a daemon mutating its own repository is the owner
        self.repository.resource_performance.mark_down(host, t)
        return record

    def fine_local_alias(self, host, t):
        repo = self.repository
        repo.resource_performance.mark_up(host, t)
