"""SIM001 fixture: process generators doing real-world things."""

import socket
import subprocess
import time

SHARED = []


def bad_sleeper(env):
    time.sleep(0.5)  # expect: SIM001
    yield env.timeout(1.0)


def bad_real_io(env):
    sock = socket.create_connection(("host", 80))  # expect: SIM001
    yield env.timeout(1.0)
    subprocess.run(["ls"])  # expect: SIM001
    return sock


def bad_shared(env):
    global SHARED  # expect: SIM001
    yield env.timeout(1.0)
    SHARED.append(env.now)


def good(env, store):
    item = yield store.get()
    yield env.timeout(1.0)
    return item


def not_a_generator():
    time.sleep(1.0)  # fine for SIM001; wall clocks are DET002's business
