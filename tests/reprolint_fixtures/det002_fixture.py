"""DET002 fixture: wall-clock reads that simulated code must not make."""

import time
from datetime import datetime
from time import sleep


def bad_clock():
    t0 = time.time()  # expect: DET002
    t1 = time.monotonic()  # expect: DET002
    now = datetime.now()  # expect: DET002
    sleep(0.1)  # expect: DET002
    time.sleep(1)  # expect: DET002
    return t0, t1, now


def good(env):
    yield env.timeout(1.0)
    return env.now
