"""PERF001 fixture: guarded metric/span recording (obs guard idiom)."""


def count_messages(obs, kind):
    obs.metrics.counter("messages_total").inc(kind=kind)  # expect: PERF001
    if obs.enabled:
        obs.metrics.counter("messages_total").inc(kind=kind)


def record_delay(self, delay, kind):
    self._m_delay.observe(delay, kind=kind)  # expect: PERF001
    if self.obs.enabled:
        self._m_delay.observe(delay, kind=kind)


def span_lifecycle(obs, now):
    span = obs.spans.begin("t", "task-execution", "h", now)  # expect: PERF001
    if obs.enabled:
        span = obs.spans.begin("t", "task-execution", "h", now)
        obs.spans.end(span, now + 1.0)
    obs.spans.complete("m", "message-delivery", "h", now,  # expect: PERF001
                       now + 0.5)
    return span


def set_gauge(observability, load, host):
    if observability.enabled:
        observability.metrics.gauge("host_cpu_load").set(load, host=host)
    observability.metrics.gauge("host_cpu_load").set(  # expect: PERF001
        load, host=host)


def not_obs_calls(items, seen):
    # same method names on non-obs receivers are NOT flagged: the
    # receiver chain carries no obs marker
    seen.add(items[0])
    ordered = set()
    ordered.add("x")
    items.sort()
    return ordered


def guarded_in_loop(obs, hosts):
    for host in hosts:
        if obs.enabled:
            obs.metrics.counter("hosts_seen_total").inc(host=host)
        obs.metrics.counter("hosts_total").inc(host=host)  # expect: PERF001
