"""DET001 fixture: nondeterminism hazards, plus clean counterparts.

Lines carrying ``# expect: RULE`` must be reported; all other lines
must stay clean.  This directory is excluded from real lint runs.
"""

import random

import numpy as np


def bad_set_iteration(table):
    for host in table.hosts():  # expect: DET001
        print(host)
    return [h for h in {1, 2, 3}]  # expect: DET001


def bad_identity(obj, name):
    key = id(obj)  # expect: DET001
    bucket = hash(name) % 5  # expect: DET001
    return key, bucket


def bad_randomness(values):
    x = random.random()  # expect: DET001
    np.random.shuffle(values)  # expect: DET001
    gen = np.random.default_rng()  # expect: DET001
    return x, gen


def good(table, rng):
    for host in sorted(table.hosts()):
        print(host)
    gen = np.random.default_rng(42)
    return gen.random() + rng.stream("loads").random()


def suppressed(table):
    # reprolint: disable=DET001 -- membership-only set, order never escapes
    return {h for h in table.hosts()}
