"""DET003 fixture: same-tick scheduling without a tie-break.

Lines carrying the expect annotation must be reported; all other lines
must stay clean.
"""


def bad_zero_delay(env, fn):
    env.call_later(0, fn, None)  # expect: DET003
    env.call_later(0.0, fn, "arg")  # expect: DET003


def bad_unordered_spawn(env, daemons, fn):
    for daemon in {d for d in daemons}:
        env.process(daemon.run(), name="d")  # expect: DET003
    for name in set(daemons):
        env.call_later(1.0, fn, name)  # expect: DET003
    for daemon in frozenset(daemons):
        for _ in range(2):
            env.process(daemon.run())  # expect: DET003


def fine_positive_delay_and_sorted(env, daemons, fn):
    env.call_later(0.5, fn, None)
    delay = 0
    env.call_later(delay, fn, None)  # non-literal delay: out of scope
    for daemon in sorted(daemons):
        env.process(daemon.run(), name="d")
    for daemon in list(daemons):
        env.call_later(1.0, fn, daemon)
