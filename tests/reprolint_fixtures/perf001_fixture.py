"""PERF001 fixture: hot-path hygiene (slots parity, tracer guards)."""

from dataclasses import dataclass


class Slotted:
    __slots__ = ("x",)

    def __init__(self, x):
        self.x = x


class Unslotted:  # expect: PERF001
    def __init__(self, y):
        self.y = y


@dataclass
class Record:  # dataclasses are exempt from slots parity
    z: int = 0


class FixtureError(Exception):
    """Exception types are exempt from slots parity."""


def send(tracer, payload):
    tracer.record("send", payload)  # expect: PERF001
    if tracer.enabled:
        tracer.record("traced-send", payload)
    for _ in range(2):
        if tracer.enabled:
            tracer.record("loop", payload)
        tracer.record("loop-unguarded", payload)  # expect: PERF001
