"""Visualization views fed from an exported trace.

The three paper views (section 2.3.2) were previously exercised only
against live in-process runs.  These tests drive them from *exported*
observability data instead: the tracer is round-tripped through the
JSONL exporter (``trace_to_jsonl`` / ``tracer_from_jsonl``), and the
Application Performance view is cross-checked against the task-execution
spans the obs subsystem recorded for the same run.
"""

from __future__ import annotations

import pytest

from repro.obs import Observability
from repro.obs.export import tracer_from_jsonl, trace_to_jsonl
from repro.viz import ApplicationPerformanceView, ComparativeView, WorkloadView
from repro.workloads import (
    linear_solver_graph,
    nynet_testbed,
    quiet_testbed,
    random_layered_graph,
)


@pytest.fixture(scope="module")
def observed_run():
    """One instrumented layered-DAG run: (vdce, obs, run)."""
    obs = Observability()
    vdce = quiet_testbed(seed=19, obs=obs)
    vdce.start()
    graph = random_layered_graph(vdce.registry, layers=4, width=3, seed=5)
    run = vdce.run_application(graph, "syracuse", max_sim_time_s=600,
                               queue_aware=True)
    assert run.status == "completed"
    return vdce, obs, run


@pytest.fixture(scope="module")
def loaded_run():
    """A run on the loaded NYNET testbed, so sm:db-update records exist."""
    vdce = nynet_testbed(seed=4, hosts_per_site=3, with_loads=True)
    vdce.start()
    vdce.warm_up(60.0)
    graph = linear_solver_graph(vdce.registry, n=40)
    run = vdce.run_application(graph, "syracuse", max_sim_time_s=600)
    assert run.status == "completed"
    return vdce, run


class TestWorkloadViewFromExportedTrace:
    def test_jsonl_round_trip_preserves_series(self, loaded_run):
        vdce, _run = loaded_run
        rebuilt = tracer_from_jsonl(trace_to_jsonl(vdce.tracer))
        live = WorkloadView(vdce.tracer)
        exported = WorkloadView(rebuilt)
        assert exported.series() == live.series()
        assert exported.latest() == live.latest()

    def test_render_and_heatmap_identical_after_round_trip(self, loaded_run):
        vdce, _run = loaded_run
        rebuilt = tracer_from_jsonl(trace_to_jsonl(vdce.tracer))
        assert WorkloadView(rebuilt).render() == \
            WorkloadView(vdce.tracer).render()
        assert WorkloadView(rebuilt).heatmap() == \
            WorkloadView(vdce.tracer).heatmap()

    def test_rebuilt_view_sees_every_monitored_host(self, loaded_run):
        vdce, _run = loaded_run
        rebuilt = tracer_from_jsonl(trace_to_jsonl(vdce.tracer))
        latest = WorkloadView(rebuilt).latest()
        hosts = {h.address for h in vdce.world.all_hosts()}
        assert hosts <= set(latest)

    def test_empty_tracer_round_trip_renders_placeholder(self):
        rebuilt = tracer_from_jsonl("")
        assert "no measurements" in WorkloadView(rebuilt).render()


class TestPerformanceViewAgainstSpans:
    def test_rows_match_task_execution_spans(self, observed_run):
        _vdce, obs, run = observed_run
        rows = ApplicationPerformanceView(run).rows()
        spans = {s.name: s for s in obs.spans.by_category("task-execution")}
        assert set(spans) == {r["task"] for r in rows}
        for r in rows:
            span = spans[r["task"]]
            assert span.actor == r["host"]
            assert span.start_s == pytest.approx(r["start_s"])
            assert span.duration_s() == pytest.approx(r["elapsed_s"])

    def test_every_task_span_parents_to_the_application(self, observed_run):
        _vdce, obs, _run = observed_run
        (app,) = obs.spans.by_category("application")
        for span in obs.spans.by_category("task-execution"):
            assert span.parent_id == app.span_id

    def test_render_mentions_every_task(self, observed_run):
        _vdce, _obs, run = observed_run
        text = ApplicationPerformanceView(run).render()
        for nid in run.completions:
            assert nid in text


class TestComparativeViewFromRuns:
    def test_orders_by_makespan_and_renders(self, observed_run, loaded_run):
        _, _, layered = observed_run
        _, solver = loaded_run
        view = ComparativeView()
        view.add("layered-quiet", layered)
        view.add("solver-loaded", solver)
        rows = view.table()
        assert [r["makespan_s"] for r in rows] == \
            sorted(r["makespan_s"] for r in rows)
        assert view.best() == rows[0]["configuration"]
        text = view.render()
        assert "layered-quiet" in text and "solver-loaded" in text
