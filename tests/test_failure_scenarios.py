"""Failure-injection scenarios beyond the basic crash tests."""

import pytest

from repro.scheduling.rescheduling import ReschedulePolicy
from repro.workloads import (
    linear_solver_graph,
    nynet_testbed,
    quiet_testbed,
)


def drive(v, process, max_time=3600.0):
    deadline = v.now + max_time
    while not process.triggered and v.now < deadline:
        v.env.run(until=min(v.now + 5.0, deadline))
    return process.triggered


class TestGroupLeaderFailure:
    def test_leader_crash_silences_group_monitoring(self):
        """When the group-leader machine dies, its Group Manager goes
        silent (its host drops all traffic), so the Site Manager stops
        receiving that group's workload updates — an emergent blind spot
        the paper's design shares."""
        v = nynet_testbed(seed=51, hosts_per_site=6, with_loads=True,
                          trace=True)
        v.start()
        site = v.world.sites["syracuse"]
        leader = site.group_leader("g0")
        v.run(until=20)
        sm_updates_before = v.site_managers["syracuse"].updates_applied
        v.failures.crash_at(v.world.host(f"syracuse/{leader}"), when=v.now)
        v.run(until=60)
        # other groups keep updating; count keeps rising overall but
        # no g0 member's record advances after the crash
        g0_members = [f"syracuse/{m}" for m in site.groups["g0"]]
        repo = v.repositories["syracuse"].resource_performance
        for member in g0_members:
            assert repo.get(member).last_update <= 21.0
        assert v.site_managers["syracuse"].updates_applied >= \
            sm_updates_before

    def test_non_leader_group_keeps_reporting(self):
        v = nynet_testbed(seed=52, hosts_per_site=6, with_loads=True)
        v.start()
        site = v.world.sites["syracuse"]
        leader = site.group_leader("g0")
        v.failures.crash_at(v.world.host(f"syracuse/{leader}"), when=5.0)
        v.run(until=60)
        repo = v.repositories["syracuse"].resource_performance
        g1_members = [f"syracuse/{m}" for m in site.groups["g1"]]
        assert any(repo.get(m).last_update > 30.0 for m in g1_members)


class TestCascadingFailures:
    def build(self, seed):
        v = nynet_testbed(seed=seed, hosts_per_site=3, with_loads=False,
                          reschedule_policy=ReschedulePolicy(
                              load_threshold=3.0, max_attempts=5))
        v.start()
        return v

    def test_two_sequential_crashes_still_complete(self):
        v = self.build(53)
        g = linear_solver_graph(v.registry, n=120)
        process, run = v.submit(g, "syracuse", k_remote_sites=1)
        while run.table is None:
            v.env.run(until=v.now + 0.5)
        first = v.world.host(run.table.get("lu").host)
        v.failures.crash_at(first, when=v.now + 0.05)
        # crash whichever host inherits invert-U a bit later
        v.env.run(until=v.now + 30.0)
        inv_host = v.world.host(run.table.get("invert-U").host)
        if inv_host.up and inv_host.address != first.address:
            v.failures.crash_at(inv_host, when=v.now + 0.05)
        assert drive(v, process, max_time=7200)
        assert run.status == "completed"
        assert run.reschedules >= 1

    def test_crashed_host_excluded_from_new_schedules(self):
        # h1 is not the group leader: its crash is detectable (the leader
        # h0's Group Manager stays alive to notice the missing echoes)
        v = self.build(54)
        victim = v.world.host("syracuse/h1")
        v.failures.crash_at(victim, when=2.0)
        v.run(until=40)  # detection + repository update
        assert v.repositories["syracuse"].resource_performance.get(
            "syracuse/h1").status == "down"
        g = linear_solver_graph(v.registry, n=60)
        run = v.run_application(g, "syracuse", k_remote_sites=1,
                                max_sim_time_s=3600)
        assert run.status == "completed"
        assert "syracuse/h1" not in run.table.hosts()

    def test_recovered_host_usable_again(self):
        v = self.build(55)
        victim = v.world.host("syracuse/h1")
        v.failures.crash_at(victim, when=2.0, recover_after=30.0)
        v.run(until=90)  # down, then up, both detected
        repo = v.repositories["syracuse"].resource_performance
        assert repo.get("syracuse/h1").status == "up"
        g = linear_solver_graph(v.registry, n=60)
        run = v.run_application(g, "syracuse", k_remote_sites=0,
                                max_sim_time_s=3600)
        assert run.status == "completed"


class TestWholeSiteOutage:
    def test_remote_site_dark_local_still_works(self):
        v = quiet_testbed(seed=56)
        v.start()
        for host in v.world.all_hosts():
            if host.site == "rome":
                v.failures.crash_at(host, when=1.0)
        v.run(until=40)
        g = linear_solver_graph(v.registry, n=60)
        run = v.run_application(g, "syracuse", k_remote_sites=1,
                                max_sim_time_s=3600)
        assert run.status == "completed"
        assert run.table.sites() == {"syracuse"}

    def test_flapping_host_does_not_corrupt_repository(self):
        v = nynet_testbed(seed=57, hosts_per_site=3, with_loads=False)
        v.start()
        h = v.world.host("syracuse/h1")
        v.failures.random_crashes(h, v.world.rng.stream("flap"),
                                  mtbf_s=20.0, mttr_s=10.0)
        v.run(until=400)
        rec = v.repositories["syracuse"].resource_performance.get(
            "syracuse/h1")
        # repository state is one of the two valid values and the group
        # manager detected at least one full down/up cycle
        assert rec.status in ("up", "down")
        gm = v.group_managers[("syracuse", "g0")]
        assert gm.stats.failures_detected >= 1
        assert gm.stats.recoveries_detected >= 1
        # detection counts stay paired within one outstanding event
        assert abs(gm.stats.failures_detected
                   - gm.stats.recoveries_detected) <= 1

    def test_no_silent_daemon_crashes(self):
        """After heavy failure churn, no simulated process died on an
        unhandled exception (the engine records them)."""
        v = nynet_testbed(seed=58, hosts_per_site=4, with_loads=True)
        v.start()
        for i, host in enumerate(v.world.all_hosts()):
            if i % 2 == 0:
                v.failures.random_crashes(host,
                                          v.world.rng.stream(f"f{i}"),
                                          mtbf_s=30.0, mttr_s=15.0)
        g = linear_solver_graph(v.registry, n=50)
        v.run_application(g, "syracuse", k_remote_sites=1,
                          max_sim_time_s=1200)
        assert v.env.failed_processes == []
