"""Tier-1 tests for the self-healing control plane (``repro.recovery``).

Chaos-grade end-to-end failover runs live in
``tests/chaos/test_server_failover.py``; this module covers the units —
the WAL and its replay fold, the rank-staggered failure detector, the
standby replica's record application, ``ServerCrash`` plan plumbing,
retry jitter determinism, monotone allocation versions, and a fast
in-process flapping scenario for the rescheduling pipeline.
"""

import json

import numpy as np
import pytest

from repro.faults import FaultPlan, HostCrash, ServerCrash
from repro.recovery import (
    EXECUTION_KINDS,
    MEMBERSHIP_KINDS,
    REPOSITORY_KINDS,
    WAL_KINDS,
    HeartbeatTracker,
    WalRecord,
    WriteAheadLog,
    replay_executions,
)
from repro.runtime.data.messaging import RetryPolicy
from repro.scheduling.allocation import AllocationEntry, ResourceAllocationTable
from repro.util.errors import ConfigurationError
from repro.util.rng import RngRegistry
from repro.workloads import linear_solver_graph, quiet_testbed


# ---------------------------------------------------------------------------
# Write-ahead log
# ---------------------------------------------------------------------------

class TestWriteAheadLog:
    def test_lsns_are_monotone_from_start(self):
        wal = WriteAheadLog()
        records = [wal.append("start", {"execution_id": "e"}, t=float(i))
                   for i in range(5)]
        assert [r.lsn for r in records] == [1, 2, 3, 4, 5]
        assert wal.last_lsn == 5
        assert len(wal) == 5

    def test_start_lsn_continues_a_predecessor(self):
        wal = WriteAheadLog(start_lsn=41)
        assert wal.append("host-up", {"host": "s/h"}, t=0.0).lsn == 42

    def test_negative_start_lsn_rejected(self):
        with pytest.raises(ConfigurationError):
            WriteAheadLog(start_lsn=-1)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            WriteAheadLog().append("made-up", {}, t=0.0)

    def test_kind_catalogue_is_partitioned(self):
        assert set(REPOSITORY_KINDS).isdisjoint(EXECUTION_KINDS)
        assert set(MEMBERSHIP_KINDS).isdisjoint(
            set(REPOSITORY_KINDS) | set(EXECUTION_KINDS))
        assert set(WAL_KINDS) == (set(REPOSITORY_KINDS)
                                  | set(EXECUTION_KINDS)
                                  | set(MEMBERSHIP_KINDS))

    def test_summary_json_is_canonical_and_json_safe(self):
        wal = WriteAheadLog()
        # payloads may hold non-JSON values (numpy arrays in completion
        # reports); the digest must quote only the stable key fields
        wal.append("task-completed",
                   {"execution_id": "e1", "node_id": "n1", "host": "s/h0",
                    "outputs": {"x": np.ones(3)}}, t=1.5)
        doc = json.loads(wal.summary_json())
        assert doc == [{"execution_id": "e1", "host": "s/h0",
                        "kind": "task-completed", "lsn": 1, "node_id": "n1",
                        "t": 1.5}]
        assert wal.summary_json() == wal.summary_json()


class TestReplayExecutions:
    def _begin(self, lsn, eid):
        return WalRecord(lsn=lsn, t=0.0, kind="exec-begin", payload={
            "execution_id": eid, "application": "app",
            "expected_acks": ["s/h0", "s/h1"],
            "controllers": ["s/h0/appctl", "s/h1/appctl"],
            "total_tasks": 2, "coordinator": "s/server/sitemgr",
            "by_site": {}})

    def test_folds_full_lifecycle(self):
        records = [
            self._begin(1, "e1"),
            WalRecord(2, 1.0, "ack", {"execution_id": "e1", "host": "s/h0"}),
            WalRecord(3, 1.1, "ack", {"execution_id": "e1", "host": "s/h1"}),
            WalRecord(4, 1.2, "start", {"execution_id": "e1"}),
            WalRecord(5, 5.0, "task-completed",
                      {"execution_id": "e1", "node_id": "n1"}),
            WalRecord(6, 9.0, "task-completed",
                      {"execution_id": "e1", "node_id": "n2"}),
            WalRecord(7, 9.0, "exec-finished", {"execution_id": "e1"}),
        ]
        info = replay_executions(records)["e1"]
        assert info["acks"] == {"s/h0", "s/h1"}
        assert info["started"] is True
        assert info["start_time"] == 1.2
        assert sorted(info["completed"]) == ["n1", "n2"]
        assert info["finished"] is True

    def test_replays_in_lsn_order_regardless_of_input_order(self):
        records = [
            WalRecord(2, 1.0, "ack", {"execution_id": "e1", "host": "s/h0"}),
            self._begin(1, "e1"),
        ]
        assert replay_executions(records)["e1"]["acks"] == {"s/h0"}

    def test_gap_executions_without_begin_are_skipped(self):
        records = [
            WalRecord(9, 1.0, "ack", {"execution_id": "ghost",
                                      "host": "s/h0"}),
            WalRecord(10, 1.0, "start", {"execution_id": "ghost"}),
        ]
        assert replay_executions(records) == {}

    def test_repository_kinds_do_not_create_executions(self):
        records = [WalRecord(1, 0.0, "host-down",
                             {"host": "s/h0", "time": 0.0})]
        assert replay_executions(records) == {}


# ---------------------------------------------------------------------------
# Heartbeat failure detector
# ---------------------------------------------------------------------------

class _StubHost:
    def __init__(self):
        self.up = True


class _StubReplica:
    def __init__(self):
        self.active = True
        self.host = _StubHost()
        self.last_heartbeat = 0.0


class TestHeartbeatTracker:
    def _tracker(self, rank, fired):
        replica = _StubReplica()
        tracker = HeartbeatTracker(
            replica, rank=rank, suspect_after_s=6.0, promote_grace_s=2.0,
            on_promote=lambda rep, suspected: fired.append(suspected))
        return replica, tracker

    def test_rank_staggers_the_promotion_deadline(self):
        assert self._tracker(0, [])[1].promote_after_s == 6.0
        assert self._tracker(1, [])[1].promote_after_s == 8.0
        assert self._tracker(3, [])[1].promote_after_s == 12.0

    def test_fires_only_past_the_rank_deadline(self):
        replica, tracker = self._tracker(1, fired := [])
        tracker.tick(5.0)
        assert fired == [] and tracker.suspected_at is None
        tracker.tick(6.5)      # suspected, but rank 1 waits until 8.0
        assert fired == [] and tracker.suspected_at == 6.5
        tracker.tick(8.0)
        assert fired == [6.5]  # promoted with the original suspicion time

    def test_heartbeat_clears_suspicion(self):
        replica, tracker = self._tracker(0, fired := [])
        tracker.tick(7.0)
        assert fired == [7.0]
        fired.clear()
        replica.last_heartbeat = 7.5   # beat arrived; silence resets
        tracker.tick(8.0)
        assert fired == [] and tracker.suspected_at is None

    def test_dead_standby_never_fires(self):
        replica, tracker = self._tracker(0, fired := [])
        replica.host.up = False
        tracker.tick(100.0)
        assert fired == [] and tracker.suspected_at is None

    def test_inactive_replica_never_fires(self):
        replica, tracker = self._tracker(0, fired := [])
        replica.active = False
        tracker.tick(100.0)
        assert fired == []

    def test_bad_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            HeartbeatTracker(_StubReplica(), rank=0, suspect_after_s=0.0,
                             promote_grace_s=1.0, on_promote=lambda r, s: None)
        with pytest.raises(ConfigurationError):
            HeartbeatTracker(_StubReplica(), rank=0, suspect_after_s=1.0,
                             promote_grace_s=-1.0,
                             on_promote=lambda r, s: None)


# ---------------------------------------------------------------------------
# ServerCrash plan plumbing
# ---------------------------------------------------------------------------

class TestServerCrashSpec:
    def test_roundtrips_through_dicts(self):
        plan = FaultPlan(events=(
            ServerCrash(site="syracuse", at=10.0, recover_after=5.0),
            HostCrash(host="syracuse/h1", at=3.0),
        ))
        rebuilt = FaultPlan.from_dicts(plan.to_dicts())
        assert rebuilt.to_dicts() == plan.to_dicts()
        kinds = [doc["kind"] for doc in rebuilt.to_dicts()]
        assert "server-crash" in kinds

    def test_validation_rejects_bad_times(self):
        with pytest.raises(ConfigurationError):
            ServerCrash(site="s", at=-1.0).validate()
        with pytest.raises(ConfigurationError):
            ServerCrash(site="s", at=1.0, recover_after=0.0).validate()

    def test_random_plans_spare_servers_by_default(self):
        hosts = ["s/h1", "s/h2", "r/h1"]
        plan = FaultPlan.random(RngRegistry(5).stream("p"), hosts,
                                sites=["s", "r"], horizon_s=60.0)
        assert all(doc["kind"] != "server-crash" for doc in plan.to_dicts())

    def test_include_servers_extends_without_disturbing_other_draws(self):
        hosts = ["s/h1", "s/h2", "r/h1"]
        base = FaultPlan.random(RngRegistry(5).stream("p"), hosts,
                                sites=["s", "r"], horizon_s=60.0)
        extended = FaultPlan.random(RngRegistry(5).stream("p"), hosts,
                                    sites=["s", "r"], horizon_s=60.0,
                                    include_servers=True,
                                    n_server_crashes=2)
        servers = [d for d in extended.to_dicts()
                   if d["kind"] == "server-crash"]
        others = [d for d in extended.to_dicts()
                  if d["kind"] != "server-crash"]
        assert len(servers) == 2
        # the server draws happen after all other draws, so the rest of
        # the plan is byte-identical to the flag-off plan
        assert others == base.to_dicts()


# ---------------------------------------------------------------------------
# Retry jitter (deterministic backoff desynchronisation)
# ---------------------------------------------------------------------------

class TestRetryJitter:
    def test_jitter_bounds_validated(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(jitter=-0.1)
        with pytest.raises(ConfigurationError):
            RetryPolicy(jitter=1.0)

    def test_zero_jitter_keeps_the_plain_ladder(self):
        policy = RetryPolicy(timeout_s=1.0, max_attempts=4,
                             backoff_factor=2.0)
        rng = RngRegistry(1).stream("retry-jitter")
        assert [policy.timeout_for(n, rng=rng) for n in range(1, 5)] == \
            [1.0, 2.0, 4.0, 8.0]
        assert policy.schedule() == [1.0, 2.0, 4.0, 8.0]

    def test_jitter_stretches_within_bounds(self):
        policy = RetryPolicy(timeout_s=1.0, jitter=0.25)
        rng = RngRegistry(7).stream("retry-jitter")
        for attempt in range(1, 5):
            base = RetryPolicy(timeout_s=1.0).timeout_for(attempt)
            got = policy.timeout_for(attempt, rng=rng)
            assert base <= got < base * 1.25

    def test_same_seed_same_jitter_sequence(self):
        policy = RetryPolicy(timeout_s=1.0, jitter=0.3)

        def sequence(seed):
            rng = RngRegistry(seed).stream("retry-jitter")
            return [policy.timeout_for(1 + i % 3, rng=rng)
                    for i in range(16)]

        assert sequence(42) == sequence(42)
        assert sequence(42) != sequence(43)

    def test_no_rng_means_no_jitter(self):
        policy = RetryPolicy(timeout_s=1.0, jitter=0.5)
        assert policy.timeout_for(1) == 1.0


# ---------------------------------------------------------------------------
# Monotone allocation versions
# ---------------------------------------------------------------------------

def _entry(node, host):
    return AllocationEntry(node_id=node, task_name="t", site="s",
                           hosts=(host,), predicted_time_s=1.0)


class TestAllocationVersions:
    def test_assign_starts_at_one(self):
        table = ResourceAllocationTable(application="a")
        table.assign(_entry("n1", "s/h0"))
        assert table.version_of("n1") == 1

    def test_reassign_bumps_monotonically(self):
        table = ResourceAllocationTable(application="a")
        table.assign(_entry("n1", "s/h0"))
        versions = [table.version_of("n1")]
        for host in ("s/h1", "s/h0", "s/h2"):   # flap back and forth
            table.reassign(_entry("n1", host))
            versions.append(table.version_of("n1"))
        assert versions == sorted(versions) == [1, 2, 3, 4]

    def test_unassigned_task_is_version_zero(self):
        assert ResourceAllocationTable(application="a").version_of("x") == 0


# ---------------------------------------------------------------------------
# Rescheduling under host flapping (down -> up -> down)
# ---------------------------------------------------------------------------

class TestHostFlapping:
    def _run(self, seed, plan):
        vdce = quiet_testbed(seed=seed)
        vdce.start()
        vdce.apply_fault_plan(plan)
        graph = linear_solver_graph(vdce.registry, n=300)
        sites = sorted(vdce.world.sites)
        for i, nid in enumerate(graph.nodes):
            graph.node(nid).properties.preferred_site = \
                sites[i % len(sites)]
        run = vdce.run_application(graph, sites[0], k_remote_sites=1,
                                   max_sim_time_s=2000.0)
        return vdce, graph, run

    def test_flapping_host_no_duplicate_completions(self):
        # the same worker dies, recovers, and dies again mid-pipeline
        plan = FaultPlan(events=(
            HostCrash(host="syracuse/h1", at=4.0, recover_after=6.0),
            HostCrash(host="syracuse/h1", at=16.0, recover_after=8.0),
        ))
        vdce, graph, run = self._run(3, plan)
        assert run.status == "completed"
        # every task completed exactly once at the coordinator (the
        # completion map is keyed by node, so duplicates would surface
        # as inflated controller-side execution counts instead)
        assert sorted(run.completions) == sorted(graph.nodes)
        sm_state = vdce.site_managers[
            run.report.local_site].execution_state(run.execution_id)
        assert len(sm_state.completed_tasks) == len(graph)
        assert vdce.env.failed_processes == []

    def test_flapping_keeps_allocation_versions_monotone(self):
        plan = FaultPlan(events=(
            HostCrash(host="syracuse/h1", at=4.0, recover_after=6.0),
            HostCrash(host="syracuse/h1", at=16.0, recover_after=8.0),
        ))
        vdce, graph, run = self._run(3, plan)
        versions = [run.table.version_of(nid) for nid in graph.nodes]
        assert all(v >= 1 for v in versions)
        # every bump beyond the initial assignment was a reschedule the
        # facade coordinated — versions can never outrun that count
        assert sum(v - 1 for v in versions) <= run.reschedules
