"""The admission controller: reject / queue / throttle semantics.

Determinism contract: every decision — including token-bucket refill
instants and exponential-backoff retries — is a pure function of the
seed and the simulated clock (``Environment.call_later``), never of
wall time.
"""

import pytest

from repro.obs import Observability
from repro.repository import TenantRecord
from repro.simcore import Environment
from repro.traffic import (
    AdmissionController,
    DRFAllocator,
    JobRequest,
    make_tenants,
)


def req(job="j1", nproc=2, submit=0.0, duration=10.0, user="u0001",
        tenant="t00"):
    return JobRequest(job=job, nproc=nproc, submit_time_s=submit,
                      duration_s=duration, user=user, tenant=tenant)


def controller(env=None, tenants=None, capacity=64, obs=None, **kwargs):
    env = env or Environment()
    tenants = tenants if tenants is not None else make_tenants(2)
    alloc = DRFAllocator(capacity_procs=capacity,
                         capacity_memory_mb=capacity * 512.0,
                         tenants=tenants)
    admitted = []
    ctrl = AdmissionController(
        env, tenants, alloc,
        demand_fn=lambda r: (float(r.nproc), 256.0 * r.nproc),
        on_admit=admitted.append,
        obs=obs or Observability(enabled=False), **kwargs)
    return env, ctrl, admitted


class TestOutcomes:
    def test_admit_queues_and_notifies(self):
        env, ctrl, admitted = controller()
        assert ctrl.submit(req()) == "admitted"
        assert admitted == ["t00"]
        assert ctrl.pending("t00") == 1
        assert ctrl.total_pending() == 1
        stats = ctrl.stats["t00"]
        assert stats.arrivals == stats.admitted == 1
        assert stats.max_queue_depth == 1

    def test_unknown_tenant_rejected_but_accounted(self):
        env, ctrl, _ = controller()
        assert ctrl.submit(req(tenant="ghost")) == "rejected"
        stats = ctrl.stats["ghost"]
        assert stats.arrivals == 1
        assert stats.rejected["unknown-tenant"] == 1

    def test_infeasible_demand_rejected(self):
        env, ctrl, _ = controller(capacity=4)
        assert ctrl.submit(req(nproc=8)) == "rejected"
        assert ctrl.stats["t00"].rejected["infeasible"] == 1

    def test_quota_infeasible_rejected(self):
        tenants = {"t00": TenantRecord(name="t00", quota_procs=2)}
        env, ctrl, _ = controller(tenants=tenants)
        assert ctrl.submit(req(nproc=4)) == "rejected"
        assert ctrl.stats["t00"].rejected["infeasible"] == 1
        # within quota: admitted even though the queue is deep
        assert ctrl.submit(req(job="j2", nproc=2)) == "admitted"

    def test_queue_full_backpressure(self):
        tenants = make_tenants(1, max_pending=2)
        env, ctrl, _ = controller(tenants=tenants)
        assert ctrl.submit(req(job="a")) == "admitted"
        assert ctrl.submit(req(job="b")) == "admitted"
        assert ctrl.submit(req(job="c")) == "rejected"
        assert ctrl.stats["t00"].rejected["queue-full"] == 1
        assert ctrl.pending("t00") == 2


class TestTokenBucket:
    def test_burst_then_throttle(self):
        tenants = make_tenants(1, rate_per_s=1.0, burst=2)
        env, ctrl, _ = controller(tenants=tenants)
        assert ctrl.submit(req(job="a")) == "admitted"
        assert ctrl.submit(req(job="b")) == "admitted"
        assert ctrl.submit(req(job="c")) == "throttled"
        assert ctrl.stats["t00"].throttled == 1
        # the deferred submission retries itself to admission
        env.run()
        assert ctrl.stats["t00"].admitted == 3
        assert ctrl.pending("t00") == 3

    def test_sim_time_refill(self):
        tenants = make_tenants(1, rate_per_s=2.0, burst=1)
        env, ctrl, _ = controller(tenants=tenants)
        assert ctrl.submit(req(job="a")) == "admitted"
        assert ctrl.submit(req(job="b")) == "throttled"
        env.run()  # drains the retry chain
        assert env.now >= 0.5  # one token at 2/s
        assert ctrl.stats["t00"].admitted == 2

    def test_throttle_exhausted_rejects(self):
        # a lone retry always finds a token (the retry delay covers the
        # refill), so exhaustion needs contention: five jobs race a
        # 0.01/s bucket and only one token appears per retry round
        tenants = make_tenants(1, rate_per_s=0.01, burst=1)
        env, ctrl, _ = controller(tenants=tenants, max_attempts=3)
        assert ctrl.submit(req(job="a")) == "admitted"  # burst token
        for job in ("b", "c", "d", "e"):
            assert ctrl.submit(req(job=job)) == "throttled"
        env.run()
        stats = ctrl.stats["t00"]
        assert stats.admitted == 3  # a + one winner per retry round
        assert stats.rejected["throttle-exhausted"] == 2
        assert stats.admitted + sum(stats.rejected.values()) \
            == stats.arrivals

    def test_backoff_schedule_deterministic(self):
        def trace():
            tenants = make_tenants(1, rate_per_s=0.5, burst=1)
            env, ctrl, _ = controller(tenants=tenants)
            ctrl.submit(req(job="a"))
            ctrl.submit(req(job="b"))
            ctrl.submit(req(job="c"))
            times = []
            original = ctrl._retry

            def spy(deferred):
                times.append(env.now)
                original(deferred)

            ctrl._retry = spy
            env.run()
            return times, ctrl.stats["t00"].admitted

        first = trace()
        second = trace()
        assert first == second
        assert first[1] == 3  # all eventually admitted
        assert first[0] == sorted(first[0])

    def test_arrivals_equals_admitted_plus_rejected(self):
        # the accounting invariant check_report relies on: throttles
        # are transient, every arrival terminally resolves
        tenants = make_tenants(2, rate_per_s=2.0, burst=1,
                               max_pending=5)
        env, ctrl, _ = controller(tenants=tenants)
        for i in range(40):
            ctrl.submit(req(job=f"j{i}", tenant=f"t{i % 2:02d}"))
        env.run()
        for stats in ctrl.stats.values():
            assert stats.admitted + sum(stats.rejected.values()) \
                == stats.arrivals


class TestObsMirroring:
    def test_counters_match_stats(self):
        obs = Observability()
        tenants = make_tenants(1, rate_per_s=1.0, burst=1, max_pending=1)
        env, ctrl, _ = controller(tenants=tenants, obs=obs)
        for i in range(6):
            ctrl.submit(req(job=f"j{i}"))
        env.run()
        stats = ctrl.stats["t00"]
        metrics = obs.metrics
        assert metrics.counter("traffic_arrivals_total").total() \
            == stats.arrivals
        assert metrics.counter("traffic_admitted_total").total() \
            == stats.admitted
        assert metrics.counter("traffic_throttled_total").total() \
            == stats.throttled
        assert metrics.counter("traffic_rejected_total").total() \
            == sum(stats.rejected.values())
