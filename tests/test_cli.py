"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version(self, capsys):
        with pytest.raises(SystemExit) as exc:
            build_parser().parse_args(["--version"])
        assert exc.value.code == 0
        assert "repro" in capsys.readouterr().out

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["teleport"])

    def test_dialect_choices_enforced(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["local", "--dialect", "corba"])


class TestCommands:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "matrix-operations" in out
        assert "lu-decomposition" in out
        assert "mpi" in out

    def test_solve_idle(self, capsys):
        assert main(["solve", "--n", "40", "--idle", "--seed", "2"]) == 0
        out = capsys.readouterr().out
        assert "status    : completed" in out
        assert "residual" in out

    def test_solve_parallel(self, capsys):
        assert main(["solve", "--n", "40", "--idle", "--parallel"]) == 0
        assert "completed" in capsys.readouterr().out

    def test_schedule_table(self, capsys):
        assert main(["schedule", "--app", "linear-solver", "--size", "50",
                     "--idle"]) == 0
        out = capsys.readouterr().out
        assert "resource allocation table" in out
        assert "lu" in out

    def test_schedule_queue_aware(self, capsys):
        assert main(["schedule", "--app", "fourier-pipeline", "--idle",
                     "--queue-aware"]) == 0
        assert "consulted sites" in capsys.readouterr().out

    def test_schedule_unknown_app(self):
        with pytest.raises(SystemExit):
            main(["schedule", "--app", "quantum-sim", "--idle"])

    def test_local_run(self, capsys):
        assert main(["local", "--app", "c3i-scenario", "--size", "8",
                     "--dialect", "mpi"]) == 0
        out = capsys.readouterr().out
        assert "real TCP" in out
        assert "plan" in out

    def test_monitor(self, capsys):
        assert main(["monitor", "--duration", "30", "--policy", "ci",
                     "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "Workload" in out
        assert "reduction" in out


class TestObsCommand:
    def test_report_sections(self, capsys):
        assert main(["obs", "--app", "linear-solver", "--size", "40",
                     "--idle", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "observability report" in out
        assert "utilization" in out
        assert "schedule latency" in out
        assert "queue depths" in out
        assert "span inventory" in out

    def test_exports_written_and_valid(self, capsys, tmp_path):
        import json
        chrome = tmp_path / "trace.json"
        prom = tmp_path / "metrics.prom"
        jsonl = tmp_path / "spans.jsonl"
        assert main(["obs", "--app", "linear-solver", "--size", "40",
                     "--idle", "--seed", "3",
                     "--chrome", str(chrome), "--prom", str(prom),
                     "--jsonl", str(jsonl)]) == 0
        capsys.readouterr()
        doc = json.loads(chrome.read_text())
        assert doc["traceEvents"]
        assert "vdce_apps_completed_total" in prom.read_text()
        assert all(json.loads(line)
                   for line in jsonl.read_text().splitlines())

    def test_byte_identical_for_fixed_seed(self, capsys, tmp_path):
        argv = ["obs", "--app", "fourier-pipeline", "--idle", "--seed", "5"]
        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        assert main(argv + ["--chrome", str(a)]) == 0
        assert main(argv + ["--chrome", str(b)]) == 0
        capsys.readouterr()
        assert a.read_bytes() == b.read_bytes()


class TestShowCommand:
    def test_show_renders_graph(self, capsys):
        assert main(["show", "--app", "linear-solver", "--size", "50"]) == 0
        out = capsys.readouterr().out
        assert "critical path" in out
        assert "[lu]" in out
        assert "lower -->" in out

    def test_show_no_ports(self, capsys):
        assert main(["show", "--app", "c3i-scenario", "--no-ports"]) == 0
        out = capsys.readouterr().out
        assert "-->" in out and "lower -->" not in out


class TestArchiveReplay:
    def test_solve_archive_then_replay(self, capsys, tmp_path):
        path = str(tmp_path / "run.json")
        assert main(["solve", "--n", "40", "--idle", "--archive",
                     path]) == 0
        capsys.readouterr()
        assert main(["replay", path]) == 0
        out = capsys.readouterr().out
        assert "Post-mortem" in out
        assert "utilization" in out


class TestExperimentCommand:
    def test_monitoring_experiment(self, capsys):
        assert main(["experiment", "monitoring"]) == 0
        out = capsys.readouterr().out
        assert "monitoring filter comparison" in out

    def test_experiment_json_output(self, capsys):
        assert main(["experiment", "failure-detection", "--json"]) == 0
        out = capsys.readouterr().out
        assert '"rows"' in out


class TestModuleEntryPoint:
    def test_python_dash_m_repro(self):
        """`python -m repro` works as a real subprocess."""
        import subprocess
        import sys
        out = subprocess.run(
            [sys.executable, "-m", "repro", "info"],
            capture_output=True, text=True, timeout=120)
        assert out.returncode == 0
        assert "matrix-operations" in out.stdout


class TestPlanCommand:
    def test_feasible_deadline(self, capsys):
        assert main(["plan", "--app", "fourier-pipeline", "--size", "2048",
                     "--deadline", "100", "--max-hosts", "4"]) == 0
        out = capsys.readouterr().out
        assert "suffice" in out

    def test_infeasible_deadline_exit_code(self, capsys):
        assert main(["plan", "--app", "linear-solver", "--size", "200",
                     "--deadline", "0.001", "--max-hosts", "2"]) == 1
        assert "infeasible" in capsys.readouterr().out


class TestBakeoffCommand:
    def test_table_and_json(self, capsys, tmp_path):
        out_json = tmp_path / "bakeoff.json"
        assert main(["bakeoff", "--schedulers", "heft,random,optimal",
                     "--workloads", "forkjoin-small",
                     "--json", str(out_json)]) == 0
        out = capsys.readouterr().out
        assert "forkjoin-small" in out
        assert "optimality_gap" in out
        import json
        payload = json.loads(out_json.read_text())
        assert payload["kind"] == "bakeoff"
        assert {r["scheduler"] for r in payload["rows"]} == \
            {"heft", "random", "optimal"}

    def test_check_against_fresh_baseline(self, capsys, tmp_path):
        baseline = tmp_path / "baseline.json"
        args = ["bakeoff", "--schedulers", "heft,site",
                "--workloads", "pipeline-small"]
        assert main(args + ["--json", str(baseline)]) == 0
        capsys.readouterr()
        assert main(args + ["--check", str(baseline)]) == 0
        assert "OK: no optimality-gap regressions" in \
            capsys.readouterr().out

    def test_obs_summary(self, capsys):
        assert main(["bakeoff", "--schedulers", "heft,min-load",
                     "--workloads", "forkjoin-small", "--obs"]) == 0
        out = capsys.readouterr().out
        assert "schedule rounds observed: 2" in out
        assert "2 schedule-round spans" in out

    def test_unknown_scheduler_fails(self):
        from repro.util.errors import SchedulingError
        with pytest.raises(SchedulingError, match="unknown scheduler"):
            main(["bakeoff", "--schedulers", "annealing",
                  "--workloads", "forkjoin-small"])
