"""End-to-end replay: lazy streaming, DRF dispatch, reports, CLI.

The CI replay contract: same config → byte-identical JSON report; all
accounting invariants (:func:`repro.traffic.check_report`) hold; the
DRF per-dispatch audit records zero violations; and the heap never
materialises the arrival stream (one pending arrival event at a time).
"""

import json

import pytest

from repro.cli import main
from repro.bakeoff import ReplayBakeoffConfig, run_replay_bakeoff
from repro.obs import Observability
from repro.repository import TenantRecord
from repro.simcore import Environment
from repro.traffic import (
    CapacityBackend,
    DRFAllocator,
    JobRequest,
    ReplayConfig,
    ReplayEngine,
    check_report,
    dump_trace,
    make_tenants,
    run_replay,
)
from repro.traffic.generators import OpenLoopGenerator
from repro.traffic.templates import TEMPLATE_NAMES
from repro.util.errors import ConfigurationError
from repro.util.rng import RngRegistry

SMALL = dict(arrivals=1500, users=100, tenants=5, rate_per_s=30.0)


def small_config(**overrides):
    return ReplayConfig(**{**SMALL, **overrides})


class TestReplayEndToEnd:
    @pytest.mark.parametrize("generator", ["open-loop", "closed-loop",
                                           "synthetic-alibaba"])
    def test_invariants_hold(self, generator):
        report = run_replay(small_config(generator=generator))
        assert check_report(report) == []
        totals = report.totals()
        assert totals["arrivals"] == 1500
        assert totals["drf_violations"] == 0
        assert totals["drf_decisions"] >= totals["dispatched"]

    def test_same_seed_byte_identical_json(self):
        first = run_replay(small_config()).to_json()
        second = run_replay(small_config()).to_json()
        assert first == second
        doc = json.loads(first)
        assert doc["kind"] == "traffic-replay"
        assert len(doc["tenants"]) == 5

    def test_different_seed_differs(self):
        first = run_replay(small_config()).to_json()
        second = run_replay(small_config(seed=99)).to_json()
        assert first != second

    def test_trace_file_replay(self, tmp_path):
        reqs = list(OpenLoopGenerator(
            RngRegistry(3).stream("t"), 500, rate_per_s=20.0, users=40,
            tenants=4, templates=TEMPLATE_NAMES))
        path = tmp_path / "trace.txt"
        dump_trace(reqs, path)
        config = small_config(generator="trace", trace_path=str(path),
                              arrivals=500, users=40, tenants=4)
        report = run_replay(config)
        assert check_report(report) == []
        assert report.totals()["arrivals"] == 500

    def test_quotas_bound_concurrency(self):
        # 2-proc quota per tenant on a 256-proc federation: utilization
        # collapses but nothing is lost — jobs just wait
        report = run_replay(small_config(arrivals=400, quota_procs=2))
        assert check_report(report) == []
        totals = report.totals()
        assert totals["completed"] == totals["admitted"]

    def test_throttling_and_backpressure_account(self):
        report = run_replay(small_config(
            arrivals=800, rate_limit_per_s=1.0, burst=2, max_pending=10))
        assert check_report(report) == []
        totals = report.totals()
        assert totals["rejected"] > 0  # backpressure engaged
        assert totals["arrivals"] == \
            totals["admitted"] + totals["rejected"]

    def test_weight_tilts_waiting_under_backlog(self):
        # discrete progressive filling self-replaces at full saturation
        # (a completion drops the completer's share, so it usually wins
        # the very next pick) — weights bite when the pump faces a real
        # choice: filling from empty against queued backlogs.  There the
        # heavy tenant locks in more slots, drains sooner, waits less.
        def mean_waits(weight):
            env = Environment()
            tenants = {
                "heavy": TenantRecord(name="heavy", weight=weight),
                "light": TenantRecord(name="light"),
            }
            alloc = DRFAllocator(8, 8 * 512.0, tenants)
            backend = CapacityBackend(env, ("s1",), 8)
            reqs = [JobRequest(job=f"{t}-{i:02d}", nproc=2,
                               submit_time_s=0.0, duration_s=10.0,
                               user=f"u-{t}", tenant=t)
                    for t in ("heavy", "light") for i in range(20)]
            engine = ReplayEngine(env, reqs, tenants, alloc, backend)
            out = engine.run()
            assert out.drf_violations == 0
            assert all(s.dispatched == s.completed == 20
                       for s in out.tenants.values())
            return {t: s.wait_sum_s / s.dispatched
                    for t, s in out.tenants.items()}

        weighted = mean_waits(4.0)
        assert weighted["heavy"] < weighted["light"]
        flat = mean_waits(1.0)
        assert weighted["heavy"] < flat["heavy"]

    def test_obs_mirrors_dispatches(self):
        obs = Observability()
        report = run_replay(small_config(arrivals=300), obs=obs)
        dispatched = obs.metrics.counter(
            "traffic_dispatched_total").total()
        assert dispatched == report.totals()["dispatched"]
        assert obs.metrics.counter("traffic_completed_total").total() \
            == report.totals()["completed"]

    def test_config_validation(self):
        with pytest.raises(ConfigurationError, match="generator"):
            run_replay(small_config(generator="nope"))
        with pytest.raises(ConfigurationError, match="trace"):
            run_replay(small_config(generator="trace"))
        with pytest.raises(ConfigurationError, match="tenants"):
            run_replay(small_config(users=3, tenants=5))

    def test_lazy_streaming_one_pending_arrival(self):
        """The tentpole's memory contract: the engine holds exactly one
        un-submitted arrival in the event heap at any instant."""
        env = Environment()
        tenants = make_tenants(2)
        alloc = DRFAllocator(16, 16 * 512.0, tenants)
        backend = CapacityBackend(env, ("s1",), 16)
        arrivals = OpenLoopGenerator(
            RngRegistry(1).stream("t"), 200, rate_per_s=50.0, users=10,
            tenants=2, templates=TEMPLATE_NAMES)
        engine = ReplayEngine(env, arrivals, tenants, alloc, backend)
        seen = []
        original = engine._arrive

        def spy(req):
            # before this arrival is consumed no later one may exist
            seen.append(req.job)
            original(req)

        engine._arrive = spy
        engine.prime()
        env.run()
        outcome = engine.finalize()
        assert seen == sorted(seen)
        assert len(seen) == 200
        total = sum(s.completed for s in outcome.tenants.values())
        dispatched = sum(s.dispatched for s in outcome.tenants.values())
        assert total == dispatched


class TestReplayCli:
    def test_cli_replay_check_and_json(self, tmp_path, capsys):
        out = tmp_path / "replay.json"
        args = ["replay", "--arrivals", "800", "--users", "50",
                "--tenants", "5", "--seed", "4", "--check",
                "--json", str(out)]
        assert main(args) == 0
        text = capsys.readouterr().out
        assert "OK: accounting and DRF invariants hold" in text
        first = out.read_bytes()
        assert main(args) == 0
        assert out.read_bytes() == first  # byte-identical re-run

    def test_cli_replay_prom_artifact(self, tmp_path):
        prom = tmp_path / "tenants.prom"
        assert main(["replay", "--arrivals", "300", "--users", "20",
                     "--tenants", "4", "--prom", str(prom)]) == 0
        text = prom.read_text()
        assert "traffic_admitted_total" in text
        assert 'tenant="t03"' in text

    def test_cli_replay_trace_mode(self, tmp_path):
        reqs = list(OpenLoopGenerator(
            RngRegistry(3).stream("t"), 100, rate_per_s=20.0, users=20,
            tenants=4, templates=TEMPLATE_NAMES))
        path = tmp_path / "trace.txt"
        dump_trace(reqs, path)
        assert main(["replay", "--trace", str(path), "--users", "20",
                     "--tenants", "4", "--check"]) == 0

    def test_cli_archive_mode_still_works(self, tmp_path):
        # back-compat: a positional path renders a post-mortem archive
        from repro.viz import archive_run
        from repro.workloads import linear_solver_graph, quiet_testbed
        vdce = quiet_testbed(seed=2)
        vdce.start()
        graph = linear_solver_graph(vdce.registry, n=40)
        run = vdce.run_application(graph, "syracuse", max_sim_time_s=600)
        assert run.status == "completed"
        path = tmp_path / "archive.json"
        archive_run(run, path, tracer=vdce.tracer)
        assert main(["replay", str(path)]) == 0


class TestReplayBakeoff:
    def test_schedulers_scored_under_load(self):
        config = ReplayBakeoffConfig(
            schedulers=("site", "round-robin"), arrivals=60, users=30,
            tenants=3)
        result = run_replay_bakeoff(config)
        assert [row["scheduler"] for row in result.rows] == \
            ["site", "round-robin"]
        for row in result.rows:
            assert row["dispatched"] == row["completed"] == 60
            assert row["drf_violations"] == 0
            assert row["gate_refusals"] == 0
            assert row["predicted_work_s"] > 0
        assert result.to_json() == run_replay_bakeoff(config).to_json()

    def test_cli_bakeoff_replay(self, tmp_path, capsys):
        out = tmp_path / "bo.json"
        assert main(["bakeoff", "--replay", "--replay-arrivals", "40",
                     "--replay-tenants", "2", "--schedulers",
                     "site,min-load", "--json", str(out)]) == 0
        doc = json.loads(out.read_text())
        assert doc["kind"] == "replay-bakeoff"
        assert len(doc["rows"]) == 2
        assert "replay bake-off" in capsys.readouterr().out
