"""Tests for the API-reference generator (tools/gen_api_docs.py)."""

import importlib.util
import sys
from pathlib import Path

import pytest

TOOL = Path(__file__).parent.parent / "tools" / "gen_api_docs.py"


@pytest.fixture(scope="module")
def gen():
    spec = importlib.util.spec_from_file_location("gen_api_docs", TOOL)
    module = importlib.util.module_from_spec(spec)
    sys.modules["gen_api_docs"] = module
    spec.loader.exec_module(module)
    return module


class TestGenerator:
    def test_generates_all_modules(self, gen):
        text = gen.generate()
        for modname in gen.MODULES:
            assert f"## `{modname}`" in text

    def test_documents_key_classes(self, gen):
        text = gen.generate()
        for cls in ("class `VDCE", "class `ApplicationEditor",
                    "class `SiteScheduler", "class `DataManager",
                    "class `HeftScheduler"):
            assert cls in text

    def test_method_docstrings_included(self, gen):
        text = gen.generate()
        assert "The double-click popup panel of Figure 3." in text

    def test_no_private_names(self, gen):
        text = gen.generate()
        assert "### class `_" not in text
        assert "- `._" not in text

    def test_writes_file(self, gen, tmp_path, monkeypatch, capsys):
        target = tmp_path / "api.md"
        monkeypatch.setattr(sys, "argv", ["gen_api_docs.py", str(target)])
        assert gen.main() == 0
        assert target.exists()
        assert target.read_text().startswith("# API reference")

    def test_checked_in_copy_up_to_date_markers(self):
        """docs/api.md exists and carries the regeneration notice."""
        doc = Path(__file__).parent.parent / "docs" / "api.md"
        assert doc.exists()
        assert "gen_api_docs.py" in doc.read_text()[:300]
