"""Tests for the open-loop workload player."""

import pytest

from repro.util.errors import ConfigurationError
from repro.workloads import (
    WorkloadPlayer,
    fourier_pipeline_graph,
    linear_solver_graph,
    quiet_testbed,
)


def factory_for(vdce, n=40):
    return lambda i: linear_solver_graph(vdce.registry, n=n, seed=i)


class TestWorkloadPlayer:
    def test_all_complete_at_low_load(self):
        v = quiet_testbed(seed=101)
        v.start()
        player = WorkloadPlayer(v, factory_for(v),
                                mean_interarrival_s=30.0)
        report = player.play(count=4, drain_s=3600)
        assert report.submitted == 4
        assert report.completed == 4
        assert report.timed_out == 0
        assert report.throughput_per_min > 0
        assert report.mean_makespan_s > 0
        assert report.p95_makespan_s >= report.mean_makespan_s * 0.5

    def test_sites_round_robin(self):
        v = quiet_testbed(seed=102)
        v.start()
        player = WorkloadPlayer(v, factory_for(v, n=30),
                                mean_interarrival_s=20.0,
                                local_sites=["syracuse", "rome"])
        report = player.play(count=4)
        locals_used = {run.report.local_site for run in report.runs}
        assert locals_used == {"syracuse", "rome"}

    def test_contention_raises_makespan(self):
        """Faster arrivals on the same testbed => higher mean makespan."""
        def run_at(interarrival):
            v = quiet_testbed(seed=103)
            v.start()
            player = WorkloadPlayer(
                v, lambda i: fourier_pipeline_graph(v.registry, n=8192,
                                                    stages=4),
                mean_interarrival_s=interarrival)
            return player.play(count=6, drain_s=7200)

        relaxed = run_at(60.0)
        slammed = run_at(0.2)
        assert relaxed.completed == slammed.completed == 6
        assert slammed.mean_makespan_s > relaxed.mean_makespan_s * 1.2

    def test_summary_keys(self):
        v = quiet_testbed(seed=104)
        v.start()
        report = WorkloadPlayer(v, factory_for(v, n=30),
                                mean_interarrival_s=10.0).play(count=2)
        s = report.summary()
        for key in ("submitted", "completed", "throughput_per_min",
                    "mean_makespan_s", "p95_makespan_s", "reschedules"):
            assert key in s

    def test_validation(self):
        v = quiet_testbed(seed=105)
        v.start()
        with pytest.raises(ConfigurationError):
            WorkloadPlayer(v, factory_for(v), mean_interarrival_s=0)
