"""Tests for post-mortem run archives."""

import pytest

from repro.util.errors import RuntimeSystemError
from repro.viz import RunArchive, WorkloadView, archive_run
from repro.workloads import linear_solver_graph, quiet_testbed


@pytest.fixture(scope="module")
def completed():
    v = quiet_testbed(seed=81)
    v.start()
    g = linear_solver_graph(v.registry, n=50)
    run = v.run_application(g, "syracuse", max_sim_time_s=600)
    assert run.status == "completed"
    return v, run


class TestArchiveConstruction:
    def test_from_run_fields(self, completed):
        v, run = completed
        arc = RunArchive.from_run(run, tracer=v.tracer)
        assert arc.application == "linear-equation-solver"
        assert arc.status == "completed"
        assert arc.makespan == pytest.approx(run.makespan)
        assert set(arc.allocation) == set(run.graph.nodes)
        assert len(arc.tasks) == len(run.graph)
        assert any(r["category"] == "task-finish" for r in arc.trace)

    def test_unscheduled_run_rejected(self, completed):
        from repro.core.run import ApplicationRun
        _, run = completed
        empty = ApplicationRun(execution_id="x", graph=run.graph,
                               table=None, report=None)  # type: ignore
        with pytest.raises(RuntimeSystemError):
            RunArchive.from_run(empty)

    def test_trace_filtered_to_categories(self, completed):
        v, run = completed
        arc = RunArchive.from_run(run, tracer=v.tracer,
                                  categories=("task-finish",))
        assert arc.trace
        assert all(r["category"] == "task-finish" for r in arc.trace)


class TestPersistence:
    def test_save_load_roundtrip(self, completed, tmp_path):
        v, run = completed
        path = tmp_path / "run.json"
        arc = archive_run(run, path, tracer=v.tracer)
        loaded = RunArchive.load(path)
        assert loaded.execution_id == arc.execution_id
        assert loaded.tasks == arc.tasks
        assert loaded.makespan == pytest.approx(arc.makespan)

    def test_load_garbage(self, tmp_path):
        p = tmp_path / "bad.json"
        p.write_text("{]")
        with pytest.raises(RuntimeSystemError):
            RunArchive.load(p)

    def test_load_wrong_shape(self, tmp_path):
        p = tmp_path / "wrong.json"
        p.write_text('{"unexpected": 1}')
        with pytest.raises(RuntimeSystemError):
            RunArchive.load(p)


class TestDerivedViews:
    def test_host_utilization_bounds(self, completed):
        v, run = completed
        arc = RunArchive.from_run(run, tracer=v.tracer)
        util = arc.host_utilization()
        assert util
        assert all(0.0 <= u <= 1.0 for u in util.values())
        # the hosts in the utilization map executed the tasks
        assert set(util) <= set(run.table.hosts())

    def test_render_contains_tasks_and_utilization(self, completed):
        v, run = completed
        arc = RunArchive.from_run(run, tracer=v.tracer)
        text = arc.render()
        assert "Post-mortem" in text
        assert "lu" in text
        assert "utilization" in text

    def test_rehydrated_tracer_feeds_live_views(self, completed, tmp_path):
        """The archived trace slice works with WorkloadView post-mortem."""
        v, run = completed
        path = tmp_path / "run.json"
        archive_run(run, path, tracer=v.tracer)
        loaded = RunArchive.load(path)
        view = WorkloadView(loaded.tracer())
        # quiet testbed: loads are flat zero but series must exist
        assert view.series() is not None
