"""Tests for the discrete-event simulation kernel."""

import pytest

from repro.simcore import Environment, Interrupt
from repro.util.errors import SimulationError


class TestClockAndTimeouts:
    def test_time_starts_at_zero(self):
        env = Environment()
        assert env.now == 0.0

    def test_timeout_advances_clock(self):
        env = Environment()
        done = []

        def proc(env):
            yield env.timeout(5.0)
            done.append(env.now)

        env.process(proc(env))
        env.run()
        assert done == [5.0]

    def test_negative_timeout_rejected(self):
        env = Environment()
        with pytest.raises(SimulationError):
            env.timeout(-1.0)

    def test_run_until_time_stops_clock_exactly(self):
        env = Environment()

        def proc(env):
            while True:
                yield env.timeout(10.0)

        env.process(proc(env))
        env.run(until=25.0)
        assert env.now == 25.0

    def test_run_until_past_raises(self):
        env = Environment()
        env.run(until=5.0)
        with pytest.raises(SimulationError):
            env.run(until=1.0)

    def test_timeout_value_passed_through(self):
        env = Environment()
        got = []

        def proc(env):
            v = yield env.timeout(1.0, value="payload")
            got.append(v)

        env.process(proc(env))
        env.run()
        assert got == ["payload"]

    def test_same_time_events_fifo_order(self):
        env = Environment()
        order = []

        def proc(env, tag):
            yield env.timeout(3.0)
            order.append(tag)

        for tag in ("a", "b", "c"):
            env.process(proc(env, tag))
        env.run()
        assert order == ["a", "b", "c"]


class TestProcesses:
    def test_process_return_value(self):
        env = Environment()

        def proc(env):
            yield env.timeout(2.0)
            return 42

        p = env.process(proc(env))
        assert env.run(until=p) == 42

    def test_process_waits_on_process(self):
        env = Environment()

        def child(env):
            yield env.timeout(4.0)
            return "child-done"

        def parent(env):
            result = yield env.process(child(env))
            return (env.now, result)

        p = env.process(parent(env))
        assert env.run(until=p) == (4.0, "child-done")

    def test_process_exception_propagates_to_waiter(self):
        env = Environment()

        def bad(env):
            yield env.timeout(1.0)
            raise ValueError("boom")

        def parent(env):
            try:
                yield env.process(bad(env))
            except ValueError as e:
                return f"caught {e}"

        p = env.process(parent(env))
        assert env.run(until=p) == "caught boom"

    def test_uncaught_failure_raises_from_run(self):
        env = Environment()

        def bad(env):
            yield env.timeout(1.0)
            raise RuntimeError("unhandled")

        p = env.process(bad(env))
        with pytest.raises(RuntimeError, match="unhandled"):
            env.run(until=p)

    def test_requires_generator(self):
        env = Environment()
        with pytest.raises(SimulationError):
            env.process(lambda: None)  # type: ignore[arg-type]

    def test_yield_non_event_is_error(self):
        env = Environment()

        def bad(env):
            yield 17

        p = env.process(bad(env))
        with pytest.raises(SimulationError):
            env.run(until=p)

    def test_deadlock_detected(self):
        env = Environment()

        def waiter(env):
            yield env.event()  # never triggered

        p = env.process(waiter(env))
        with pytest.raises(SimulationError, match="deadlock"):
            env.run(until=p)


class TestInterrupts:
    def test_interrupt_reaches_process(self):
        env = Environment()
        log = []

        def victim(env):
            try:
                yield env.timeout(100.0)
            except Interrupt as i:
                log.append(("interrupted", env.now, i.cause))

        def attacker(env, target):
            yield env.timeout(5.0)
            target.interrupt(cause="overload")

        v = env.process(victim(env))
        env.process(attacker(env, v))
        env.run()
        assert log == [("interrupted", 5.0, "overload")]

    def test_uncaught_interrupt_cancels_cleanly(self):
        env = Environment()

        def victim(env):
            yield env.timeout(100.0)

        def attacker(env, target):
            yield env.timeout(5.0)
            target.interrupt()

        v = env.process(victim(env))
        env.process(attacker(env, v))
        env.run()
        assert not v.is_alive
        assert v.ok

    def test_interrupt_finished_process_raises(self):
        env = Environment()

        def quick(env):
            yield env.timeout(1.0)

        p = env.process(quick(env))
        env.run()
        with pytest.raises(SimulationError):
            p.interrupt()


class TestCompositeEvents:
    def test_all_of_collects_values(self):
        env = Environment()

        def proc(env):
            t1 = env.timeout(1.0, value="a")
            t2 = env.timeout(3.0, value="b")
            vals = yield env.all_of([t1, t2])
            return (env.now, vals)

        p = env.process(proc(env))
        assert env.run(until=p) == (3.0, ["a", "b"])

    def test_all_of_empty_fires_immediately(self):
        env = Environment()

        def proc(env):
            vals = yield env.all_of([])
            return vals

        p = env.process(proc(env))
        assert env.run(until=p) == []

    def test_any_of_returns_first(self):
        env = Environment()

        def proc(env):
            slow = env.timeout(10.0, value="slow")
            fast = env.timeout(2.0, value="fast")
            idx, val = yield env.any_of([slow, fast])
            return (env.now, idx, val)

        p = env.process(proc(env))
        assert env.run(until=p) == (2.0, 1, "fast")


class TestEventSemantics:
    def test_event_double_trigger_rejected(self):
        env = Environment()
        ev = env.event()
        ev.succeed(1)
        with pytest.raises(SimulationError):
            ev.succeed(2)

    def test_value_before_trigger_rejected(self):
        env = Environment()
        ev = env.event()
        with pytest.raises(SimulationError):
            _ = ev.value

    def test_fail_requires_exception(self):
        env = Environment()
        with pytest.raises(TypeError):
            env.event().fail("not an exception")  # type: ignore[arg-type]

    def test_manual_succeed_wakes_waiter(self):
        env = Environment()
        flag = env.event()
        got = []

        def waiter(env):
            v = yield flag
            got.append((env.now, v))

        def signaller(env):
            yield env.timeout(7.0)
            flag.succeed("go")

        env.process(waiter(env))
        env.process(signaller(env))
        env.run()
        assert got == [(7.0, "go")]

    def test_step_empty_queue_raises(self):
        env = Environment()
        env.run()
        with pytest.raises(SimulationError):
            env.step()

    def test_peek(self):
        env = Environment()
        assert env.peek() == float("inf")
        env.timeout(4.0)
        assert env.peek() == pytest.approx(0.0) or env.peek() <= 4.0


class TestFastPathEdgeCases:
    """Orderings the kernel fast paths must preserve exactly.

    These pin the engine's trace ordering for the cases the optimized
    resume path (no relay-event allocation) and the timeout fast path
    touch: resuming from already-processed events, interrupting such a
    pending resume, and same-tick URGENT/NORMAL interleaving.
    """

    def test_resume_from_processed_event_before_same_tick_timeout(self):
        # A process waking from an already-processed event resumes
        # URGENT, i.e. before any NORMAL event of the same tick.
        env = Environment()
        ev = env.event()
        ev.succeed("x")
        env.run()  # ev is now processed (callbacks ran)
        order = []

        def waiter(env):
            v = yield ev
            order.append(("waiter", v))

        def ticker(env):
            yield env.timeout(0.0)
            order.append(("ticker", env.now))

        env.process(waiter(env))
        env.process(ticker(env))
        env.run()
        assert order == [("waiter", "x"), ("ticker", 0.0)]

    def test_resume_from_processed_failed_event_throws(self):
        env = Environment()
        bad = env.event()
        bad.fail(RuntimeError("late"))
        env.run()  # bad is processed; nobody was waiting

        def waiter(env):
            try:
                yield bad
            except RuntimeError as e:
                return f"caught {e}"
            yield env.timeout(1.0)  # pragma: no cover

        p = env.process(waiter(env))
        assert env.run(until=p) == "caught late"

    def test_interrupt_cancels_pending_resume_from_processed_event(self):
        # victim yields an already-processed event (resume is pending,
        # same tick, URGENT); the attacker's interrupt lands before that
        # resume fires and must win — the victim sees only the Interrupt.
        env = Environment()
        ev = env.event()
        ev.succeed("payload")
        env.run()
        log = []

        def victim(env):
            try:
                got = yield ev
                log.append(("resumed", got))
            except Interrupt as i:
                log.append(("interrupted", i.cause))

        v = env.process(victim(env))

        def attacker(env):
            v.interrupt("too-late")
            return
            yield  # pragma: no cover

        env.process(attacker(env))
        env.run()
        assert log == [("interrupted", "too-late")]

    def test_any_of_first_child_already_failed_processed(self):
        env = Environment()
        bad = env.event()
        bad.fail(ValueError("dead"))
        env.run()  # bad processed before the AnyOf is built

        def proc(env):
            slow = env.timeout(5.0, value="slow")
            try:
                yield env.any_of([bad, slow])
            except ValueError as e:
                return ("caught", str(e), env.now)
            return "unreachable"  # pragma: no cover

        p = env.process(proc(env))
        # the failure propagates at the current tick, not at t=5
        assert env.run(until=p) == ("caught", "dead", 0.0)

    def test_timeout_zero_orders_by_schedule_seq_against_succeed(self):
        # Both a Timeout(0) and a manual succeed() are NORMAL events at
        # the same tick: whichever was scheduled first fires first.
        env = Environment()
        order = []
        flag = env.event()

        def a(env):
            yield env.timeout(0.0)
            order.append("t0")

        def b(env):
            yield flag
            order.append("flag")

        def c(env):
            flag.succeed()
            return
            yield  # pragma: no cover

        env.process(a(env))
        env.process(b(env))
        env.process(c(env))
        env.run()
        # a's Timeout(0) is enqueued during a's bootstrap, before c's
        # bootstrap calls succeed() — so the timeout fires first.
        assert order == ["t0", "flag"]

    def test_succeed_before_run_orders_ahead_of_timeout_zero(self):
        # Mirror case: succeed() called before the processes boot, so the
        # flag's NORMAL event precedes the Timeout(0) in schedule order.
        env = Environment()
        order = []
        flag = env.event()

        def a(env):
            yield env.timeout(0.0)
            order.append("t0")

        def b(env):
            yield flag
            order.append("flag")

        env.process(a(env))
        env.process(b(env))
        flag.succeed()
        env.run()
        assert order == ["flag", "t0"]


class TestDeterminism:
    def test_identical_runs_produce_identical_traces(self):
        def build():
            env = Environment()
            log = []

            def worker(env, k):
                for i in range(3):
                    yield env.timeout(k * 1.5 + 0.5)
                    log.append((env.now, k, i))

            for k in range(4):
                env.process(worker(env, k))
            env.run()
            return log

        assert build() == build()
