"""Fixture tests for the reprolint framework and its six checkers.

Each fixture file under ``tests/reprolint_fixtures/`` annotates every
line that must be reported with ``# expect: RULE``.  The tests compare
the checker's actual findings against those annotations exactly — no
missing findings, no extras — then exercise the CLI, the suppression
comments, and the framework plumbing.
"""

from __future__ import annotations

import json
import re
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]
if str(REPO_ROOT) not in sys.path:
    sys.path.insert(0, str(REPO_ROOT))

from tools.reprolint.checkers import ALL_CHECKERS  # noqa: E402
from tools.reprolint.core import (  # noqa: E402
    Finding,
    LintRunner,
    is_suppressed,
    suppressed_rules_by_line,
)

FIXTURES = REPO_ROOT / "tests" / "reprolint_fixtures"
_EXPECT_RE = re.compile(r"#\s*expect:\s*([A-Z0-9_,\s]+)")


def expectations(path: Path, rule: str) -> set[int]:
    """Line numbers annotated ``# expect: <rule>`` in *path*."""
    out: set[int] = set()
    for lineno, text in enumerate(path.read_text().splitlines(), start=1):
        m = _EXPECT_RE.search(text)
        if m and rule in {r.strip() for r in m.group(1).split(",")}:
            out.add(lineno)
    return out


def run_rule(rule: str, path: Path) -> list[Finding]:
    checker = ALL_CHECKERS[rule](ignore_path_filters=True)
    result = LintRunner([checker], excludes=()).run([path])
    assert not result.parse_errors, result.parse_errors
    return result.findings


@pytest.mark.parametrize("rule, fixture", [
    ("DET001", "det001_fixture.py"),
    ("DET002", "det002_fixture.py"),
    ("DET003", "det003_fixture.py"),
    ("INV001", "inv001_fixture.py"),
    ("INV002", "inv002_fixture.py"),
    ("ISO001", "iso001_fixture.py"),
    ("SIM001", "sim001_fixture.py"),
    ("PERF001", "perf001_fixture.py"),
    ("PERF001", "perf001_obs_fixture.py"),
])
def test_fixture_findings_exact(rule: str, fixture: str) -> None:
    path = FIXTURES / fixture
    expected = expectations(path, rule)
    assert expected, f"fixture {fixture} has no # expect: {rule} lines"
    got = {f.line for f in run_rule(rule, path)}
    assert got == expected, (
        f"{rule} on {fixture}: expected lines {sorted(expected)}, "
        f"got {sorted(got)}")


def test_every_finding_carries_its_rule_id() -> None:
    for rule, fixture in [("DET001", "det001_fixture.py"),
                          ("INV001", "inv001_fixture.py"),
                          ("INV002", "inv002_fixture.py")]:
        for finding in run_rule(rule, FIXTURES / fixture):
            assert finding.rule == rule
            assert finding.message
            assert finding.path.endswith(fixture)


# ---------------------------------------------------------------------------
# the CLI
# ---------------------------------------------------------------------------

def run_cli(*args: str) -> subprocess.CompletedProcess[str]:
    return subprocess.run(
        [sys.executable, "-m", "tools.reprolint", *args],
        capture_output=True, text=True, cwd=REPO_ROOT)


def test_cli_nonzero_with_correct_rule_ids_on_fixtures() -> None:
    proc = run_cli("tests/reprolint_fixtures", "--no-path-filter",
                   "--no-default-excludes", "--format", "json")
    assert proc.returncode == 1, proc.stdout + proc.stderr
    doc = json.loads(proc.stdout)
    found = {(Path(f["path"]).name, f["line"], f["rule"])
             for f in doc["findings"]}
    for rule, fixture in [("DET001", "det001_fixture.py"),
                          ("DET002", "det002_fixture.py"),
                          ("DET003", "det003_fixture.py"),
                          ("INV001", "inv001_fixture.py"),
                          ("INV002", "inv002_fixture.py"),
                          ("ISO001", "iso001_fixture.py"),
                          ("SIM001", "sim001_fixture.py"),
                          ("PERF001", "perf001_fixture.py"),
                          ("PERF001", "perf001_obs_fixture.py")]:
        for line in expectations(FIXTURES / fixture, rule):
            assert (fixture, line, rule) in found, (
                f"CLI missed {rule} at {fixture}:{line}")


def test_cli_clean_on_real_tree() -> None:
    proc = run_cli("src", "tests")
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "0 finding(s)" in proc.stdout


def test_cli_select_and_list_rules() -> None:
    proc = run_cli("--list-rules")
    assert proc.returncode == 0
    for rule in ("DET001", "DET002", "INV001", "INV002", "SIM001",
                 "PERF001"):
        assert rule in proc.stdout
    proc = run_cli("tests/reprolint_fixtures", "--no-path-filter",
                   "--no-default-excludes", "--select", "PERF001",
                   "--format", "json")
    assert proc.returncode == 1
    rules = {f["rule"] for f in json.loads(proc.stdout)["findings"]}
    assert rules == {"PERF001"}
    assert run_cli("--select", "NOPE42", "src").returncode == 2


def test_cli_text_output_renders_locations() -> None:
    proc = run_cli("tests/reprolint_fixtures/det002_fixture.py",
                   "--no-path-filter", "--no-default-excludes")
    assert proc.returncode == 1
    assert re.search(r"det002_fixture\.py:\d+:\d+: DET002 ", proc.stdout)


# ---------------------------------------------------------------------------
# suppression comments
# ---------------------------------------------------------------------------

def test_suppression_same_line_and_next_line() -> None:
    source = (
        "x = 1  # reprolint: disable=DET001\n"
        "# reprolint: disable=INV001,SIM001 -- justified\n"
        "y = 2\n"
        "z = 3\n")
    supp = suppressed_rules_by_line(source)
    assert supp[1] == {"DET001"}
    assert supp[3] == {"INV001", "SIM001"}
    assert 4 not in supp

    def finding(rule: str, line: int) -> Finding:
        return Finding(rule=rule, path="f.py", line=line, col=1, message="m")

    assert is_suppressed(finding("DET001", 1), supp)
    assert not is_suppressed(finding("DET002", 1), supp)
    assert is_suppressed(finding("SIM001", 3), supp)
    assert not is_suppressed(finding("SIM001", 4), supp)


def test_suppression_all_keyword() -> None:
    supp = suppressed_rules_by_line("q = 9  # reprolint: disable=all\n")
    f = Finding(rule="PERF001", path="f.py", line=1, col=1, message="m")
    assert is_suppressed(f, supp)


def test_fixture_suppression_respected_by_runner() -> None:
    # det001_fixture.py ends with a suppressed set comprehension: the
    # runner must drop it even though the raw checker reports it.
    path = FIXTURES / "det001_fixture.py"
    suppressed_line = next(
        lineno + 1
        for lineno, text in enumerate(path.read_text().splitlines(), start=1)
        if "disable=DET001" in text)
    checker = ALL_CHECKERS["DET001"](ignore_path_filters=True)
    raw = {f.line for f in checker.check(
        path, __import__("ast").parse(path.read_text()), path.read_text())}
    assert suppressed_line in raw
    filtered = {f.line for f in LintRunner(
        [ALL_CHECKERS["DET001"](ignore_path_filters=True)],
        excludes=()).run([path]).findings}
    assert suppressed_line not in filtered


# ---------------------------------------------------------------------------
# framework plumbing
# ---------------------------------------------------------------------------

def test_path_filters_scope_rules(tmp_path: Path) -> None:
    # DET002 must skip realsock.py and anything outside src/repro
    hazard = "import time\nt = time.time()\n"
    exempt = tmp_path / "realsock.py"
    exempt.write_text(hazard)
    outside = tmp_path / "tooling.py"
    outside.write_text(hazard)
    inside = tmp_path / "repro" / "net"
    inside.mkdir(parents=True)
    simulated = inside / "network.py"
    simulated.write_text(hazard)
    checker = ALL_CHECKERS["DET002"]()
    result = LintRunner([checker], excludes=()).run([tmp_path])
    assert {Path(f.path).name for f in result.findings} == {"network.py"}


def test_parse_errors_fail_the_run(tmp_path: Path) -> None:
    bad = tmp_path / "broken.py"
    bad.write_text("def oops(:\n")
    result = LintRunner(
        [ALL_CHECKERS["DET001"](ignore_path_filters=True)],
        excludes=()).run([tmp_path])
    assert not result.ok
    assert result.parse_errors and "broken.py" in result.parse_errors[0]


def test_sarif_output_round_trips(tmp_path: Path) -> None:
    result = LintRunner(
        [ALL_CHECKERS["ISO001"](ignore_path_filters=True)],
        excludes=()).run([FIXTURES / "iso001_fixture.py"])
    doc = json.loads(result.render_sarif({"ISO001": "cross-site writes"}))
    assert doc["version"] == "2.1.0"
    run = doc["runs"][0]
    rules = {r["id"] for r in run["tool"]["driver"]["rules"]}
    assert "ISO001" in rules
    assert run["results"], "no SARIF results for a finding-laden fixture"
    for res in run["results"]:
        assert res["ruleId"] == "ISO001"
        loc = res["locations"][0]["physicalLocation"]
        assert loc["artifactLocation"]["uri"].endswith("iso001_fixture.py")
        assert loc["region"]["startLine"] > 0
    # the CLI writes the same document via --format sarif --output
    out = tmp_path / "lint.sarif"
    proc = run_cli("tests/reprolint_fixtures/iso001_fixture.py",
                   "--no-path-filter", "--no-default-excludes",
                   "--select", "ISO001", "--format", "sarif",
                   "--output", str(out))
    assert proc.returncode == 1  # findings still fail the run
    cli_doc = json.loads(out.read_text())
    assert {r["ruleId"] for r in cli_doc["runs"][0]["results"]} == {"ISO001"}


def test_json_output_round_trips() -> None:
    result = LintRunner(
        [ALL_CHECKERS["SIM001"](ignore_path_filters=True)],
        excludes=()).run([FIXTURES / "sim001_fixture.py"])
    doc = json.loads(result.render_json())
    assert doc["files_checked"] == 1
    assert {f["rule"] for f in doc["findings"]} == {"SIM001"}
