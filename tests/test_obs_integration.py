"""End-to-end observability: a real run through the instrumented stack.

Drives the full VDCE pipeline with an :class:`Observability` handle
attached and asserts the three tentpole properties together:

* the causal span tree (application -> schedule-round / task-execution
  -> message-delivery) reconstructs from parent ids;
* the metrics cross-check against the independently maintained
  ``network.stats`` / run bookkeeping;
* every export is byte-identical across two identical-seed runs (the
  determinism contract the exporters promise).
"""

from __future__ import annotations

import pytest

from repro.obs import OBS_OFF, Observability
from repro.obs.export import (
    chrome_trace_json,
    spans_to_jsonl,
    to_prometheus_text,
)
from repro.obs.report import (
    latency_percentiles,
    render_report,
    sample_queue_depths,
    schedule_latencies,
    utilization,
)
from repro.workloads import quiet_testbed, random_layered_graph


def observed_run(seed: int = 11):
    """One instrumented queue-aware layered run (tasks spread cross-host)."""
    obs = Observability()
    vdce = quiet_testbed(seed=seed, obs=obs)
    vdce.start()
    graph = random_layered_graph(vdce.registry, layers=5, width=4, seed=3)
    process, run = vdce.submit(graph, "syracuse", queue_aware=True)
    deadline = vdce.now + 600.0
    while not process.triggered and vdce.now < deadline:
        vdce.run(until=min(vdce.now + 5.0, deadline))
        sample_queue_depths(obs, vdce)
    assert run.status == "completed"
    return vdce, obs, run


@pytest.fixture(scope="module")
def observed():
    return observed_run()


class TestCausalTree:
    def test_single_application_root(self, observed):
        _vdce, obs, run = observed
        roots = obs.spans.children(None)
        assert len(roots) == 1
        (app,) = roots
        assert app.category == "application"
        assert app.attrs["execution_id"] == run.execution_id
        assert app.finished

    def test_schedule_round_and_tasks_parent_to_app(self, observed):
        _vdce, obs, run = observed
        (app,) = obs.spans.children(None)
        rounds = obs.spans.by_category("schedule-round")
        assert len(rounds) == 1
        assert rounds[0].parent_id == app.span_id
        tasks = obs.spans.by_category("task-execution")
        assert {t.name for t in tasks} == set(run.completions)
        assert all(t.parent_id == app.span_id for t in tasks)

    def test_message_deliveries_parent_to_their_task(self, observed):
        _vdce, obs, _run = observed
        deliveries = obs.spans.by_category("message-delivery")
        assert deliveries, "queue-aware layered run must move data"
        task_ids = {t.span_id
                    for t in obs.spans.by_category("task-execution")}
        for d in deliveries:
            assert d.parent_id in task_ids
            assert d.finished and d.duration_s() > 0

    def test_spans_start_after_their_parents(self, observed):
        # parentage is causal, not containment: a message-delivery span
        # begins after its producer task ends (outputs ship on task
        # completion), so only start-ordering is invariant
        _vdce, obs, _run = observed
        for span in obs.spans.spans:
            if span.parent_id is None:
                continue
            assert obs.spans.get(span.parent_id).start_s <= span.start_s

    def test_no_spans_left_open(self, observed):
        _vdce, obs, _run = observed
        assert obs.spans.open_spans() == []


class TestMetricsCrossCheck:
    def test_network_counters_match_traffic_stats(self, observed):
        vdce, obs, _run = observed
        stats = vdce.world.network.stats
        msgs = obs.metrics.get("net_messages_total")
        assert msgs.total() == stats.messages
        assert obs.metrics.get("net_bytes_total").total() == stats.bytes
        for kind, n in stats.by_kind.items():
            assert msgs.value(kind=kind) == n

    def test_delivery_delay_histogram_counts_every_send(self, observed):
        vdce, obs, _run = observed
        stats = vdce.world.network.stats
        hist = obs.metrics.get("net_delivery_delay_seconds")
        delivered = stats.messages - stats.dropped
        assert sum(s.count for _k, s in hist.samples()) == delivered

    def test_task_counters_match_completions(self, observed):
        _vdce, obs, run = observed
        assert obs.metrics.get("ac_tasks_executed_total").total() == \
            len(run.completions)
        assert obs.metrics.get("vdce_apps_completed_total").total() == 1
        assert obs.metrics.get("sched_tasks_placed_total").total() == \
            len(run.completions)

    def test_report_sections_consistent_with_spans(self, observed):
        vdce, obs, _run = observed
        util = utilization(obs.spans, clock_end=vdce.now)
        actors = {t.actor for t in obs.spans.by_category("task-execution")}
        assert set(util) == actors
        assert all(0.0 <= u <= 1.0 for u in util.values())
        lats = schedule_latencies(obs.spans)
        pcts = latency_percentiles(lats)
        assert pcts[50.0] <= pcts[90.0] <= pcts[99.0]
        text = render_report(obs, clock_end=vdce.now)
        for section in ("utilization", "schedule latency", "queue depths",
                        "span inventory", "metric inventory"):
            assert section in text


class TestDeterminism:
    def test_exports_byte_identical_across_runs(self, observed):
        vdce_a, obs_a, _ = observed
        vdce_b, obs_b, _ = observed_run()
        assert chrome_trace_json(obs_a.spans.spans, clock_end=vdce_a.now) \
            == chrome_trace_json(obs_b.spans.spans, clock_end=vdce_b.now)
        assert to_prometheus_text(obs_a.metrics) \
            == to_prometheus_text(obs_b.metrics)
        assert spans_to_jsonl(obs_a.spans.spans) \
            == spans_to_jsonl(obs_b.spans.spans)
        assert render_report(obs_a, clock_end=vdce_a.now) \
            == render_report(obs_b, clock_end=vdce_b.now)

    def test_different_seed_changes_the_trace(self, observed):
        vdce_a, obs_a, _ = observed
        vdce_b, obs_b, _ = observed_run(seed=12)
        assert chrome_trace_json(obs_a.spans.spans, clock_end=vdce_a.now) \
            != chrome_trace_json(obs_b.spans.spans, clock_end=vdce_b.now)


class TestDisabledObservability:
    def test_disabled_handle_records_nothing(self):
        obs = Observability(enabled=False)
        vdce = quiet_testbed(seed=11, obs=obs)
        vdce.start()
        graph = random_layered_graph(vdce.registry, layers=3, width=2,
                                     seed=3)
        run = vdce.run_application(graph, "syracuse", max_sim_time_s=600,
                                   queue_aware=True)
        assert run.status == "completed"
        assert len(obs.spans) == 0
        # instruments exist (pre-registered) but hold no samples
        assert all(not m.samples() for m in obs.metrics.collect())

    def test_default_vdce_uses_shared_inert_handle(self):
        vdce = quiet_testbed(seed=11)
        assert vdce.obs is OBS_OFF
        assert not OBS_OFF.enabled

    def test_run_unperturbed_by_observation(self):
        # same seed, obs on vs off: identical makespans (no heisenbugs)
        _vdce, _obs, run_on = observed_run()
        vdce = quiet_testbed(seed=11)
        vdce.start()
        graph = random_layered_graph(vdce.registry, layers=5, width=4,
                                     seed=3)
        run_off = vdce.run_application(graph, "syracuse",
                                       max_sim_time_s=600,
                                       queue_aware=True)
        assert run_off.status == "completed"
        assert run_off.makespan == pytest.approx(run_on.makespan)
