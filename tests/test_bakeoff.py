"""The bake-off harness: determinism, scoring invariants, CI gate.

The contract CI relies on is byte-identity: one :class:`BakeoffConfig`
-> one JSON byte stream, run after run.  The scoring invariants are the
reasons the numbers mean anything: gaps non-negative under the common
predicted objective, the optimal row at gap zero, utilization and
imbalance in their physical ranges.
"""

from __future__ import annotations

import json

import pytest

from repro.bakeoff import (
    DEFAULT_WORKLOADS,
    BakeoffConfig,
    compare_to_baseline,
    check_json_against_baseline,
    host_busy_seconds,
    resolve_schedulers,
    resolve_workloads,
    run_bakeoff,
)
from repro.obs import Observability
from repro.scheduling import available_schedulers
from repro.scheduling.makespan import evaluate_schedule
from repro.util.errors import ConfigurationError


def small_config(**overrides):
    defaults = dict(
        schedulers=("heft", "min-load", "optimal", "random"),
        workloads=("forkjoin-small",), seed=0)
    defaults.update(overrides)
    return BakeoffConfig(**defaults)


@pytest.fixture(scope="module")
def small_result(registry):
    return run_bakeoff(small_config(), registry=registry)


class TestDeterminism:
    def test_same_seed_byte_identical_json(self, registry):
        """Satellite 3's regression: the whole pipeline — federation
        build, load injection, every scheduler's rng draws — replays to
        the same bytes for the same seed."""
        config = small_config()
        first = run_bakeoff(config, registry=registry).to_json()
        second = run_bakeoff(config, registry=registry).to_json()
        assert first == second
        assert first.endswith("\n")

    def test_different_seed_changes_payload(self, registry):
        a = run_bakeoff(small_config(seed=0), registry=registry).to_json()
        b = run_bakeoff(small_config(seed=1), registry=registry).to_json()
        assert a != b

    def test_incremental_off_byte_identical_json(self, registry):
        """PR 7's regression probe: delta-aware host selection must be
        invisible in the serialized result — same schedulers, same
        workloads, same bytes — with only the hot-path cost differing."""
        config = small_config(schedulers=("site", "heft", "optimal"))
        on = run_bakeoff(config, registry=registry).to_json()
        off = run_bakeoff(config, registry=registry,
                          incremental=False).to_json()
        assert on == off

    def test_dropping_a_scheduler_leaves_others_untouched(self, registry):
        """Per-(scheduler, workload) rng spawning: removing a contestant
        never perturbs another's draws — the random rows survive."""
        full = run_bakeoff(small_config(), registry=registry)
        solo = run_bakeoff(
            small_config(schedulers=("random",)), registry=registry)
        assert (full.score_for("random", "forkjoin-small")
                == solo.score_for("random", "forkjoin-small"))


class TestScoringInvariants:
    def test_optimal_row_has_zero_gap(self, small_result):
        score = small_result.score_for("optimal", "forkjoin-small")
        assert score.optimality_gap == pytest.approx(0.0, abs=1e-12)

    def test_gaps_non_negative(self, small_result):
        """The common predicted objective makes the reference a true
        lower bound for every contestant."""
        for score in small_result.scores:
            assert score.optimality_gap is not None
            assert score.optimality_gap >= -1e-9, \
                f"{score.scheduler}: negative gap {score.optimality_gap}"

    def test_physical_ranges(self, small_result):
        for score in small_result.scores:
            assert score.predicted_makespan_s > 0
            assert score.simulated_makespan_s > 0
            assert 0.0 < score.utilization <= 1.0 + 1e-9
            assert score.imbalance >= 1.0 - 1e-9
            assert 0.0 <= score.remote_fraction <= 1.0
            assert score.total_transfer_s >= 0.0

    def test_prediction_vs_simulation_diverge(self, small_result):
        """Loads drift after the last monitoring report, so the
        repository view never equals ground truth exactly."""
        for score in small_result.scores:
            assert (score.predicted_makespan_s
                    != score.simulated_makespan_s)

    def test_optimal_stats_recorded(self, small_result):
        stats = small_result.optimal["forkjoin-small"]
        assert stats.proven_optimal
        assert stats.nodes_explored > 0
        assert stats.makespan_s > 0

    def test_score_for_unknown_cell(self, small_result):
        with pytest.raises(KeyError):
            small_result.score_for("heft", "no-such-workload")

    def test_host_busy_accounts_all_hosts(self, registry, small_result):
        # indirectly validated by utilization; direct check of the helper
        from repro.testing import build_federation
        from repro.scheduling import SchedulerContext, create_scheduler
        from repro.workloads import fork_join_graph
        fed = build_federation(registry=registry)
        graph = fork_join_graph(registry, width=2, size=256)
        ctx = SchedulerContext(repositories=fed.repositories,
                               topology=fed.topology,
                               local_site="syracuse")
        table = create_scheduler("heft", ctx).schedule(graph)
        timeline = evaluate_schedule(graph, table, fed.topology)
        busy = host_busy_seconds(table, timeline)
        assert set(busy) == table.hosts()
        assert sum(busy.values()) == pytest.approx(
            sum(timeline.finish[n] - timeline.start[n]
                for n in table.entries))


class TestRendering:
    def test_render_has_one_block_per_workload(self, small_result):
        text = small_result.render()
        assert "forkjoin-small" in text
        assert "optimal" in text and "heft" in text
        assert "nodes explored" in text  # the reference's provenance line

    def test_large_workload_skips_reference(self, registry):
        result = run_bakeoff(
            small_config(schedulers=("heft",), optimal_task_limit=3),
            registry=registry)
        assert result.optimal == {}
        assert "no optimal reference" in result.render()
        assert result.score_for("heft",
                                "forkjoin-small").optimality_gap is None


class TestResolvers:
    def test_all_and_default_specs(self):
        assert resolve_schedulers("all") == tuple(available_schedulers())
        assert resolve_workloads("default") == tuple(DEFAULT_WORKLOADS)

    def test_comma_lists(self):
        assert resolve_schedulers("heft, random") == ("heft", "random")
        assert resolve_workloads("layered-a") == ("layered-a",)

    def test_empty_and_unknown_rejected(self):
        with pytest.raises(ConfigurationError):
            resolve_schedulers(",")
        with pytest.raises(ConfigurationError):
            resolve_workloads(",")
        with pytest.raises(ConfigurationError, match="unknown workload"):
            resolve_workloads("galaxy-sim")

    def test_unknown_workload_at_run_time(self, registry):
        with pytest.raises(ConfigurationError, match="unknown workload"):
            run_bakeoff(small_config(workloads=("galaxy-sim",)),
                        registry=registry)


class TestBaselineGate:
    def test_self_comparison_passes(self, small_result):
        payload = json.loads(small_result.to_json())
        assert compare_to_baseline(payload, payload) == []

    def test_gap_regression_detected(self, small_result):
        payload = json.loads(small_result.to_json())
        current = json.loads(small_result.to_json())
        for row in current["rows"]:
            if row["scheduler"] == "heft":
                row["optimality_gap"] += 0.25
        failures = compare_to_baseline(current, payload, tolerance=0.10)
        assert len(failures) == 1
        assert "heft" in failures[0] and "regressed" in failures[0]

    def test_within_tolerance_passes(self, small_result):
        payload = json.loads(small_result.to_json())
        current = json.loads(small_result.to_json())
        for row in current["rows"]:
            if row["scheduler"] == "heft":
                row["optimality_gap"] += 0.05
        assert compare_to_baseline(current, payload, tolerance=0.10) == []

    def test_missing_cell_detected(self, small_result):
        payload = json.loads(small_result.to_json())
        current = json.loads(small_result.to_json())
        current["rows"] = [r for r in current["rows"]
                           if r["scheduler"] != "min-load"]
        failures = compare_to_baseline(current, payload)
        assert any("missing" in f for f in failures)

    def test_lost_gap_detected(self, small_result):
        payload = json.loads(small_result.to_json())
        current = json.loads(small_result.to_json())
        for row in current["rows"]:
            row["optimality_gap"] = None
        failures = compare_to_baseline(current, payload)
        assert any("computed none" in f for f in failures)

    def test_random_exempt_from_gap_gate(self, small_result):
        payload = json.loads(small_result.to_json())
        current = json.loads(small_result.to_json())
        for row in current["rows"]:
            if row["scheduler"] == "random":
                row["optimality_gap"] += 5.0
        assert compare_to_baseline(current, payload) == []

    def test_check_json_reads_baseline_file(self, small_result, tmp_path):
        baseline = tmp_path / "baseline.json"
        baseline.write_text(small_result.to_json())
        assert check_json_against_baseline(small_result.to_json(),
                                           str(baseline)) == []

    def test_committed_baseline_matches_current_code(self, registry):
        """The committed BENCH_bakeoff.json is reproducible: the same
        config re-run today shows no gap regressions against it."""
        import pathlib
        baseline_path = pathlib.Path(__file__).parent.parent \
            / "BENCH_bakeoff.json"
        baseline = json.loads(baseline_path.read_text())
        config = BakeoffConfig(
            schedulers=tuple(baseline["config"]["schedulers"]),
            workloads=tuple(baseline["config"]["workloads"]),
            seed=baseline["config"]["seed"])
        result = run_bakeoff(config, registry=registry)
        assert compare_to_baseline(json.loads(result.to_json()),
                                   baseline) == []


class TestObservability:
    def test_schedule_round_spans_and_counter(self, registry):
        obs = Observability()
        config = small_config()
        run_bakeoff(config, registry=registry, obs=obs)
        cells = len(config.schedulers) * len(config.workloads)
        spans = obs.spans.finished("schedule-round")
        assert len(spans) == cells
        assert obs.metrics.counter(
            "bakeoff_rounds_total").total() == cells
        # spans carry the (scheduler, workload) identity and never overlap
        names = {s.name for s in spans}
        assert "bakeoff:heft:forkjoin-small" in names
