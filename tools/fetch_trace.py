#!/usr/bin/env python
"""Fetch (or deterministically regenerate) the checked-in trace sample.

The repository ships a ~1000-job sample at
``data/traces/alibaba_sample.trace`` in the Uberun/Trinity tuple format
(``repro.traffic.trace``).  This tool produces it two ways:

* **Online** — ``--swf URL_OR_PATH`` converts a Standard Workload
  Format log (the Parallel Workloads Archive, e.g. the LANL CM-5 or
  KIT ForHLR II traces) into the tuple format, keeping the first
  ``--count`` runnable jobs and rebasing submit times to zero.

* **Offline (default)** — regenerates the checked-in sample
  byte-for-byte from the seeded synthetic Alibaba-shaped generator
  (:func:`repro.traffic.trace.synthetic_alibaba_trace`).  CI and the
  round-trip tests rely on this mode: no network, no new bytes.

Usage::

    python tools/fetch_trace.py                       # regenerate sample
    python tools/fetch_trace.py --out /tmp/t.trace --count 500 --seed 7
    python tools/fetch_trace.py --swf https://.../l_lanl_cm5.swf.gz
"""

from __future__ import annotations

import argparse
import gzip
import io
import sys
import urllib.request
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np  # noqa: E402

from repro.traffic.trace import (  # noqa: E402
    JobRequest,
    dump_trace,
    synthetic_alibaba_trace,
    tenant_name,
    user_name,
)

DEFAULT_OUT = REPO_ROOT / "data" / "traces" / "alibaba_sample.trace"
DEFAULT_COUNT = 1000
DEFAULT_SEED = 20260808
DEFAULT_TENANTS = 8
DEFAULT_USERS = 200


def regenerate(count: int, seed: int, users: int, tenants: int):
    """The deterministic sample: same (count, seed) -> same bytes."""
    rng = np.random.default_rng(seed)
    return synthetic_alibaba_trace(rng, count, users=users,
                                   tenants=tenants)


def read_swf(source: str) -> io.TextIOBase:
    """Open an SWF log from a URL or local path, gunzipping if needed."""
    if source.startswith(("http://", "https://")):
        raw = urllib.request.urlopen(source, timeout=60).read()
    else:
        raw = Path(source).read_bytes()
    if raw[:2] == b"\x1f\x8b":
        raw = gzip.decompress(raw)
    return io.StringIO(raw.decode("utf-8", errors="replace"))


def convert_swf(fh: io.TextIOBase, count: int, tenants: int):
    """SWF -> JobRequest stream: first *count* runnable jobs, rebased.

    SWF columns (1-based): 1 job number, 2 submit time, 4 run time,
    5 allocated processors.  Jobs with unknown (-1) or non-positive
    run time / processor counts are skipped — they cannot be replayed.
    """
    base: float | None = None
    emitted = 0
    for line in fh:
        text = line.strip()
        if not text or text.startswith(";"):
            continue
        parts = text.split()
        if len(parts) < 5:
            continue
        try:
            jobnum = int(parts[0])
            submit = float(parts[1])
            run = float(parts[3])
            procs = int(parts[4])
        except ValueError:
            continue
        if run <= 0 or procs < 1 or submit < 0:
            continue
        if base is None:
            base = submit
        user = user_name(jobnum % DEFAULT_USERS)
        yield JobRequest(
            job=f"j{jobnum:06d}", nproc=procs,
            submit_time_s=submit - base, duration_s=run, user=user,
            tenant=tenant_name(jobnum % tenants))
        emitted += 1
        if emitted >= count:
            return


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT,
                        help=f"output path (default {DEFAULT_OUT})")
    parser.add_argument("--count", type=int, default=DEFAULT_COUNT,
                        help="number of jobs to emit")
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED,
                        help="RNG seed for the synthetic mode")
    parser.add_argument("--users", type=int, default=DEFAULT_USERS)
    parser.add_argument("--tenants", type=int, default=DEFAULT_TENANTS)
    parser.add_argument("--swf", metavar="URL_OR_PATH", default=None,
                        help="convert this SWF log instead of "
                        "regenerating the synthetic sample")
    args = parser.parse_args(argv)

    if args.swf is not None:
        try:
            requests = list(convert_swf(read_swf(args.swf), args.count,
                                        args.tenants))
        except OSError as exc:
            print(f"fetch failed ({exc}); falling back to the "
                  f"deterministic synthetic sample", file=sys.stderr)
            requests = regenerate(args.count, args.seed, args.users,
                                  args.tenants)
    else:
        requests = regenerate(args.count, args.seed, args.users,
                              args.tenants)

    args.out.parent.mkdir(parents=True, exist_ok=True)
    written = dump_trace(requests, args.out)
    print(f"wrote {written} jobs to {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
