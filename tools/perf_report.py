#!/usr/bin/env python
"""Wall-clock performance report for the reproduction's hot paths.

Runs the substrate micro-benchmarks (event kernel, store handoff,
prediction sweep, scheduler walk), two end-to-end workloads (the linear
solver and a layered random graph), and an observability-overhead pair
(the solver with a disabled / enabled ``repro.obs`` handle), then writes
``BENCH_perf.json`` with ops/s, wall seconds, and an environment
fingerprint.  ``--check`` also enforces the same-run obs-overhead gate:
a disabled ``Observability`` must be near-free.

Usage::

    PYTHONPATH=src python tools/perf_report.py                 # refresh BENCH_perf.json
    PYTHONPATH=src python tools/perf_report.py --check BENCH_perf.json
    PYTHONPATH=src python tools/perf_report.py --quick -o /tmp/p.json

``--check`` compares the fresh run against a committed baseline and
exits non-zero when any benchmark's throughput regressed by more than
``--tolerance`` (default 30%).  Throughput *improvements* never fail the
check; refresh the baseline (``--output BENCH_perf.json``) when they are
real so the gate tightens over time.

See docs/performance.md for how these numbers relate to the kernel and
scheduler fast paths.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import subprocess
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.net import Network, Topology  # noqa: E402
from repro.obs import Observability  # noqa: E402
from repro.prediction import PerformancePredictor, register_tasks  # noqa: E402
from repro.repository import ResourcePerformanceDB, TaskPerformanceDB  # noqa: E402
from repro.resources import HostSpec  # noqa: E402
from repro.scheduling import HostSelector, SiteScheduler  # noqa: E402
from repro.scheduling.levels import compute_levels  # noqa: E402
from repro.simcore import Environment, Store  # noqa: E402
from repro.tasklib import standard_registry  # noqa: E402
from repro.workloads import (  # noqa: E402
    linear_solver_graph,
    nynet_testbed,
    quiet_testbed,
    random_layered_graph,
)

#: Default regression tolerance: fail when throughput drops below
#: ``baseline * (1 - TOLERANCE)``.  Generous because CI hardware is
#: noisy; real regressions from the hot paths are far larger.
TOLERANCE = 0.30


# ---------------------------------------------------------------------------
# benchmark bodies: each returns the number of "operations" performed
# ---------------------------------------------------------------------------

def bench_engine_ping_pong(scale: int) -> int:
    """The DES kernel inner loop: timeout-yielding processes."""
    env = Environment()
    n = 200 * scale

    def ponger(env, n):
        for _ in range(n):
            yield env.timeout(1.0)

    for _ in range(10):
        env.process(ponger(env, n))
    env.run()
    assert env.now == float(n)
    return 10 * n  # timeouts processed


def bench_engine_store_handoff(scale: int) -> int:
    """Producer/consumer mailbox traffic (daemon message pattern)."""
    env = Environment()
    store = Store(env)
    n = 500 * scale
    received = []

    def producer(env):
        for i in range(n):
            store.put(i)
            yield env.timeout(0.001)

    def consumer(env):
        for _ in range(n):
            item = yield store.get()
            received.append(item)

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert len(received) == n
    return n


def _prediction_fixture():
    registry = standard_registry()
    tp = TaskPerformanceDB()
    register_tasks(tp, registry.all_tasks())
    rp = ResourcePerformanceDB()
    for i in range(16):
        rp.register_host("s1", HostSpec(name=f"h{i}"))
        rp.update_dynamic(f"s1/h{i}", cpu_load=0.3 * i,
                          available_memory_mb=64, time=1.0)
    return tp, rp.all_records(), registry.resolve("lu-decomposition")


def bench_predict_sweep(scale: int) -> int:
    """Cold Predict(task, R) sweeps: a fresh predictor per round, so the
    memoization cache never helps — measures the evaluation itself."""
    tp, records, definition = _prediction_fixture()
    rounds = 50 * scale
    for _ in range(rounds):
        predictor = PerformancePredictor(tp)
        best = predictor.best_host(definition, 200, records)
    assert best.host == "s1/h0"
    return rounds * len(records)


def bench_scheduler_walk(scale: int) -> int:
    """Figure 4 + Figure 5: host selection at every site plus the site
    scheduler's ready-set walk, repeated with one predictor (warm)."""
    vdce = nynet_testbed(seed=1, hosts_per_site=4, with_loads=True,
                         trace=False)
    vdce.start()
    vdce.warm_up(40.0)
    graph = linear_solver_graph(vdce.registry, n=200)
    selectors = {site: HostSelector(repo)
                 for site, repo in vdce.repositories.items()}
    rounds = 10 * scale
    for _ in range(rounds):
        scheduler = SiteScheduler("syracuse", vdce.topology, k_remote_sites=1)
        table, _report = scheduler.schedule_with_selectors(graph, selectors)
    assert len(table) == len(graph)
    return rounds * len(graph)  # tasks placed


#: per-benchmark memoized rescheduling fixtures: the testbed build and
#: warm-up cost ~10x the measured rounds, so it is hoisted out of the
#: timed body — best-of-N then measures the steady rescheduling state
#: (the trace-scale regime the incremental layer exists for).
_RESCHED_CACHE: dict[str, tuple] = {}


def _resched_fixture(key: str = ""):
    """Shared fixture for the full-vs-incremental rescheduling pair."""
    fixture = _RESCHED_CACHE.get(key)
    if fixture is None:
        vdce = nynet_testbed(seed=1, hosts_per_site=16, with_loads=True,
                             trace=False)
        vdce.start()
        vdce.warm_up(40.0)
        # trace-scale: a 200-task DAG, the regime the incremental layer
        # exists for (the 8-task solver would measure walk overhead)
        graph = random_layered_graph(vdce.registry, layers=10, width=20,
                                     seed=3)
        fixture = _RESCHED_CACHE[key] = (vdce, graph, {"round": 0})
    return fixture


def _perturb_one_host(vdce, r: int) -> None:
    """One monitoring update between rounds: the realistic delta size."""
    rp = vdce.repositories["syracuse"].resource_performance
    recs = rp.hosts_at("syracuse")
    rec = recs[r % len(recs)]
    rp.update_dynamic(rec.address, cpu_load=0.1 + 0.01 * (r % 7),
                      available_memory_mb=rec.available_memory_mb,
                      time=50.0 + r)


def bench_scheduler_full_resched(scale: int) -> int:
    """Rescheduling rounds with the full re-walk oracle: every
    (task, host) pair re-scored from scratch each round, plus the walk's
    per-round validation/levels/report bookkeeping — the pre-incremental
    cost model (one monitoring update lands between rounds)."""
    vdce, graph, state = _resched_fixture("full")
    selectors = {site: HostSelector(repo, incremental=False)
                 for site, repo in vdce.repositories.items()}
    rounds = 25 * scale
    for _ in range(rounds):
        state["round"] += 1
        _perturb_one_host(vdce, state["round"])
        scheduler = SiteScheduler("syracuse", vdce.topology,
                                  k_remote_sites=1)
        table, _report = scheduler.schedule_with_selectors(graph, selectors)
    assert len(table) == len(graph)
    return rounds * len(graph)


def bench_scheduler_incremental(scale: int) -> int:
    """The same rescheduling rounds with delta-aware selection: only the
    one dirtied host is re-scored per round (journal consumption), and
    the walk reuses the graph's derived structure."""
    vdce, graph, state = _resched_fixture("incremental")
    selectors = state.setdefault("selectors", {
        site: HostSelector(repo)
        for site, repo in vdce.repositories.items()})
    scheduler = SiteScheduler("syracuse", vdce.topology, k_remote_sites=1,
                              diagnostics=False)
    graph.validate()
    levels = compute_levels(graph)
    order = graph.topological_order()
    rounds = 25 * scale
    for _ in range(rounds):
        state["round"] += 1
        _perturb_one_host(vdce, state["round"])
        table, _report = scheduler.schedule_with_selectors(
            graph, selectors, levels=levels, order=order, revalidate=False)
    assert len(table) == len(graph)
    return rounds * len(graph)


def _bench_fanout(scale: int, batching: bool) -> int:
    """1000-way same-tick fan-outs through Network.send_batch."""
    n_dsts = 1000
    env = Environment()
    topo = Topology()
    topo.add_site("s1")
    net = Network(env, topo, batching=batching)
    src = "s1/h0"
    net.register(src)
    dsts = [f"s1/h{i + 1}/svc" for i in range(n_dsts)]
    for dst in dsts:
        net.register(dst)
    rounds = 2 * scale
    for r in range(rounds):
        net.send_batch(src, dsts, "fanout", payload=r, size_bytes=64.0)
        env.run()
    assert net.stats.messages == rounds * n_dsts
    assert net.stats.dropped == 0
    return rounds * n_dsts


def bench_event_fanout_unbatched(scale: int) -> int:
    """The degraded path: one delivery process per message."""
    return _bench_fanout(scale, batching=False)


def bench_event_batch_fanout(scale: int) -> int:
    """The coalesced path: one heap entry per same-delay run."""
    return _bench_fanout(scale, batching=True)


def bench_e2e_linear_solver(scale: int) -> int:
    """End-to-end: submit, schedule, execute a linear solver app."""
    ops = 0
    for seed in range(scale):
        vdce = quiet_testbed(seed=63 + seed, trace=False)
        vdce.start()
        graph = linear_solver_graph(vdce.registry, n=40)
        run = vdce.run_application(graph, "syracuse", max_sim_time_s=600)
        assert run.status == "completed"
        ops += len(run.completions)
    return ops


def bench_e2e_layered_graph(scale: int) -> int:
    """End-to-end: a wide layered random DAG through the full pipeline."""
    ops = 0
    for seed in range(scale):
        vdce = quiet_testbed(seed=7 + seed, trace=False)
        vdce.start()
        graph = random_layered_graph(vdce.registry, layers=5, width=4,
                                     seed=3 + seed)
        run = vdce.run_application(graph, "syracuse", max_sim_time_s=600)
        assert run.status == "completed"
        ops += len(run.completions)
    return ops


def bench_engine_ping_pong_hb_off(scale: int) -> int:
    """The kernel loop after a sanitizer attach/detach cycle.

    Attaches a real :class:`repro.analysis.AnalysisSession` and detaches
    it again before the timed loop, then asserts the environment is back
    on the plain dispatch path.  Both this and ``engine_ping_pong`` run
    the identical guarded loop, so the same-run ratio pins the off-mode
    cost of the happens-before hooks to zero within measurement
    resolution — and trips the 2% floor immediately if a future change
    leaves ``env._hb`` (or the layer-hook global) set after detach.
    """
    from repro.analysis import AnalysisSession
    from repro.analysis import hooks as hb_hooks
    env = Environment()
    with AnalysisSession(env):
        pass  # attach/detach round trip — must leave no residue
    assert env._hb is None and hb_hooks.HB is None
    n = 200 * scale

    def ponger(env, n):
        for _ in range(n):
            yield env.timeout(1.0)

    for _ in range(10):
        env.process(ponger(env, n))
    env.run()
    assert env.now == float(n)
    return 10 * n


def bench_e2e_hb_enabled(scale: int) -> int:
    """The solver e2e with the happens-before sanitizer attached.

    Informational: shows what ``repro analyze`` pays for full vector-
    clock propagation and cell tracking (the off mode is gated, the on
    mode is merely reported).
    """
    from repro.analysis import AnalysisSession
    ops = 0
    for seed in range(scale):
        vdce = quiet_testbed(seed=63 + seed, trace=False)
        vdce.start()
        with AnalysisSession(vdce.env, sites=vdce.world.sites) as session:
            session.track_vdce(vdce)
            graph = linear_solver_graph(vdce.registry, n=40)
            run = vdce.run_application(graph, "syracuse",
                                       max_sim_time_s=600)
            assert run.status == "completed"
            assert not session.recorder.unsuppressed_races()
        ops += len(run.completions)
    return ops


def bench_e2e_obs_disabled(scale: int) -> int:
    """bench_e2e_linear_solver with an attached-but-disabled obs handle.

    Mirrors ``e2e_linear_solver`` exactly apart from the explicit
    ``Observability(enabled=False)``, so the ratio of the two measures
    what a wired-but-off observability layer costs on the hot paths
    (the guarded-call contract says: one attribute load per site).
    """
    ops = 0
    for seed in range(scale):
        vdce = quiet_testbed(seed=63 + seed, trace=False,
                             obs=Observability(enabled=False))
        vdce.start()
        graph = linear_solver_graph(vdce.registry, n=40)
        run = vdce.run_application(graph, "syracuse", max_sim_time_s=600)
        assert run.status == "completed"
        ops += len(run.completions)
    return ops


def bench_e2e_obs_enabled(scale: int) -> int:
    """Same workload with full metric/span recording switched on."""
    ops = 0
    for seed in range(scale):
        obs = Observability()
        vdce = quiet_testbed(seed=63 + seed, trace=False, obs=obs)
        vdce.start()
        graph = linear_solver_graph(vdce.registry, n=40)
        run = vdce.run_application(graph, "syracuse", max_sim_time_s=600)
        assert run.status == "completed"
        assert len(obs.spans) > 0 and obs.metrics.collect()
        ops += len(run.completions)
    return ops


def bench_trace_replay_arrivals(scale: int) -> int:
    """The traffic front door end-to-end: open-loop arrivals streamed
    lazily through admission, DRF dispatch, and the capacity backend.
    Ops are arrivals fully accounted (admitted or rejected, dispatched
    and drained), so the number is the sustainable replay rate."""
    from repro.traffic import ReplayConfig, run_replay
    n = 1000 * scale
    config = ReplayConfig(seed=5, arrivals=n, users=500, tenants=10,
                          rate_per_s=80.0)
    report = run_replay(config)
    totals = report.totals()
    assert totals["arrivals"] == n
    assert totals["dispatched"] == totals["completed"]
    return n


def bench_admission_throughput(scale: int) -> int:
    """The admission gate alone: quota + feasibility + token-bucket
    decisions per second, no dispatch behind it."""
    from repro.simcore import Environment as _Env
    from repro.traffic import (
        AdmissionController,
        DRFAllocator,
        JobRequest,
        make_tenants,
        tenant_name,
    )
    tenants = make_tenants(8, rate_per_s=0.0)
    allocator = DRFAllocator(capacity_procs=1e9, capacity_memory_mb=1e12,
                             tenants=tenants)
    env = _Env()
    controller = AdmissionController(
        env, tenants, allocator,
        demand_fn=lambda req: (float(req.nproc), 256.0 * req.nproc),
        on_admit=lambda tenant: None)
    n = 2000 * scale
    for i in range(n):
        req = JobRequest(job=f"j{i}", nproc=1 + i % 4,
                         submit_time_s=float(i), duration_s=1.0,
                         user=f"u{i % 100}", tenant=tenant_name(i % 8))
        controller.submit(req)
    assert sum(s.admitted for s in controller.stats.values()) == n
    return n


#: name -> (callable, scale, repeats).  Wall time is the best (minimum)
#: of the repeats, so scheduler warm-up and allocator noise do not count.
BENCHMARKS = {
    "engine_ping_pong": (bench_engine_ping_pong, 100, 5),
    "engine_store_handoff": (bench_engine_store_handoff, 100, 5),
    "predict_sweep": (bench_predict_sweep, 30, 5),
    "scheduler_walk": (bench_scheduler_walk, 3, 3),
    "scheduler_full_resched": (bench_scheduler_full_resched, 2, 3),
    "scheduler_incremental": (bench_scheduler_incremental, 2, 3),
    "event_fanout_unbatched": (bench_event_fanout_unbatched, 5, 3),
    "event_batch_fanout": (bench_event_batch_fanout, 5, 3),
    "e2e_linear_solver": (bench_e2e_linear_solver, 10, 3),
    "e2e_layered_graph": (bench_e2e_layered_graph, 10, 3),
    "e2e_obs_disabled": (bench_e2e_obs_disabled, 10, 3),
    "e2e_obs_enabled": (bench_e2e_obs_enabled, 10, 3),
    "engine_ping_pong_hb_off": (bench_engine_ping_pong_hb_off, 100, 5),
    "e2e_hb_enabled": (bench_e2e_hb_enabled, 10, 3),
    "trace_replay_arrivals": (bench_trace_replay_arrivals, 20, 3),
    "admission_throughput": (bench_admission_throughput, 10, 3),
}

#: Same-run obs-overhead gate: ``e2e_obs_disabled`` must stay within
#: this fraction of ``e2e_linear_solver`` throughput.  Both numbers come
#: from the same process and machine, so hardware noise largely cancels
#: and the bound can be much tighter than the cross-run TOLERANCE.
OBS_OVERHEAD_TOLERANCE = 0.15

#: The committed pre-incremental ``scheduler_walk`` throughput
#: (BENCH_perf.json as of the scheduler-registry PR).  The incremental
#: successor must beat it by ``INCREMENTAL_SPEEDUP_MIN`` — the
#: tentpole's headline claim, enforced on every ``--check``.
SCHEDULER_WALK_BASELINE_OPS_S = 11_061.09
INCREMENTAL_SPEEDUP_MIN = 5.0

#: Same-run gate: the coalesced fan-out must beat one-process-per-message
#: delivery by this factor on the shared 1000-way fixture.  Same process,
#: same machine — the ratio is hardware-noise-immune.
BATCH_SPEEDUP_MIN = 3.0

#: Interleaved sanitizer-off gate: the kernel loop after an
#: ``AnalysisSession`` attach/detach cycle must stay within this
#: fraction of the plain-kernel leg (see ``check_hb_overhead``).  When
#: the sanitizer is off the hooks are a single ``is None`` check, so
#: the two legs run the identical hot loop — the gate exists to catch
#: any future change that leaves the recorder armed after detach or
#: makes the off state do real work.
HB_OVERHEAD_TOLERANCE = 0.02

#: Hard floors for the traffic subsystem (ops/s), enforced on every
#: ``--check`` independent of the committed baseline: the replay loop
#: must sustain trace-scale arrival rates (100k arrivals in seconds,
#: not minutes) and the admission gate must never be the bottleneck in
#: front of it.  Both sit ~4x under the measured rates so CI noise
#: cannot trip them while an accidental O(n^2) in the pump or the
#: token-bucket path will.
TRACE_REPLAY_FLOOR_OPS_S = 8_000.0
ADMISSION_FLOOR_OPS_S = 50_000.0


# ---------------------------------------------------------------------------
# harness
# ---------------------------------------------------------------------------

def _git_rev() -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"], cwd=REPO_ROOT,
            capture_output=True, text=True, timeout=10)
        return out.stdout.strip() or "unknown"
    except OSError:
        return "unknown"


def env_fingerprint() -> dict:
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "git_rev": _git_rev(),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
    }


def run_benchmarks(quick: bool = False) -> dict:
    results = {}
    for name, (fn, scale, repeats) in BENCHMARKS.items():
        if quick:
            scale = max(1, scale // 2)
            repeats = min(repeats, 2)
        best = float("inf")
        ops = 0
        for _ in range(repeats):
            t0 = time.perf_counter()
            ops = fn(scale)
            best = min(best, time.perf_counter() - t0)
        results[name] = {
            "ops": ops,
            "wall_s": round(best, 6),
            "ops_per_s": round(ops / best, 2),
            "repeats": repeats,
        }
        print(f"  {name:24s} {results[name]['ops_per_s']:>12,.0f} ops/s  "
              f"({ops} ops in {best:.3f}s best-of-{repeats})")
    return results


def check_regressions(fresh: dict, baseline_path: Path,
                      tolerance: float) -> list[str]:
    baseline = json.loads(baseline_path.read_text())
    failures = []
    for name, base in baseline.get("benchmarks", {}).items():
        cur = fresh.get(name)
        if cur is None:
            failures.append(f"{name}: present in baseline but not run")
            continue
        floor = base["ops_per_s"] * (1.0 - tolerance)
        if cur["ops_per_s"] < floor:
            failures.append(
                f"{name}: {cur['ops_per_s']:,.0f} ops/s < floor "
                f"{floor:,.0f} (baseline {base['ops_per_s']:,.0f}, "
                f"tolerance {tolerance:.0%})")
    return failures


def check_obs_overhead(fresh: dict,
                       tolerance: float = OBS_OVERHEAD_TOLERANCE
                       ) -> list[str]:
    """Same-run relative gate: disabled obs must be near-free."""
    base = fresh.get("e2e_linear_solver")
    off = fresh.get("e2e_obs_disabled")
    if base is None or off is None:
        return []
    floor = base["ops_per_s"] * (1.0 - tolerance)
    if off["ops_per_s"] < floor:
        return [
            f"e2e_obs_disabled: {off['ops_per_s']:,.0f} ops/s < floor "
            f"{floor:,.0f} ({tolerance:.0%} of same-run "
            f"e2e_linear_solver {base['ops_per_s']:,.0f}); a disabled "
            "Observability handle must cost ~one attribute load"]
    return []


def _hb_gate_leg(attach_cycle: bool, n: int = 20_000) -> float:
    """One timed ping-pong leg; ops/s.  Optionally pre-cycles a session."""
    from repro.analysis import AnalysisSession
    env = Environment()
    if attach_cycle:
        with AnalysisSession(env):
            pass  # attach/detach round trip — must leave no residue
        assert env._hb is None

    def ponger(env, n):
        for _ in range(n):
            yield env.timeout(1.0)

    for _ in range(10):
        env.process(ponger(env, n))
    t0 = time.perf_counter()
    env.run()
    return 10 * n / (time.perf_counter() - t0)


def check_hb_overhead(tolerance: float = HB_OVERHEAD_TOLERANCE,
                      pairs: int = 9) -> list[str]:
    """Interleaved A/B gate: the sanitizer-off kernel must be free.

    The plain leg and the attach/detach-cycled leg alternate
    back-to-back (best-of-``pairs`` each) so scheduler jitter hits both
    sides equally; the separately-timed benchmark slots drift by more
    than the 2% budget on a busy machine, this pairing stays within
    ±0.5%.
    """
    base = off = 0.0
    for _ in range(pairs):
        base = max(base, _hb_gate_leg(attach_cycle=False))
        off = max(off, _hb_gate_leg(attach_cycle=True))
    floor = base * (1.0 - tolerance)
    if off < floor:
        return [
            f"hb off overhead: {off:,.0f} ops/s < floor {floor:,.0f} "
            f"({tolerance:.0%} of the interleaved plain-kernel leg "
            f"{base:,.0f}); with the sanitizer detached the kernel must "
            "run the plain dispatch path — detach is leaving the "
            "recorder armed"]
    return []


def check_fast_path_speedups(fresh: dict) -> list[str]:
    """The tentpole gates for the incremental/batched hot paths."""
    failures = []
    inc = fresh.get("scheduler_incremental")
    if inc is not None:
        floor = INCREMENTAL_SPEEDUP_MIN * SCHEDULER_WALK_BASELINE_OPS_S
        if inc["ops_per_s"] < floor:
            failures.append(
                f"scheduler_incremental: {inc['ops_per_s']:,.0f} ops/s < "
                f"{floor:,.0f} ({INCREMENTAL_SPEEDUP_MIN:.0f}x the "
                f"committed pre-incremental scheduler_walk baseline "
                f"{SCHEDULER_WALK_BASELINE_OPS_S:,.0f})")
    bat = fresh.get("event_batch_fanout")
    unb = fresh.get("event_fanout_unbatched")
    if bat is not None and unb is not None:
        ratio = bat["ops_per_s"] / unb["ops_per_s"]
        if ratio < BATCH_SPEEDUP_MIN:
            failures.append(
                f"event_batch_fanout: only {ratio:.1f}x same-run "
                f"event_fanout_unbatched ({bat['ops_per_s']:,.0f} vs "
                f"{unb['ops_per_s']:,.0f} ops/s); batching must stay "
                f">= {BATCH_SPEEDUP_MIN:.0f}x")
    return failures


def check_traffic_floors(fresh: dict) -> list[str]:
    """Hard ops/s floors for the traffic replay and admission paths."""
    failures = []
    for name, floor in (("trace_replay_arrivals", TRACE_REPLAY_FLOOR_OPS_S),
                        ("admission_throughput", ADMISSION_FLOOR_OPS_S)):
        cur = fresh.get(name)
        if cur is not None and cur["ops_per_s"] < floor:
            failures.append(
                f"{name}: {cur['ops_per_s']:,.0f} ops/s < committed floor "
                f"{floor:,.0f}; the traffic subsystem must sustain "
                "trace-scale load")
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", "-o", type=Path,
                        default=REPO_ROOT / "BENCH_perf.json",
                        help="where to write the report JSON")
    parser.add_argument("--check", type=Path, default=None, metavar="BASELINE",
                        help="compare against a baseline report; exit 1 on "
                             ">tolerance throughput regression")
    parser.add_argument("--tolerance", type=float, default=TOLERANCE,
                        help="allowed fractional throughput drop (default "
                             f"{TOLERANCE})")
    parser.add_argument("--quick", action="store_true",
                        help="smaller scales / fewer repeats (smoke mode)")
    args = parser.parse_args(argv)

    print(f"perf_report: {len(BENCHMARKS)} benchmarks "
          f"({'quick' if args.quick else 'full'} mode)")
    benchmarks = run_benchmarks(quick=args.quick)
    report = {"schema": 1, "env": env_fingerprint(), "benchmarks": benchmarks}
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.output}")

    inc = benchmarks.get("scheduler_incremental")
    full = benchmarks.get("scheduler_full_resched")
    if inc and full:
        print(f"incremental scheduling: "
              f"{inc['ops_per_s'] / full['ops_per_s']:.1f}x same-run full "
              f"re-walk, {inc['ops_per_s'] / SCHEDULER_WALK_BASELINE_OPS_S:.1f}x "
              "the committed scheduler_walk baseline")
    bat = benchmarks.get("event_batch_fanout")
    unb = benchmarks.get("event_fanout_unbatched")
    if bat and unb:
        print(f"event batching: {bat['ops_per_s'] / unb['ops_per_s']:.1f}x "
              "same-run unbatched fan-out")

    base = benchmarks.get("e2e_linear_solver")
    off = benchmarks.get("e2e_obs_disabled")
    on = benchmarks.get("e2e_obs_enabled")
    if base and off and on:
        print(f"obs overhead: disabled "
              f"{1.0 - off['ops_per_s'] / base['ops_per_s']:+.1%}, "
              f"enabled {1.0 - on['ops_per_s'] / base['ops_per_s']:+.1%} "
              "vs uninstrumented e2e (same run)")

    ping = benchmarks.get("engine_ping_pong")
    hb_off = benchmarks.get("engine_ping_pong_hb_off")
    hb_on = benchmarks.get("e2e_hb_enabled")
    if ping and hb_off:
        line = (f"hb sanitizer: off "
                f"{1.0 - hb_off['ops_per_s'] / ping['ops_per_s']:+.1%} "
                "vs same-run plain kernel")
        if hb_on and base:
            line += (f", enabled e2e "
                     f"{1.0 - hb_on['ops_per_s'] / base['ops_per_s']:+.1%} "
                     "vs uninstrumented e2e")
        print(line)

    rep = benchmarks.get("trace_replay_arrivals")
    adm = benchmarks.get("admission_throughput")
    if rep and adm:
        print(f"traffic: replay sustains {rep['ops_per_s']:,.0f} arrivals/s "
              f"(floor {TRACE_REPLAY_FLOOR_OPS_S:,.0f}), admission "
              f"{adm['ops_per_s']:,.0f} decisions/s "
              f"(floor {ADMISSION_FLOOR_OPS_S:,.0f})")

    if args.check is not None:
        if not args.check.exists():
            print(f"no baseline at {args.check}; nothing to compare")
            return 0
        failures = check_regressions(benchmarks, args.check, args.tolerance)
        failures += check_obs_overhead(benchmarks)
        failures += check_hb_overhead()
        failures += check_fast_path_speedups(benchmarks)
        failures += check_traffic_floors(benchmarks)
        if failures:
            print("PERF REGRESSION:")
            for f in failures:
                print(f"  {f}")
            return 1
        print(f"no regression vs {args.check} "
              f"(tolerance {args.tolerance:.0%})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
