"""Command-line entry point: ``python -m tools.reprolint src/ tests/``."""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from tools.reprolint.checkers import ALL_CHECKERS
from tools.reprolint.core import DEFAULT_EXCLUDES, LintRunner


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="reprolint",
        description=("project-specific determinism & invariant linter "
                     "for the VDCE reproduction"))
    parser.add_argument("paths", nargs="*", default=["src", "tests"],
                        help="files or directories to lint "
                             "(default: src tests)")
    parser.add_argument("--format", choices=("text", "json", "sarif"),
                        default="text", help="output format")
    parser.add_argument("--output", metavar="FILE", default=None,
                        help="write the report here instead of stdout")
    parser.add_argument("--select", metavar="RULES",
                        help="comma-separated rule ids to run "
                             "(default: all)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    parser.add_argument("--no-path-filter", action="store_true",
                        help="run every rule on every file (fixture "
                             "testing)")
    parser.add_argument("--no-default-excludes", action="store_true",
                        help="also lint fixture/cache directories")
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)

    if args.list_rules:
        for rule, cls in ALL_CHECKERS.items():
            scope = ", ".join(cls.path_filters) if cls.path_filters \
                else "all files"
            print(f"{rule}  {cls.description}")
            print(f"        scope: {scope}")
        return 0

    if args.select:
        wanted = {r.strip().upper() for r in args.select.split(",")}
        unknown = wanted - set(ALL_CHECKERS)
        if unknown:
            print(f"reprolint: unknown rule(s): {', '.join(sorted(unknown))}",
                  file=sys.stderr)
            return 2
        selected = [cls for rule, cls in ALL_CHECKERS.items()
                    if rule in wanted]
    else:
        selected = list(ALL_CHECKERS.values())

    checkers = [cls(ignore_path_filters=args.no_path_filter)
                for cls in selected]
    excludes = () if args.no_default_excludes else DEFAULT_EXCLUDES
    result = LintRunner(checkers, excludes=excludes).run(args.paths)

    if args.format == "json":
        rendered = result.render_json()
    elif args.format == "sarif":
        rendered = result.render_sarif(
            {rule: cls.description for rule, cls in ALL_CHECKERS.items()})
    else:
        rendered = result.render_text()
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(rendered + "\n")
        print(f"reprolint: report written to {args.output}")
    else:
        print(rendered)
    return 0 if result.ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
