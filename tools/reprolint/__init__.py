"""reprolint — project-specific static analysis for the VDCE reproduction.

The repository's headline properties — byte-identical seeded chaos runs
and a memoized ``Predict()`` invalidated by version stamps — are
invariants that one stray ``random`` call or unordered-``set`` iteration
silently breaks.  reprolint is an AST-based linter that checks the code
against the project's *own* rules, the way a generic linter never could:

* **DET001** — nondeterminism hazards in simulation/scheduling code
  (unordered-set iteration, ``id()``/``hash()``-derived values, unseeded
  ``random``/``numpy.random`` use bypassing ``repro.util.rng``);
* **DET002** — wall-clock leaks (``time.time`` & friends) in simulated
  code, where only ``env.now`` may be consulted;
* **INV001** — the cache-invalidation contract: methods of ``@versioned``
  classes that mutate data must bump the version stamp;
* **INV002** — the delta-publication contract: repository version bumps
  must publish a ``_notify`` delta event, and ``DeltaTracker`` journal
  mutations must bump the ``generation`` cursor stamp;
* **SIM001** — simulation-safety: process generators must not call
  blocking/real-I/O APIs or share state through ``global``/``nonlocal``;
* **PERF001** — hot-path hygiene in the kernel and network send path
  (``__slots__`` parity, guarded tracer calls).

Run ``python -m tools.reprolint src/ tests/`` from the repository root.
Suppress a finding with ``# reprolint: disable=RULE  -- justification``
on (or immediately above) the offending line; see
``docs/static-analysis.md`` for the rule catalogue and suppression
policy.
"""

from tools.reprolint.core import Checker, Finding, LintRunner, iter_python_files

__all__ = ["Checker", "Finding", "LintRunner", "iter_python_files"]
