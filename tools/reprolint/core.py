"""The reprolint framework: findings, the checker base class, the runner.

A :class:`Checker` is a per-file AST visitor.  The :class:`LintRunner`
walks the target paths, parses each Python file once, extracts
suppression comments, runs every applicable checker over the tree, and
filters suppressed findings.  Checkers never see files outside their
configured path scope, so a rule about simulation code cannot misfire on
the real-socket bridge or the tooling.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

#: Directories never linted (fixtures are deliberately full of findings).
DEFAULT_EXCLUDES = ("__pycache__", "reprolint_fixtures", ".git")

#: ``# reprolint: disable=DET001`` or ``disable=DET001,INV001`` or
#: ``disable=all``; anything after ``--`` is the human justification.
_SUPPRESS_RE = re.compile(r"#\s*reprolint:\s*disable=([A-Za-z0-9_,]+|all)")


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def to_dict(self) -> dict[str, object]:
        return {"rule": self.rule, "path": self.path, "line": self.line,
                "col": self.col, "message": self.message}


class Checker(ast.NodeVisitor):
    """Base class for one rule: a per-file AST visitor with config.

    Subclasses set :attr:`rule` / :attr:`description`, may restrict
    themselves with :attr:`path_filters` (posix substrings; empty = every
    file) and :attr:`exempt_files` (basenames), and call :meth:`report`
    from their ``visit_*`` methods.  ``config`` merges over the class's
    :attr:`default_config`.
    """

    rule: str = "RULE000"
    description: str = ""
    #: posix path substrings this rule applies to; empty means all files
    path_filters: tuple[str, ...] = ()
    #: basenames exempt from the rule (e.g. the real-socket bridge)
    exempt_files: tuple[str, ...] = ()
    default_config: dict[str, object] = {}

    def __init__(self, config: dict[str, object] | None = None,
                 ignore_path_filters: bool = False) -> None:
        self.config: dict[str, object] = dict(self.default_config)
        if config:
            self.config.update(config)
        self.ignore_path_filters = ignore_path_filters
        self._findings: list[Finding] = []
        self._path = ""

    # -- scoping -----------------------------------------------------------
    def applies_to(self, path: Path) -> bool:
        """Whether this rule runs over *path* at all."""
        if path.name in self.exempt_files:
            return False
        if self.ignore_path_filters or not self.path_filters:
            return True
        posix = path.as_posix()
        return any(fragment in posix for fragment in self.path_filters)

    # -- the per-file entry point ------------------------------------------
    def check(self, path: Path, tree: ast.Module,
              source: str) -> list[Finding]:
        """Run the visitor over one parsed file; returns raw findings."""
        self._findings = []
        self._path = str(path)
        self.begin_file(tree, source)
        self.visit(tree)
        self.end_file()
        return self._findings

    def begin_file(self, tree: ast.Module, source: str) -> None:
        """Per-file setup hook (import-alias scans live here)."""

    def end_file(self) -> None:
        """Per-file teardown hook."""

    def report(self, node: ast.AST, message: str) -> None:
        self._findings.append(Finding(
            rule=self.rule, path=self._path,
            line=getattr(node, "lineno", 0),
            col=getattr(node, "col_offset", 0) + 1,
            message=message))


# ---------------------------------------------------------------------------
# suppression comments
# ---------------------------------------------------------------------------

def suppressed_rules_by_line(source: str) -> dict[int, set[str]]:
    """Map line number -> rule ids suppressed there.

    A ``# reprolint: disable=RULE`` comment suppresses findings on its
    own line and — when the comment stands alone — on the next line, so
    long messages keep the justification above the code.  ``all``
    suppresses every rule.
    """
    out: dict[int, set[str]] = {}
    for lineno, text in enumerate(source.splitlines(), start=1):
        m = _SUPPRESS_RE.search(text)
        if not m:
            continue
        rules = {r.strip().upper() for r in m.group(1).split(",") if r.strip()}
        out.setdefault(lineno, set()).update(rules)
        if text.lstrip().startswith("#"):  # comment-only line: covers next
            out.setdefault(lineno + 1, set()).update(rules)
    return out


def is_suppressed(finding: Finding,
                  suppressions: dict[int, set[str]]) -> bool:
    rules = suppressions.get(finding.line)
    if not rules:
        return False
    return "ALL" in rules or finding.rule.upper() in rules


# ---------------------------------------------------------------------------
# file collection + the runner
# ---------------------------------------------------------------------------

def iter_python_files(paths: Iterable[str | Path],
                      excludes: tuple[str, ...] = DEFAULT_EXCLUDES
                      ) -> Iterator[Path]:
    """Yield every ``.py`` file under *paths*, skipping excluded parts."""
    for raw in paths:
        root = Path(raw)
        if root.is_file():
            if root.suffix == ".py":
                yield root
            continue
        for candidate in sorted(root.rglob("*.py")):
            if any(part in excludes for part in candidate.parts):
                continue
            yield candidate


@dataclass
class LintResult:
    """Everything one run produced, for rendering and exit-code logic."""

    findings: list[Finding] = field(default_factory=list)
    files_checked: int = 0
    parse_errors: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.findings and not self.parse_errors

    def render_text(self) -> str:
        lines = [f.render() for f in self.findings]
        lines.extend(f"parse error: {e}" for e in self.parse_errors)
        lines.append(
            f"reprolint: {self.files_checked} files, "
            f"{len(self.findings)} finding(s)")
        return "\n".join(lines)

    def render_json(self) -> str:
        return json.dumps({
            "files_checked": self.files_checked,
            "findings": [f.to_dict() for f in self.findings],
            "parse_errors": self.parse_errors,
        }, indent=2, sort_keys=True)

    def render_sarif(self, rules: dict[str, str] | None = None) -> str:
        """SARIF 2.1.0 log for code-scanning upload.

        *rules* maps rule id -> description; pass the checker catalogue
        so the viewer shows rule help.  Parse errors become tool
        notifications (they fail the run but have no code location).
        """
        rules = rules or {}
        seen = sorted({f.rule for f in self.findings} | set(rules))
        driver = {
            "name": "reprolint",
            "informationUri":
                "https://example.invalid/reprolint",  # no public docs
            "rules": [{"id": rule,
                       "shortDescription":
                           {"text": rules.get(rule, rule)}}
                      for rule in seen],
        }
        index = {rule: i for i, rule in enumerate(seen)}
        results = [{
            "ruleId": f.rule,
            "ruleIndex": index[f.rule],
            "level": "error",
            "message": {"text": f.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": Path(f.path).as_posix(),
                        "uriBaseId": "SRCROOT"},
                    "region": {"startLine": f.line,
                               "startColumn": f.col},
                },
            }],
        } for f in self.findings]
        run: dict[str, object] = {
            "tool": {"driver": driver},
            "columnKind": "utf16CodeUnits",
            "originalUriBaseIds": {"SRCROOT": {"uri": "file:///"}},
            "results": results,
        }
        if self.parse_errors:
            run["invocations"] = [{
                "executionSuccessful": False,
                "toolExecutionNotifications": [
                    {"level": "error", "message": {"text": err}}
                    for err in self.parse_errors],
            }]
        return json.dumps({
            "$schema": ("https://raw.githubusercontent.com/oasis-tcs/"
                        "sarif-spec/master/Schemata/sarif-schema-2.1.0"
                        ".json"),
            "version": "2.1.0",
            "runs": [run],
        }, indent=2, sort_keys=True)


class LintRunner:
    """Drive a set of checkers over a set of paths."""

    def __init__(self, checkers: list[Checker],
                 excludes: tuple[str, ...] = DEFAULT_EXCLUDES) -> None:
        self.checkers = checkers
        self.excludes = excludes

    def run(self, paths: Iterable[str | Path]) -> LintResult:
        result = LintResult()
        for path in iter_python_files(paths, self.excludes):
            applicable = [c for c in self.checkers if c.applies_to(path)]
            if not applicable:
                continue
            try:
                source = path.read_text(encoding="utf-8")
                tree = ast.parse(source, filename=str(path))
            except (OSError, SyntaxError) as exc:
                result.parse_errors.append(f"{path}: {exc}")
                continue
            result.files_checked += 1
            suppressions = suppressed_rules_by_line(source)
            for checker in applicable:
                for finding in checker.check(path, tree, source):
                    if not is_suppressed(finding, suppressions):
                        result.findings.append(finding)
        result.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
        return result
