from tools.reprolint.cli import main

raise SystemExit(main())
