"""Checker registry: every rule reprolint ships."""

from __future__ import annotations

from tools.reprolint.checkers.det001 import NondeterminismChecker
from tools.reprolint.checkers.det002 import WallClockChecker
from tools.reprolint.checkers.det003 import SameTickOrderChecker
from tools.reprolint.checkers.inv001 import VersionStampChecker
from tools.reprolint.checkers.inv002 import DeltaPublicationChecker
from tools.reprolint.checkers.iso001 import IsolationChecker
from tools.reprolint.checkers.perf001 import HotPathHygieneChecker
from tools.reprolint.checkers.sim001 import SimulationSafetyChecker
from tools.reprolint.core import Checker

#: rule id -> checker class, in catalogue order
ALL_CHECKERS: dict[str, type[Checker]] = {
    NondeterminismChecker.rule: NondeterminismChecker,
    WallClockChecker.rule: WallClockChecker,
    SameTickOrderChecker.rule: SameTickOrderChecker,
    VersionStampChecker.rule: VersionStampChecker,
    DeltaPublicationChecker.rule: DeltaPublicationChecker,
    IsolationChecker.rule: IsolationChecker,
    SimulationSafetyChecker.rule: SimulationSafetyChecker,
    HotPathHygieneChecker.rule: HotPathHygieneChecker,
}

__all__ = [
    "ALL_CHECKERS",
    "DeltaPublicationChecker",
    "HotPathHygieneChecker",
    "IsolationChecker",
    "NondeterminismChecker",
    "SameTickOrderChecker",
    "SimulationSafetyChecker",
    "VersionStampChecker",
    "WallClockChecker",
]
