"""ISO001: direct cross-site state mutation (the shardability rule).

The architecture's sharding contract — certified dynamically by
``repro analyze`` — is that every cross-site interaction flows through
the simulated :class:`~repro.net.network.Network`.  Library code must
never reach *through* a daemon registry or a foreign daemon reference
and mutate another site's repository, store, or manager state directly:
such a call would be invisible to the network layer (and impossible once
sites live in separate processes).

Two reach-through shapes are flagged when they terminate in a known
mutator call:

* a subscript of a cross-site daemon registry anywhere in the receiver
  chain — ``self.repositories[site].resource_performance.mark_down(...)``,
  ``vdce.site_managers[name]._executions.clear()``;
* another object's ``.repository`` attribute — ``sm.repository.…`` —
  where the base is not ``self`` (a daemon mutating its *own* site's
  repository is the owner, not a trespasser).

Reads are fine (the facade legitimately consults remote repositories for
scheduling, paying the staleness); ``self.repository`` mutations are
fine; tests and tools are out of scope.  Genuine exceptions (e.g. a
seeding helper) carry a ``# reprolint: disable=ISO001`` justification.
"""

from __future__ import annotations

import ast

from tools.reprolint.core import Checker

#: attribute names that hold per-site daemon/state registries
_CROSS_SITE_REGISTRIES = (
    "repositories", "site_managers", "group_managers", "monitors",
    "data_managers", "app_controllers", "replicas", "standbys",
)

#: state-mutating methods on repositories, stores, and managers
_MUTATORS = (
    # repository databases
    "register_host", "update_dynamic", "mark_down", "mark_up",
    "register_executable", "register_task", "set_weight",
    "record_execution", "add_user", "remove_user", "subscribe",
    # simulation stores / queues
    "put", "put_nowait",
    # generic container mutation on reached-through state
    "clear", "update", "setdefault",
)


class IsolationChecker(Checker):
    rule = "ISO001"
    description = ("direct mutation of another site's repository/store/"
                   "manager state — cross-site writes must flow through "
                   "the Network")
    path_filters = (
        "repro/core", "repro/runtime", "repro/scheduling",
        "repro/recovery", "repro/workloads", "repro/experiments",
        "repro/bakeoff", "repro/monitoring", "repro/faults",
    )
    default_config: dict[str, object] = {
        "registries": _CROSS_SITE_REGISTRIES,
        "mutators": _MUTATORS,
    }

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute) and \
                func.attr in self.config["mutators"]:  # type: ignore[operator]
            reach = self._reach_through(func.value)
            if reach:
                self.report(node, (
                    f".{func.attr}() mutates state reached through "
                    f"{reach}; cross-site state must be owned by its "
                    "site's daemons and changed via Network messages"))
        self.generic_visit(node)

    def _reach_through(self, chain: ast.expr) -> str | None:
        """Describe the first cross-site reach-through in the receiver
        chain, or None when the receiver is locally owned."""
        registries = self.config["registries"]
        node: ast.expr | None = chain
        while node is not None:
            if isinstance(node, ast.Subscript):
                base = node.value
                name = (base.attr if isinstance(base, ast.Attribute)
                        else base.id if isinstance(base, ast.Name)
                        else None)
                if name in registries:  # type: ignore[operator]
                    return f"the {name}[...] registry"
                node = base
            elif isinstance(node, ast.Attribute):
                if node.attr == "repository" and not (
                        isinstance(node.value, ast.Name)
                        and node.value.id == "self"):
                    owner = self._describe(node.value)
                    return f"{owner}.repository (a foreign daemon's)"
                node = node.value
            elif isinstance(node, ast.Call):
                node = node.func
            else:
                return None
        return None

    @staticmethod
    def _describe(node: ast.expr) -> str:
        if isinstance(node, ast.Name):
            return node.id
        if isinstance(node, ast.Attribute):
            return node.attr
        return "<expr>"
