"""DET001: nondeterminism hazards in simulation/scheduling code.

Three families of hazard, all of which have bitten (or would bite) the
byte-identical-chaos-run guarantee:

* iterating an unordered ``set``/``frozenset`` (literal, comprehension,
  constructor call, or a call to a known set-returning method such as
  ``ResourceAllocationTable.hosts()``) in a ``for`` loop or
  comprehension — iteration order is ``PYTHONHASHSEED``-dependent, so
  anything it feeds (message order, portion assignment) varies between
  processes;
* deriving values from ``id()`` or the salted builtin ``hash()``;
* drawing randomness outside ``repro.util.rng``: any ``random.*`` call,
  ``numpy.random`` legacy API, or an *unseeded* ``default_rng()``.
"""

from __future__ import annotations

import ast

from tools.reprolint.core import Checker

#: methods in this codebase documented to return sets
_SET_RETURNING_METHODS = (
    "hosts", "sites", "hosts_with", "tasks_on",
    "intersection", "union", "difference", "symmetric_difference",
)

#: the only names on ``numpy.random`` that are seedable-construction API
_ALLOWED_NP_RANDOM = (
    "default_rng", "SeedSequence", "Generator", "BitGenerator", "PCG64",
)


class NondeterminismChecker(Checker):
    rule = "DET001"
    description = ("unordered-set iteration, id()/hash() derived values, "
                   "or randomness bypassing repro.util.rng")
    path_filters = (
        "repro/simcore", "repro/scheduling", "repro/faults", "repro/net",
        "repro/runtime", "repro/workloads", "repro/resources",
        "repro/repository",
    )
    default_config: dict[str, object] = {
        "set_returning_methods": _SET_RETURNING_METHODS,
        "allowed_np_random": _ALLOWED_NP_RANDOM,
    }

    def begin_file(self, tree: ast.Module, source: str) -> None:
        # aliases of the `random` module / `numpy` / `numpy.random`,
        # plus names imported *from* those modules.
        self._random_aliases: set[str] = set()
        self._numpy_aliases: set[str] = set()
        self._np_random_aliases: set[str] = set()
        self._from_random_names: set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    bound = alias.asname or alias.name.split(".")[0]
                    if alias.name == "random":
                        self._random_aliases.add(bound)
                    elif alias.name == "numpy.random":
                        self._np_random_aliases.add(
                            alias.asname or "numpy")
                    elif alias.name == "numpy":
                        self._numpy_aliases.add(bound)
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random":
                    for alias in node.names:
                        self._from_random_names.add(
                            alias.asname or alias.name)
                elif node.module == "numpy.random":
                    allowed = self.config["allowed_np_random"]
                    for alias in node.names:
                        if alias.name not in allowed:  # type: ignore[operator]
                            self._from_random_names.add(
                                alias.asname or alias.name)
                elif node.module == "numpy":
                    for alias in node.names:
                        if alias.name == "random":
                            self._np_random_aliases.add(
                                alias.asname or alias.name)

    # -- unordered iteration -----------------------------------------------
    def _is_unordered_set_expr(self, node: ast.expr) -> str | None:
        """Describe *node* if its value is an unordered set, else None."""
        if isinstance(node, ast.Set):
            return "a set literal"
        if isinstance(node, ast.SetComp):
            return "a set comprehension"
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
                return f"a {func.id}() call"
            if isinstance(func, ast.Attribute):
                methods = self.config["set_returning_methods"]
                if func.attr in methods:  # type: ignore[operator]
                    return f"the set-returning method .{func.attr}()"
        return None

    def _check_iterable(self, node: ast.expr) -> None:
        described = self._is_unordered_set_expr(node)
        if described:
            self.report(node, (
                f"iteration over {described} is PYTHONHASHSEED-dependent; "
                "wrap in sorted(...) before the order can reach a "
                "scheduling or messaging decision"))

    def visit_For(self, node: ast.For) -> None:
        self._check_iterable(node.iter)
        self.generic_visit(node)

    def _visit_comprehension(self, node: ast.AST) -> None:
        for comp in node.generators:  # type: ignore[attr-defined]
            self._check_iterable(comp.iter)
        self.generic_visit(node)

    visit_ListComp = _visit_comprehension
    visit_SetComp = _visit_comprehension
    visit_DictComp = _visit_comprehension
    visit_GeneratorExp = _visit_comprehension

    # -- id()/hash() and randomness ----------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Name):
            if func.id == "id":
                self.report(node, (
                    "id() is an address, different every run; key or order "
                    "on a stable identifier instead"))
            elif func.id == "hash":
                self.report(node, (
                    "builtin hash() is salted per process; use "
                    "zlib.crc32 of a stable string (see repro.util.rng)"))
            elif func.id in self._from_random_names:
                self.report(node, (
                    f"{func.id}() comes from the unseeded random module; "
                    "draw from repro.util.rng streams instead"))
        elif isinstance(func, ast.Attribute):
            self._check_attribute_call(node, func)
        self.generic_visit(node)

    def _check_attribute_call(self, node: ast.Call,
                              func: ast.Attribute) -> None:
        value = func.value
        # random.<anything>(...)
        if isinstance(value, ast.Name) and value.id in self._random_aliases:
            self.report(node, (
                f"random.{func.attr}() uses global unseeded state; draw "
                "from repro.util.rng streams instead"))
            return
        # np.random.<x>(...) or aliased numpy.random module
        np_random = (
            (isinstance(value, ast.Attribute) and value.attr == "random"
             and isinstance(value.value, ast.Name)
             and value.value.id in self._numpy_aliases)
            or (isinstance(value, ast.Name)
                and value.id in self._np_random_aliases))
        if np_random:
            allowed = self.config["allowed_np_random"]
            if func.attr not in allowed:  # type: ignore[operator]
                self.report(node, (
                    f"numpy.random.{func.attr}() is the legacy global-state "
                    "API; construct a seeded Generator via repro.util.rng"))
            elif func.attr == "default_rng" and not node.args \
                    and not node.keywords:
                self.report(node, (
                    "default_rng() without a seed is entropy-seeded; pass "
                    "an explicit seed (or use repro.util.rng)"))
