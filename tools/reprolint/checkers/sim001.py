"""SIM001: simulation-safety of process generator functions.

A simulation process is a generator driven by the engine; between two
``yield`` points the whole simulated world is frozen.  A process that
calls a blocking real-I/O API (``time.sleep``, sockets, subprocesses)
stalls the kernel for real wall time, and one that shares state through
``global``/``nonlocal`` couples processes outside the event API, where
resume order — not simulated causality — decides the outcome.

This is a syntactic approximation: it flags *direct* calls to a known
blocking surface and ``global``/``nonlocal`` declarations inside any
generator function.  Indirect blocking through helpers is out of scope
(see docs/static-analysis.md).  The real-socket bridge, the web server,
and the CLI entry points legitimately mix generators with real I/O and
are exempt.
"""

from __future__ import annotations

import ast

from tools.reprolint.core import Checker

#: fully-dotted calls that block the real world
_BLOCKING_EXACT = ("time.sleep", "os.system", "os.popen", "input",
                   "breakpoint")
#: any attribute call on these modules blocks or does real I/O
_BLOCKING_MODULES = ("socket", "subprocess", "requests", "urllib",
                     "http", "ftplib", "telnetlib")


class SimulationSafetyChecker(Checker):
    rule = "SIM001"
    description = ("process generators must not block on real I/O or "
                   "share state via global/nonlocal")
    path_filters = ("repro/",)
    exempt_files = ("realsock.py", "webserver.py", "local.py", "cli.py")
    default_config: dict[str, object] = {
        "blocking_exact": _BLOCKING_EXACT,
        "blocking_modules": _BLOCKING_MODULES,
    }

    def begin_file(self, tree: ast.Module, source: str) -> None:
        # alias -> canonical module name, for `import subprocess as sp`
        self._module_aliases: dict[str, str] = {}
        self._from_blocking_names: dict[str, str] = {}
        modules = self.config["blocking_modules"]
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    top = alias.name.split(".")[0]
                    if top in modules or top in ("time", "os"):  # type: ignore[operator]
                        bound = alias.asname or top
                        self._module_aliases[bound] = top
            elif isinstance(node, ast.ImportFrom) and node.module:
                top = node.module.split(".")[0]
                for alias in node.names:
                    bound = alias.asname or alias.name
                    dotted = f"{top}.{alias.name}"
                    if top in modules:  # type: ignore[operator]
                        self._from_blocking_names[bound] = dotted
                    elif dotted in self.config["blocking_exact"]:  # type: ignore[operator]
                        self._from_blocking_names[bound] = dotted

    # -- generator detection -----------------------------------------------
    @staticmethod
    def _own_scope_nodes(fn: ast.AST) -> list[ast.AST]:
        """All nodes of *fn*'s body excluding nested function scopes."""
        out: list[ast.AST] = []
        stack: list[ast.AST] = list(ast.iter_child_nodes(fn))
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda)):
                continue
            out.append(node)
            stack.extend(ast.iter_child_nodes(node))
        return out

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        own = self._own_scope_nodes(node)
        if any(isinstance(n, (ast.Yield, ast.YieldFrom)) for n in own):
            self._check_generator(node, own)
        self.generic_visit(node)  # nested defs get their own pass

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    def _check_generator(self, fn: ast.FunctionDef,
                         own: list[ast.AST]) -> None:
        for node in own:
            if isinstance(node, (ast.Global, ast.Nonlocal)):
                kind = "global" if isinstance(node, ast.Global) else \
                    "nonlocal"
                self.report(node, (
                    f"process generator {fn.name} shares state via "
                    f"{kind}; pass state through the engine's event API "
                    "(stores, interrupts) instead"))
            elif isinstance(node, ast.Call):
                self._check_call(fn, node)

    def _check_call(self, fn: ast.FunctionDef, node: ast.Call) -> None:
        func = node.func
        exact = self.config["blocking_exact"]
        if isinstance(func, ast.Name):
            if func.id in exact:  # type: ignore[operator]
                self.report(node, (
                    f"process generator {fn.name} calls blocking "
                    f"{func.id}(); the kernel stalls for real wall time"))
            elif func.id in self._from_blocking_names:
                dotted = self._from_blocking_names[func.id]
                self.report(node, (
                    f"process generator {fn.name} calls blocking "
                    f"{dotted}(); use env.timeout / simulated transports"))
        elif isinstance(func, ast.Attribute) \
                and isinstance(func.value, ast.Name):
            module = self._module_aliases.get(func.value.id)
            if module is None:
                return
            dotted = f"{module}.{func.attr}"
            modules = self.config["blocking_modules"]
            if dotted in exact or module in modules:  # type: ignore[operator]
                self.report(node, (
                    f"process generator {fn.name} calls blocking "
                    f"{dotted}(); use env.timeout / simulated transports"))
