"""DET003: same-tick scheduling without a deterministic tie-break.

The kernel breaks same-``(time, priority)`` ties by insertion sequence.
That is deterministic *within* one run, but it means relative order
among independently scheduled same-tick callbacks is an accident of
call order — refactoring, batching, or an extra subscriber silently
reorders them.  Scheduling decisions must therefore never be derived
from same-tick callback order without an explicit tie-break key.

Two statically visible hazards:

* ``call_later`` with a literal zero delay — a same-tick callback whose
  position among same-tick siblings is pure insertion order; give it a
  positive delay or fold the work into the current callback;
* ``call_later``/``process`` invoked in a loop over an unordered
  ``set``/``frozenset`` expression — the spawn *sequence* (and with it
  every same-tick tie-break downstream) becomes
  ``PYTHONHASHSEED``-dependent.  (DET001 flags set iteration broadly in
  kernel paths; this rule covers the scheduling-specific case across
  the whole library.)
"""

from __future__ import annotations

import ast

from tools.reprolint.core import Checker

_SCHEDULING_METHODS = ("call_later", "process")


class SameTickOrderChecker(Checker):
    rule = "DET003"
    description = ("same-tick call_later/process scheduling whose "
                   "callback order lacks a deterministic tie-break")
    path_filters = ("repro/",)
    exempt_files = ("realsock.py",)
    default_config: dict[str, object] = {
        "scheduling_methods": _SCHEDULING_METHODS,
    }

    def begin_file(self, tree: ast.Module, source: str) -> None:
        self._loop_depth = 0
        self._unordered_loop = False

    def _is_scheduling_call(self, node: ast.expr) -> str | None:
        if isinstance(node, ast.Call) and \
                isinstance(node.func, ast.Attribute):
            methods = self.config["scheduling_methods"]
            if node.func.attr in methods:  # type: ignore[operator]
                return node.func.attr
        return None

    @staticmethod
    def _is_unordered_set_expr(node: ast.expr) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        return (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in ("set", "frozenset"))

    def visit_Call(self, node: ast.Call) -> None:
        method = self._is_scheduling_call(node)
        if method == "call_later" and node.args:
            delay = node.args[0]
            if isinstance(delay, ast.Constant) and delay.value == 0:
                self.report(node, (
                    "call_later with a zero delay fires this tick; its "
                    "order among same-tick siblings is insertion order — "
                    "use a positive delay or run the work inline"))
        if method and self._loop_depth and self._unordered_loop:
            self.report(node, (
                f"{method}() inside a loop over an unordered set: the "
                "spawn sequence (the kernel's same-tick tie-break) "
                "becomes PYTHONHASHSEED-dependent; sort the iterable"))
        self.generic_visit(node)

    def visit_For(self, node: ast.For) -> None:
        unordered = self._is_unordered_set_expr(node.iter)
        prev = self._unordered_loop
        self._loop_depth += 1
        self._unordered_loop = unordered or prev
        for child in ast.iter_child_nodes(node):
            self.visit(child)
        self._loop_depth -= 1
        self._unordered_loop = prev
