"""INV001: the cache-invalidation contract for versioned classes.

``Predict()`` memoizes on ``(…, record.version, task_performance.version)``
(PR 2).  That only works if every mutation of a versioned object's data
also bumps its version stamp.  This checker targets classes that are
either named in config (``TaskPerformanceDB``, ``ResourcePerformanceDB``)
or carry the ``@versioned`` marker decorator from ``repro.util``, and
flags any regular method that assigns to instance data — directly
through ``self``, through a record obtained from ``self`` (e.g.
``rec = self.get(address)``), or through a non-self parameter — without
bumping a version attribute or calling a stamp method in the same body.
"""

from __future__ import annotations

import ast

from tools.reprolint.core import Checker

_VERSION_ATTRS = ("version", "_version", "_version_clock")
_STAMP_METHODS = ("_stamp", "touch", "bump_version")


class VersionStampChecker(Checker):
    rule = "INV001"
    description = ("mutating method of a versioned class must bump the "
                   "version stamp")
    default_config: dict[str, object] = {
        # class name -> it is versioned even without the decorator
        "versioned_classes": ("TaskPerformanceDB", "ResourcePerformanceDB"),
        "version_attrs": _VERSION_ATTRS,
        "stamp_methods": _STAMP_METHODS,
    }

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        if self._is_versioned(node):
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    self._check_method(node.name, item)
        self.generic_visit(node)

    def _is_versioned(self, node: ast.ClassDef) -> bool:
        named = self.config["versioned_classes"]
        if node.name in named:  # type: ignore[operator]
            return True
        for deco in node.decorator_list:
            target = deco.func if isinstance(deco, ast.Call) else deco
            if isinstance(target, ast.Name) and target.id == "versioned":
                return True
            if isinstance(target, ast.Attribute) \
                    and target.attr == "versioned":
                return True
        return False

    # -- per-method analysis -----------------------------------------------
    def _check_method(self, class_name: str,
                      fn: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        if fn.name.startswith("__") and fn.name.endswith("__"):
            return
        stamp_methods = self.config["stamp_methods"]
        if fn.name in stamp_methods:  # type: ignore[operator]
            return
        for deco in fn.decorator_list:
            target = deco.func if isinstance(deco, ast.Call) else deco
            name = target.id if isinstance(target, ast.Name) else \
                target.attr if isinstance(target, ast.Attribute) else ""
            if name in ("classmethod", "staticmethod", "property", "setter",
                        "cached_property"):
                return
        if not fn.args.args:
            return
        self_name = fn.args.args[0].arg
        params = {a.arg for a in fn.args.args[1:]}
        params.update(a.arg for a in fn.args.kwonlyargs)

        version_attrs = self.config["version_attrs"]
        aliases = self._record_aliases(fn, self_name)
        mutations: list[ast.stmt] = []
        bumped = False
        for stmt in ast.walk(fn):
            if isinstance(stmt, ast.FunctionDef) and stmt is not fn:
                continue
            if isinstance(stmt, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = stmt.targets if isinstance(stmt, ast.Assign) \
                    else [stmt.target]
                for target in targets:
                    root, attr = self._root_of(target)
                    if root is None:
                        continue
                    is_version = attr in version_attrs  # type: ignore[operator]
                    if root == self_name and is_version:
                        bumped = True
                    elif root == self_name and attr is not None:
                        mutations.append(stmt)
                    elif root in aliases or root in params:
                        if attr is not None and not is_version:
                            mutations.append(stmt)
            elif isinstance(stmt, ast.Call):
                func = stmt.func
                if isinstance(func, ast.Attribute) \
                        and isinstance(func.value, ast.Name) \
                        and func.value.id == self_name \
                        and func.attr in stamp_methods:  # type: ignore[operator]
                    bumped = True
        if mutations and not bumped:
            first = mutations[0]
            self.report(fn, (
                f"{class_name}.{fn.name} assigns to instance data "
                f"(line {first.lineno}) without bumping a version stamp; "
                "the Predict() memo will serve stale results"))

    @staticmethod
    def _record_aliases(fn: ast.AST, self_name: str) -> set[str]:
        """Local names bound from ``self.get(...)`` / ``self.<x>[...]``."""
        aliases: set[str] = set()
        for stmt in ast.walk(fn):
            if not isinstance(stmt, ast.Assign):
                continue
            value = stmt.value
            from_self = False
            if isinstance(value, ast.Call) \
                    and isinstance(value.func, ast.Attribute) \
                    and isinstance(value.func.value, ast.Name) \
                    and value.func.value.id == self_name:
                from_self = True
            elif isinstance(value, ast.Subscript) \
                    and isinstance(value.value, ast.Attribute) \
                    and isinstance(value.value.value, ast.Name) \
                    and value.value.value.id == self_name:
                from_self = True
            if from_self:
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        aliases.add(target.id)
        return aliases

    @staticmethod
    def _root_of(target: ast.expr) -> tuple[str | None, str | None]:
        """Peel ``x.a.b[c] = …`` down to (root name, first attribute).

        Returns ``(None, None)`` for plain-local assignments, and
        ``(root, None)`` when the root name itself is the target.
        """
        attr: str | None = None
        node = target
        while True:
            if isinstance(node, ast.Attribute):
                attr = node.attr
                node = node.value
            elif isinstance(node, ast.Subscript):
                node = node.value
            elif isinstance(node, ast.Name):
                return (node.id, attr) if attr is not None else (None, None)
            else:
                return (None, None)
