"""PERF001: hot-path hygiene in the kernel, network and scheduler paths.

PR 2 measured two things that matter on the hot path: instance dict
lookups (hence ``__slots__`` on every kernel class) and tracer overhead
when tracing is off (hence every ``tracer.record`` behind an
``if tracer.enabled`` guard).  The observability subsystem (``repro.obs``)
adds a third: metric/span recording, which must follow the same guard
idiom so a disabled :class:`~repro.obs.Observability` costs one attribute
load.  This checker keeps all three properties from regressing in the
files where they were earned:

* a class without ``__slots__`` in a module where sibling classes have
  them (dataclasses and exception types are exempt);
* a ``…tracer.record(...)`` call not enclosed in an ``if`` whose test
  consults ``.enabled``;
* a metric/span recording call (``inc``/``set``/``add``/``observe`` /
  ``begin``/``end``/``complete`` on an obs-rooted receiver — ``obs.…``,
  ``….metrics``/``.spans``, or an ``_m_*`` instrument handle) outside
  such a guard.
"""

from __future__ import annotations

import ast

from tools.reprolint.core import Checker

_EXC_BASES = ("Exception", "BaseException", "RuntimeError", "ValueError",
              "KeyError", "TypeError")

#: recording entry points of repro.obs instruments and span trackers
_OBS_RECORD_METHODS = frozenset(
    {"inc", "set", "add", "observe", "begin", "end", "complete"})


class HotPathHygieneChecker(Checker):
    rule = "PERF001"
    description = ("hot-path files: __slots__ parity and guarded "
                   "tracer/metric/span calls")
    path_filters = ("repro/simcore/engine.py", "repro/net/network.py",
                    "repro/scheduling/site_scheduler.py",
                    "repro/scheduling/heft.py")
    default_config: dict[str, object] = {}

    # -- __slots__ parity --------------------------------------------------
    def visit_Module(self, node: ast.Module) -> None:
        classes = [n for n in node.body if isinstance(n, ast.ClassDef)]
        slotted = [c for c in classes if self._has_slots(c)]
        if slotted:
            for cls in classes:
                if cls in slotted or self._is_exempt_class(cls):
                    continue
                self.report(cls, (
                    f"class {cls.name} has no __slots__ but "
                    f"{len(slotted)} sibling class(es) in this hot-path "
                    "module do; per-instance dicts cost on every "
                    "attribute access"))
        self.generic_visit(node)

    @staticmethod
    def _has_slots(cls: ast.ClassDef) -> bool:
        for stmt in cls.body:
            if isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name) \
                            and target.id == "__slots__":
                        return True
            elif isinstance(stmt, ast.AnnAssign) \
                    and isinstance(stmt.target, ast.Name) \
                    and stmt.target.id == "__slots__":
                return True
        return False

    @staticmethod
    def _is_exempt_class(cls: ast.ClassDef) -> bool:
        for deco in cls.decorator_list:
            target = deco.func if isinstance(deco, ast.Call) else deco
            name = target.id if isinstance(target, ast.Name) else \
                target.attr if isinstance(target, ast.Attribute) else ""
            if name == "dataclass":
                return True
        for base in cls.bases:
            name = base.id if isinstance(base, ast.Name) else \
                base.attr if isinstance(base, ast.Attribute) else ""
            if name in _EXC_BASES or name.endswith(("Error", "Exception",
                                                    "Interrupt")):
                return True
        return False

    # -- guarded tracer calls ----------------------------------------------
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._scan_for_tracer(node.body, guarded=False)
        self.generic_visit(node)

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    def _scan_for_tracer(self, stmts: list[ast.stmt],
                         guarded: bool) -> None:
        for stmt in stmts:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue  # visited separately
            if isinstance(stmt, ast.If):
                body_guarded = guarded or self._test_checks_enabled(
                    stmt.test)
                self._scan_for_tracer(stmt.body, body_guarded)
                self._scan_for_tracer(stmt.orelse, guarded)
                continue
            # expressions hanging directly off this statement (the nested
            # statement lists are recursed into below, so an `if` inside
            # a for/while/with/try is still honoured)
            for expr in self._immediate_exprs(stmt):
                for child in ast.walk(expr):
                    if not isinstance(child, ast.Call) or guarded:
                        continue
                    if self._is_tracer_record(child):
                        self.report(child, (
                            "tracer.record() outside an `if "
                            "tracer.enabled` guard pays dict/append cost "
                            "on every send even with tracing off"))
                    elif self._is_obs_record(child):
                        self.report(child, (
                            "metric/span recording outside an `if "
                            "obs.enabled` guard pays dict/label cost on "
                            "every hot-path pass even with observability "
                            "off"))
            for attr in ("body", "orelse", "finalbody"):
                inner = getattr(stmt, attr, None)
                if isinstance(inner, list) and inner \
                        and isinstance(inner[0], ast.stmt):
                    self._scan_for_tracer(inner, guarded)
            for handler in getattr(stmt, "handlers", []):
                self._scan_for_tracer(handler.body, guarded)

    @staticmethod
    def _immediate_exprs(stmt: ast.stmt) -> list[ast.expr]:
        out: list[ast.expr] = []
        for _field, value in ast.iter_fields(stmt):
            if isinstance(value, ast.expr):
                out.append(value)
            elif isinstance(value, list):
                for item in value:
                    if isinstance(item, ast.expr):
                        out.append(item)
                    elif isinstance(item, ast.withitem):
                        out.append(item.context_expr)
                        if item.optional_vars is not None:
                            out.append(item.optional_vars)
        return out

    @staticmethod
    def _test_checks_enabled(test: ast.expr) -> bool:
        for node in ast.walk(test):
            if isinstance(node, ast.Attribute) and node.attr == "enabled":
                return True
        return False

    @staticmethod
    def _is_tracer_record(node: ast.Call) -> bool:
        func = node.func
        if not (isinstance(func, ast.Attribute) and func.attr == "record"):
            return False
        value = func.value
        if isinstance(value, ast.Name):
            return "tracer" in value.id
        if isinstance(value, ast.Attribute):
            return "tracer" in value.attr
        return False

    @staticmethod
    def _is_obs_record(node: ast.Call) -> bool:
        """A recording call on an obs-rooted receiver.

        Matches ``obs.metrics.counter(...).inc(...)``, ``obs.spans.
        begin(...)``, and prebound instrument handles like
        ``self._m_messages.observe(...)`` — but not ordinary methods
        that happen to share a name (``some_set.add``,
        ``intervals.append``), because the receiver chain must mention
        an obs marker.
        """
        func = node.func
        if not (isinstance(func, ast.Attribute)
                and func.attr in _OBS_RECORD_METHODS):
            return False
        for part in ast.walk(func.value):
            name = None
            if isinstance(part, ast.Name):
                name = part.id
            elif isinstance(part, ast.Attribute):
                name = part.attr
            if name is None:
                continue
            if name == "obs" or name.startswith(("obs", "_m_")) or \
                    name in ("metrics", "spans"):
                return True
        return False
