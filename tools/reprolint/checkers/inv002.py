"""INV002: the delta-publication contract for incremental scheduling.

Incremental consumers (PR 7) cursor on the
:class:`~repro.repository.delta.DeltaTracker` journal instead of
re-walking the repository, which is only sound if two links hold:

* every repository-database method that bumps a version stamp also
  publishes the mutation through a ``_notify`` hook (else the journal
  under-reports and cached candidate views serve stale hosts);
* every journal mutation inside the tracker bumps the ``generation``
  cursor stamp (else a caught-up consumer's cursor already equals the
  generation and ``events_since`` silently skips the new events).

This checker enforces both.  In configured *source* classes, a regular
method that assigns a version attribute — on ``self`` or on a record —
must call a notify (or stamp) method in the same body; delegating the
bump to ``_stamp`` is fine because ``_stamp`` itself is checked.  In
configured *tracker* classes, a regular method that mutates a journal
attribute (mutator call, rebind, item assignment, or ``del``) must bump
a generation attribute in the same body.
"""

from __future__ import annotations

import ast

from tools.reprolint.core import Checker

#: list/deque methods that mutate the receiver in place
_JOURNAL_MUTATORS = frozenset({
    "append", "extend", "insert", "clear", "pop", "remove",
    "sort", "reverse", "appendleft", "popleft",
})


def _root_of(target: ast.expr) -> tuple[str | None, str | None]:
    """Peel ``x.a.b[c] = …`` down to (root name, first attribute).

    Returns ``(None, None)`` for plain-local assignments, and
    ``(root, None)`` when the root name itself is the target.
    """
    attr: str | None = None
    node = target
    while True:
        if isinstance(node, ast.Attribute):
            attr = node.attr
            node = node.value
        elif isinstance(node, ast.Subscript):
            node = node.value
        elif isinstance(node, ast.Name):
            return (node.id, attr) if attr is not None else (None, None)
        else:
            return (None, None)


class DeltaPublicationChecker(Checker):
    rule = "INV002"
    description = ("repository version bumps must publish delta events; "
                   "tracker journal mutations must bump the generation")
    default_config: dict[str, object] = {
        # databases feeding the DeltaTracker through subscribe/_notify
        "source_classes": ("ResourcePerformanceDB", "TaskPerformanceDB",
                           "TaskConstraintsDB", "UserAccountsDB"),
        "version_attrs": ("version", "_version", "_version_clock"),
        "notify_methods": ("_notify",),
        "stamp_methods": ("_stamp",),
        # journal holders consumers cursor on
        "tracker_classes": ("DeltaTracker",),
        "journal_attrs": ("_events",),
        "generation_attrs": ("generation",),
    }

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        methods = [item for item in node.body
                   if isinstance(item, (ast.FunctionDef,
                                        ast.AsyncFunctionDef))]
        if node.name in self.config["source_classes"]:  # type: ignore[operator]
            for fn in methods:
                self._check_source_method(node.name, fn)
        if node.name in self.config["tracker_classes"]:  # type: ignore[operator]
            for fn in methods:
                self._check_tracker_method(node.name, fn)
        self.generic_visit(node)

    @staticmethod
    def _exempt(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
        """Dunders, class/static methods, and properties are out of scope."""
        if fn.name.startswith("__") and fn.name.endswith("__"):
            return True
        for deco in fn.decorator_list:
            target = deco.func if isinstance(deco, ast.Call) else deco
            name = target.id if isinstance(target, ast.Name) else \
                target.attr if isinstance(target, ast.Attribute) else ""
            if name in ("classmethod", "staticmethod", "property", "setter",
                        "cached_property"):
                return True
        return not fn.args.args

    # -- pattern 1: version bump without a delta publication ---------------
    def _check_source_method(self, class_name: str,
                             fn: ast.FunctionDef | ast.AsyncFunctionDef
                             ) -> None:
        if self._exempt(fn):
            return
        self_name = fn.args.args[0].arg
        version_attrs = self.config["version_attrs"]
        publish = tuple(self.config["notify_methods"])  # type: ignore[arg-type]
        publish += tuple(self.config["stamp_methods"])  # type: ignore[arg-type]
        bumps: list[ast.stmt] = []
        published = False
        for stmt in ast.walk(fn):
            if isinstance(stmt, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = stmt.targets if isinstance(stmt, ast.Assign) \
                    else [stmt.target]
                for target in targets:
                    root, attr = _root_of(target)
                    if root is not None \
                            and attr in version_attrs:  # type: ignore[operator]
                        bumps.append(stmt)
            elif isinstance(stmt, ast.Call):
                func = stmt.func
                if isinstance(func, ast.Attribute) \
                        and isinstance(func.value, ast.Name) \
                        and func.value.id == self_name \
                        and func.attr in publish:
                    published = True
        if bumps and not published:
            first = bumps[0]
            self.report(fn, (
                f"{class_name}.{fn.name} bumps a version stamp "
                f"(line {first.lineno}) without publishing a delta event; "
                "incremental candidate views will go silently stale"))

    # -- pattern 2: journal mutation without a generation bump -------------
    def _check_tracker_method(self, class_name: str,
                              fn: ast.FunctionDef | ast.AsyncFunctionDef
                              ) -> None:
        if self._exempt(fn):
            return
        self_name = fn.args.args[0].arg
        journal_attrs = self.config["journal_attrs"]
        generation_attrs = self.config["generation_attrs"]
        mutations: list[ast.stmt] = []
        bumped = False
        for stmt in ast.walk(fn):
            if isinstance(stmt, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = stmt.targets if isinstance(stmt, ast.Assign) \
                    else [stmt.target]
                for target in targets:
                    root, attr = _root_of(target)
                    if root != self_name or attr is None:
                        continue
                    if attr in generation_attrs:  # type: ignore[operator]
                        bumped = True
                    elif attr in journal_attrs:  # type: ignore[operator]
                        mutations.append(stmt)
            elif isinstance(stmt, ast.Delete):
                for target in stmt.targets:
                    root, attr = _root_of(target)
                    if root == self_name \
                            and attr in journal_attrs:  # type: ignore[operator]
                        mutations.append(stmt)
            elif isinstance(stmt, ast.Call):
                func = stmt.func
                if isinstance(func, ast.Attribute) \
                        and func.attr in _JOURNAL_MUTATORS \
                        and isinstance(func.value, ast.Attribute) \
                        and func.value.attr in journal_attrs \
                        and isinstance(func.value.value, ast.Name) \
                        and func.value.value.id == self_name:
                    mutations.append(stmt)
        if mutations and not bumped:
            first = mutations[0]
            self.report(fn, (
                f"{class_name}.{fn.name} mutates the delta journal "
                f"(line {first.lineno}) without bumping the generation; "
                "cursored consumers will silently miss events"))
