"""DET002: wall-clock leaks in simulated code.

Inside the simulation the only clock is ``env.now``.  Any read of the
host's wall clock (``time.time``, ``time.monotonic``, ``datetime.now``,
…) or real sleeping (``time.sleep``) makes a run's behaviour depend on
the machine it ran on.  The real-socket bridge (``realsock.py``) and the
developer tooling under ``tools/`` legitimately touch real time and are
exempt.
"""

from __future__ import annotations

import ast

from tools.reprolint.core import Checker

_TIME_ATTRS = (
    "time", "time_ns", "monotonic", "monotonic_ns", "perf_counter",
    "perf_counter_ns", "process_time", "process_time_ns", "sleep",
    "localtime", "gmtime",
)
_DATETIME_ATTRS = ("now", "utcnow", "today")


class WallClockChecker(Checker):
    rule = "DET002"
    description = "wall-clock access in simulation code (use env.now)"
    path_filters = ("repro/",)
    exempt_files = ("realsock.py",)
    default_config: dict[str, object] = {
        "time_attrs": _TIME_ATTRS,
        "datetime_attrs": _DATETIME_ATTRS,
    }

    def begin_file(self, tree: ast.Module, source: str) -> None:
        self._time_aliases: set[str] = set()
        self._datetime_aliases: set[str] = set()  # the datetime *module*
        self._datetime_class_aliases: set[str] = set()
        self._from_time_names: set[str] = set()
        time_attrs = self.config["time_attrs"]
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    bound = alias.asname or alias.name.split(".")[0]
                    if alias.name == "time":
                        self._time_aliases.add(bound)
                    elif alias.name == "datetime":
                        self._datetime_aliases.add(bound)
            elif isinstance(node, ast.ImportFrom):
                if node.module == "time":
                    for alias in node.names:
                        if alias.name in time_attrs:  # type: ignore[operator]
                            self._from_time_names.add(
                                alias.asname or alias.name)
                elif node.module == "datetime":
                    for alias in node.names:
                        if alias.name in ("datetime", "date"):
                            self._datetime_class_aliases.add(
                                alias.asname or alias.name)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        value = node.value
        time_attrs = self.config["time_attrs"]
        dt_attrs = self.config["datetime_attrs"]
        if isinstance(value, ast.Name):
            if value.id in self._time_aliases \
                    and node.attr in time_attrs:  # type: ignore[operator]
                self.report(node, (
                    f"time.{node.attr} reads the host wall clock; "
                    "simulated code must use env.now / env.timeout"))
            elif value.id in self._datetime_class_aliases \
                    and node.attr in dt_attrs:  # type: ignore[operator]
                self.report(node, (
                    f"datetime.{node.attr}() reads the host wall clock; "
                    "simulated code must use env.now"))
        elif (isinstance(value, ast.Attribute)
              and isinstance(value.value, ast.Name)
              and value.value.id in self._datetime_aliases
              and value.attr in ("datetime", "date")
              and node.attr in dt_attrs):  # type: ignore[operator]
            self.report(node, (
                f"datetime.{value.attr}.{node.attr}() reads the host wall "
                "clock; simulated code must use env.now"))
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Name) and func.id in self._from_time_names:
            self.report(node, (
                f"{func.id}() (imported from time) touches the host wall "
                "clock; simulated code must use env.now / env.timeout"))
        self.generic_visit(node)
