"""Developer tooling for the VDCE reproduction (not shipped with repro)."""
