"""Shared helpers for the experiment benchmarks.

The measurement logic lives in :mod:`repro.experiments` (the library API
downstream users call); this module just re-exports it for the bench
files and adds the printing wrapper.

Each ``bench_f*.py`` regenerates one figure of the paper (see DESIGN.md's
per-experiment index) and prints the rows/series it asserts; run with::

    pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

from repro.experiments.measures import format_table, realized_makespan

__all__ = ["geo_ratio", "print_table", "realized_makespan"]


def print_table(title: str, rows: list[dict],
                order: list[str] | None = None) -> None:
    print()
    print(format_table(title, rows, order=order))


def geo_ratio(results: dict[str, float], reference: str) -> dict[str, float]:
    """Each entry's slowdown relative to *reference*."""
    ref = results[reference]
    return {name: value / ref for name, value in results.items()}
