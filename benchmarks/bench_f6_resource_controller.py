"""F6 — paper Figure 6: interactions among the Resource Controller
components.

Quantifies the figure's four monitoring interactions:

1. *Retrieving resource performance parameters* + *updating the site
   repository*: workload-update traffic under the paper's confidence-
   interval significant-change filter vs send-always vs fixed-threshold,
   and the staleness (repository error vs true load) each filter incurs.
2. *Monitoring the VDCE resources*: failure-detection latency as a
   function of the echo period.
"""

import numpy as np

from repro.net import WORKLOAD_UPDATE
from repro.workloads import nynet_testbed

from _common import print_table


def run_monitoring(filter_policy: str, seed: int = 3,
                   duration_s: float = 120.0):
    vdce = nynet_testbed(seed=seed, hosts_per_site=4, with_loads=True,
                         trace=False, filter_policy=filter_policy)
    vdce.start()
    # measure staleness by sampling repository error every second
    errors = []

    def sampler(env):
        while True:
            yield env.timeout(1.0)
            for host in vdce.world.all_hosts():
                rec = vdce.repositories[host.site].resource_performance.get(
                    host.address)
                errors.append(abs(rec.cpu_load - host.cpu_load))

    vdce.env.process(sampler(vdce.env))
    vdce.run(until=duration_s)
    reports = sum(gm.stats.reports_received
                  for gm in vdce.group_managers.values())
    forwarded = sum(gm.stats.updates_forwarded
                    for gm in vdce.group_managers.values())
    update_bytes = vdce.network.stats.bytes_by_kind.get(WORKLOAD_UPDATE, 0.0)
    return {
        "policy": filter_policy,
        "monitor_reports": reports,
        "updates_forwarded": forwarded,
        "traffic_reduction": reports / max(forwarded, 1),
        "update_bytes": update_bytes,
        "mean_staleness": float(np.mean(errors)),
        "p95_staleness": float(np.percentile(errors, 95)),
    }


def test_change_filter_traffic_vs_staleness(benchmark):
    """The paper's CI filter: large traffic cut, small staleness cost."""
    rows = [run_monitoring(p) for p in ("always", "threshold", "ci")]
    print_table("F6: workload-update traffic vs repository staleness",
                rows, order=["policy", "monitor_reports",
                             "updates_forwarded", "traffic_reduction",
                             "mean_staleness", "p95_staleness"])
    by = {r["policy"]: r for r in rows}
    # same measurement stream for every policy
    assert by["ci"]["monitor_reports"] == by["always"]["monitor_reports"]
    # the CI filter cuts update traffic by at least 2x vs send-always
    assert by["ci"]["updates_forwarded"] < \
        by["always"]["updates_forwarded"] / 2
    # ... at a bounded staleness cost (< 3x the always-send error, which
    # is itself nonzero due to the monitor sampling period)
    assert by["ci"]["mean_staleness"] < 3 * by["always"]["mean_staleness"] \
        + 0.2
    benchmark.pedantic(run_monitoring, args=("ci",),
                       kwargs={"duration_s": 30.0}, rounds=1, iterations=1)


def test_failure_detection_latency_vs_echo_period(benchmark):
    """Echo packets bound detection latency by ~miss_limit x period."""
    rows = []
    for period in (2.0, 5.0, 10.0):
        latencies = []
        for seed in (1, 2, 3):
            vdce = nynet_testbed(seed=seed, hosts_per_site=3,
                                 with_loads=False, trace=True,
                                 echo_period_s=period)
            vdce.start()
            victim = vdce.world.host("syracuse/h1")
            crash_at = 7.0 + seed
            vdce.failures.crash_at(victim, when=crash_at)
            vdce.run(until=crash_at + period * 4 + 5)
            downs = list(vdce.tracer.query(category="gm:host-down"))
            assert downs, f"failure undetected at period {period}"
            latencies.append(downs[0].time - crash_at)
        rows.append({"echo_period_s": period,
                     "mean_latency_s": float(np.mean(latencies)),
                     "max_latency_s": float(np.max(latencies)),
                     "bound_s": 3 * period + 2 * 1.0})
    print_table("F6: failure-detection latency vs echo period", rows)
    for r in rows:
        assert r["max_latency_s"] <= r["bound_s"]
    # latency scales with the echo period
    assert rows[-1]["mean_latency_s"] > rows[0]["mean_latency_s"]
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_monitoring_overhead_scales_with_hosts(benchmark):
    """Total monitoring message rate grows linearly with host count."""
    rows = []
    for hosts in (2, 4, 8):
        vdce = nynet_testbed(seed=2, hosts_per_site=hosts, with_loads=False,
                             trace=False, filter_policy="always")
        vdce.start()
        vdce.run(until=60.0)
        msgs = vdce.network.stats.by_kind
        rows.append({"hosts": hosts * 2,
                     "load_reports": msgs.get("load-report", 0),
                     "echo_requests": msgs.get("echo-request", 0)})
    print_table("F6: monitoring message volume vs environment size", rows)
    assert rows[2]["load_reports"] == 4 * rows[0]["load_reports"]
    assert rows[2]["echo_requests"] == 4 * rows[0]["echo_requests"]
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
