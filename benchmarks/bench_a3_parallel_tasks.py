"""A3 — parallel tasks are scheduled within one site.

Paper section 2.2.1: "For parallel tasks, the host selection algorithm is
updated to select the number of machines required within the site.  By
scheduling the parallel task execution within a site, the inter-site
communication overhead for parallel tasks is removed."

The experiment compares the realized makespan of the VDCE placement
(all participants in one site) against a deliberately-spread placement
(participants straddling the WAN), charging the spread variant the
inter-site synchronisation cost a parallel kernel would actually pay.
"""

import pytest

from repro import VDCE, ATM_OC3, HostSpec, T1_WAN
from repro.scheduling import AllocationEntry, HostSelector
from repro.workloads import linear_solver_graph

from _common import print_table


def homogeneous_two_sites(wan=T1_WAN, hosts=3):
    vdce = VDCE(seed=6, trace=False)
    vdce.add_site("syracuse")
    vdce.add_site("rome")
    vdce.connect_sites("syracuse", "rome", wan)
    for i in range(hosts):
        vdce.add_host("syracuse", HostSpec(name=f"h{i}", memory_mb=256))
        vdce.add_host("rome", HostSpec(name=f"h{i}", memory_mb=256))
    vdce.start()
    return vdce


def parallel_lu_times(vdce, n=200, processors=2):
    """(within-site time, cross-site time) for the parallel LU task."""
    graph = linear_solver_graph(vdce.registry, n=n, parallel_lu=True,
                                lu_processors=processors)
    node = graph.node("lu")
    selector = HostSelector(vdce.repositories["syracuse"])
    choice = selector.select_for_task(node)
    assert len({h.split("/")[0] for h in choice.hosts}) == 1

    def kernel_time(hosts):
        base = max(vdce.model.dedicated_duration(
            node.definition, n, vdce.world.host(h), processors=processors)
            for h in hosts)
        # per-iteration synchronisation: a cubic kernel on an N x N matrix
        # exchanges boundary rows every step; charge one round-trip of the
        # slowest link between participants per N steps.
        sites = {h.split("/")[0] for h in hosts}
        if len(sites) == 1:
            sync = vdce.topology.lan("syracuse").latency_s * 2 * n
        else:
            a, b = sorted(sites)
            sync = vdce.topology.latency(a, b) * 2 * n
        return base + sync

    within = kernel_time(choice.hosts)
    spread = kernel_time(("syracuse/h0", "rome/h0"))
    return within, spread


def test_within_site_beats_cross_site_parallel(benchmark):
    rows = []
    for wan_name, wan in (("ATM OC-3", ATM_OC3), ("T1", T1_WAN)):
        vdce = homogeneous_two_sites(wan=wan)
        within, spread = parallel_lu_times(vdce)
        rows.append({"wan": wan_name, "within_site_s": within,
                     "cross_site_s": spread,
                     "penalty": spread / within})
    print_table("A3: parallel LU placement (2 processors, n=200)", rows)
    for r in rows:
        assert r["cross_site_s"] > r["within_site_s"]
    # the slower the WAN, the bigger the co-location win
    assert rows[1]["penalty"] > rows[0]["penalty"]
    benchmark.pedantic(homogeneous_two_sites, rounds=1, iterations=1)


@pytest.mark.parametrize("processors", [2, 3])
def test_selector_never_straddles_sites(benchmark, processors):
    vdce = homogeneous_two_sites(hosts=4)
    graph = linear_solver_graph(vdce.registry, n=150, parallel_lu=True,
                                lu_processors=processors)
    for site in ("syracuse", "rome"):
        choice = HostSelector(vdce.repositories[site]).select_for_task(
            graph.node("lu"))
        sites = {h.split("/")[0] for h in choice.hosts}
        assert sites == {site}
        assert len(choice.hosts) == processors
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_end_to_end_parallel_run_stays_in_one_site(benchmark):
    vdce = homogeneous_two_sites(hosts=4)
    graph = linear_solver_graph(vdce.registry, n=150, parallel_lu=True)
    run = vdce.run_application(graph, "syracuse", k_remote_sites=1,
                               max_sim_time_s=3600)
    assert run.status == "completed"
    entry = run.table.get("lu")
    assert len({h.split("/")[0] for h in entry.hosts}) == 1
    print_table("A3: end-to-end parallel run", [
        {"lu_hosts": ",".join(entry.hosts),
         "makespan_s": run.makespan,
         "residual": run.results()["verify"]["norm"]}])
    assert run.results()["verify"]["norm"] < 1e-8
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
