"""A6 — sustained multi-application load (beyond the paper's single-app
prototype).

The paper's federation claims implicitly extend to streams of
applications.  This experiment drives the open-loop workload player at
increasing offered load and reports the classic saturation curve: mean
makespan flat while capacity holds, then rising steeply as queueing
dominates — and shows that consulting remote sites (k=1) pushes the knee
out relative to local-only scheduling.
"""

from repro.workloads import (
    WorkloadPlayer,
    fourier_pipeline_graph,
    linear_solver_graph,
    quiet_testbed,
)

from _common import print_table


def run_session(interarrival_s: float, k: int, count: int = 6,
                seed: int = 7, heavy: bool = False,
                monitor_period_s: float = 2.0):
    vdce = quiet_testbed(seed=seed, monitor_period_s=monitor_period_s)
    vdce.start()
    if heavy:
        # long tasks (~seconds each) so the monitoring pipeline has time
        # to report the load the stream itself creates
        factory = lambda i: linear_solver_graph(vdce.registry, n=150,  # noqa: E731
                                                seed=i)
    else:
        factory = lambda i: fourier_pipeline_graph(vdce.registry, n=8192,  # noqa: E731
                                                   stages=4)
    player = WorkloadPlayer(
        vdce, factory,
        mean_interarrival_s=interarrival_s,
        local_sites=["syracuse"], k_remote_sites=k)
    return player.play(count=count, drain_s=14400)


def test_saturation_curve(benchmark):
    rows = []
    for interarrival in (60.0, 5.0, 1.0, 0.2):
        report = run_session(interarrival, k=1)
        assert report.completed == report.submitted
        rows.append({
            "mean_interarrival_s": interarrival,
            "mean_makespan_s": report.mean_makespan_s,
            "p95_makespan_s": report.p95_makespan_s,
            "throughput_per_min": report.throughput_per_min,
        })
    print_table("A6: saturation under open-loop load (k=1)", rows)
    # light load: makespans near the solo value; heavy load: queueing bites
    assert rows[-1]["mean_makespan_s"] > rows[0]["mean_makespan_s"] * 1.5
    # makespan is monotone-ish in offered load (allow small noise)
    assert rows[-1]["mean_makespan_s"] >= rows[1]["mean_makespan_s"] * 0.9
    benchmark.pedantic(run_session, args=(5.0, 1), kwargs={"count": 3},
                       rounds=1, iterations=1)


def test_federation_needs_fresh_monitoring(benchmark):
    """The distributed-scheduling classic: offloading on *stale* load
    information oscillates (every submission sees the remote site idle,
    herds there, and overloads it), so federated scheduling only beats
    local-only once the monitoring pipeline reports fast enough relative
    to the arrival rate.  Ties A6 back to F6's staleness story."""
    rows = []
    configs = [
        ("local-only", 0, 2.0),
        ("federated, 2s monitors", 1, 2.0),
        ("federated, 0.25s monitors", 1, 0.25),
    ]
    for label, k, period in configs:
        report = run_session(2.0, k=k, heavy=True,
                             monitor_period_s=period)
        remote = sum(r.table.remote_fraction("syracuse")
                     for r in report.runs if r.table) / max(
            len(report.runs), 1)
        rows.append({"scheduler": label,
                     "mean_makespan_s": report.mean_makespan_s,
                     "p95_makespan_s": report.p95_makespan_s,
                     "remote_fraction": remote})
    print_table("A6: heavy stream — offloading vs monitoring freshness",
                rows)
    local, stale, fresh = rows
    assert local["remote_fraction"] == 0.0
    assert stale["remote_fraction"] > 0.1   # offloading happened
    # fresh monitoring makes federation pay off vs both alternatives
    assert fresh["mean_makespan_s"] < local["mean_makespan_s"]
    assert fresh["mean_makespan_s"] < stale["mean_makespan_s"]
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
