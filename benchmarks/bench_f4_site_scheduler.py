"""F4 — paper Figure 4: the Site Scheduler Algorithm.

Quantifies the algorithm the figure lists: communication-aware,
prediction-driven site assignment vs baselines, across DAG families, and
the effect of the neighbourhood size ``k`` (step 2's "select k nearest
VDCE neighbor sites").

Expected shape (the paper's implicit claims):
* the VDCE scheduler beats random / round-robin / reported-load-only
  placement on a loaded heterogeneous testbed;
* k > 0 helps when the local site is saturated (offload) and does not
  hurt when it is idle (transfer-time term keeps chains local);
* communication-heavy chains stay co-located.
"""

import numpy as np
import pytest

from repro.prediction import PerformancePredictor
from repro.scheduling import (
    HostSelector,
    MinLoadScheduler,
    RandomScheduler,
    RoundRobinScheduler,
    SiteScheduler,
)
from repro.workloads import (
    c3i_scenario_graph,
    fork_join_graph,
    fourier_pipeline_graph,
    linear_solver_graph,
    nynet_testbed,
    wide_area_testbed,
)

from _common import print_table, realized_makespan


def loaded_testbed(seed: int):
    vdce = nynet_testbed(seed=seed, hosts_per_site=4, with_loads=True,
                         trace=False)
    vdce.start()
    vdce.warm_up(40.0)
    return vdce


def vdce_table(vdce, graph, k: int = 1, local: str = "syracuse",
               predictor_kwargs=None):
    selectors = {
        site: HostSelector(repo, predictor=PerformancePredictor(
            repo.task_performance, **(predictor_kwargs or {})))
        for site, repo in vdce.repositories.items()
    }
    table, _ = SiteScheduler(local, vdce.topology,
                             k_remote_sites=k).schedule_with_selectors(
        graph, selectors)
    return table


GRAPHS = {
    "linear-solver": lambda reg: linear_solver_graph(reg, n=200),
    "fourier-pipeline": lambda reg: fourier_pipeline_graph(reg, n=8192,
                                                           stages=4),
    "fork-join": lambda reg: fork_join_graph(reg, width=4, size=4096),
    "c3i": lambda reg: c3i_scenario_graph(reg, targets=200, steps=30),
}


def test_scheduler_vs_baselines(benchmark):
    """The headline comparison, geometric-mean over families and seeds."""
    ratios: dict[str, list[float]] = {}
    rows = []
    for family, make in GRAPHS.items():
        per_sched: dict[str, list[float]] = {}
        for seed in (1, 2, 3):
            vdce = loaded_testbed(seed)
            graph = make(vdce.registry)
            tables = {
                "vdce": vdce_table(vdce, graph, k=1),
                "random": RandomScheduler(
                    vdce.repositories,
                    np.random.default_rng(seed)).schedule(graph),
                "round-robin": RoundRobinScheduler(
                    vdce.repositories).schedule(graph),
                "min-load": MinLoadScheduler(
                    vdce.repositories).schedule(graph),
            }
            for name, table in tables.items():
                per_sched.setdefault(name, []).append(
                    realized_makespan(vdce, graph, table))
        means = {name: float(np.mean(vals))
                 for name, vals in per_sched.items()}
        row = {"family": family}
        row.update({name: means[name] / means["vdce"] for name in means})
        rows.append(row)
        for name, value in row.items():
            if name != "family":
                ratios.setdefault(name, []).append(value)
    print_table("F4: realized makespan relative to the VDCE scheduler "
                "(1.0 = VDCE; higher = slower)", rows,
                order=["family", "vdce", "min-load", "round-robin",
                       "random"])
    # Shape: the paper's scheduler wins clearly on deep/chain-dominated
    # graphs; on wide shallow graphs (fork-join, c3i) the greedy per-task
    # walk of Figure 4 can pile independent tasks onto the one
    # predicted-fastest host, so spreading baselines roughly tie there —
    # a real property of the paper's algorithm, recorded in
    # EXPERIMENTS.md.  No baseline may beat it by more than ~10%, and on
    # geometric mean across families VDCE must win.
    for row in rows:
        assert row["random"] > 0.90
        assert row["round-robin"] > 0.90
        assert row["min-load"] > 0.90
    for deep in ("linear-solver", "fourier-pipeline"):
        row = next(r for r in rows if r["family"] == deep)
        assert row["random"] > 1.3
    gmeans = {name: float(np.exp(np.mean(np.log(vals))))
              for name, vals in ratios.items()}
    assert gmeans["random"] > 1.2
    assert gmeans["min-load"] > 1.2
    benchmark.pedantic(lambda: vdce_table(loaded_testbed(1),
                                          GRAPHS["linear-solver"](
                                              loaded_testbed(1).registry)),
                       rounds=1, iterations=1)


def test_k_sweep_saturated_local_site(benchmark):
    """Offload benefit: with the local site saturated, growing k reduces
    realized makespan until the WAN transfer cost flattens it."""
    rows = []
    for k in (0, 1, 2, 3):
        vdce = wide_area_testbed(n_sites=4, hosts_per_site=3, seed=4,
                                 with_loads=False, trace=False)
        vdce.start()
        for host in vdce.world.all_hosts():
            if host.site == "site0":
                host.true_load = 20.0
        vdce.warm_up(30.0)
        graph = linear_solver_graph(vdce.registry, n=200)
        table = vdce_table(vdce, graph, k=k, local="site0")
        rows.append({"k": k,
                     "makespan_s": realized_makespan(vdce, graph, table),
                     "remote_fraction": table.remote_fraction("site0")})
    print_table("F4: k-nearest-sites sweep (local site saturated)", rows)
    assert rows[0]["remote_fraction"] == 0.0
    assert rows[1]["makespan_s"] < rows[0]["makespan_s"] / 2
    assert all(r["remote_fraction"] > 0.5 for r in rows[1:])
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_k_does_not_hurt_idle_local_site(benchmark):
    """With an idle local site, consulting remote sites must not degrade
    the schedule (the transfer-time term keeps work local)."""
    makespans = []
    for k in (0, 2):
        vdce = wide_area_testbed(n_sites=3, hosts_per_site=3, seed=6,
                                 with_loads=False, trace=False)
        vdce.start()
        graph = fourier_pipeline_graph(vdce.registry, n=8192, stages=4)
        table = vdce_table(vdce, graph, k=k, local="site0")
        makespans.append(realized_makespan(vdce, graph, table))
    print_table("F4: idle local site", [
        {"k": 0, "makespan_s": makespans[0]},
        {"k": 2, "makespan_s": makespans[1]}])
    assert makespans[1] <= makespans[0] * 1.10
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_communication_heavy_chain_stays_colocated(benchmark):
    """Figure 4's design intent: 'schedule the application tasks within a
    site ... to decrease the inter-task communication time'."""
    vdce = nynet_testbed(seed=9, hosts_per_site=4, with_loads=False,
                         trace=False)
    vdce.start()
    graph = fourier_pipeline_graph(vdce.registry, n=200_000, stages=5)
    table = vdce_table(vdce, graph, k=1)
    sites = [table.get(nid).site for nid in graph.topological_order()]
    crossings = sum(1 for a, b in zip(sites, sites[1:]) if a != b)
    print_table("F4: co-location of a communication-heavy chain", [
        {"chain_length": len(sites), "site_crossings": crossings}])
    assert crossings <= 1
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
