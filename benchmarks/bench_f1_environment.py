"""F1 — paper Figure 1: the multi-site VDCE environment.

Regenerates the figure's content as behaviour: construct N-site wide-area
environments (sites, groups, servers, daemons), measure construction
cost, and exercise one inter-site coordination round (AFG multicast +
host-selection gather) per environment size.  The paper's claim is
architectural — a site-per-region federation with server-mediated
coordination scales over a WAN; the series here shows coordination cost
growing with consulted sites while staying WAN-latency-bound.
"""

import pytest

from repro.workloads import fourier_pipeline_graph, wide_area_testbed

from _common import print_table


def build(n_sites: int, hosts_per_site: int = 3):
    vdce = wide_area_testbed(n_sites=n_sites, hosts_per_site=hosts_per_site,
                             seed=1, with_loads=False, trace=False)
    vdce.start()
    return vdce


def coordination_round(vdce, k: int) -> float:
    """Simulated seconds for one message-level scheduling round."""
    graph = fourier_pipeline_graph(vdce.registry, n=1024, stages=2)
    sm = vdce.site_managers["site0"]
    t0 = vdce.now
    proc = vdce.env.process(sm.schedule_application(graph,
                                                    k_remote_sites=k))
    while not proc.triggered:
        vdce.env.step()  # event-exact: stop at the completion instant
    assert proc.ok
    return vdce.now - t0


@pytest.mark.parametrize("n_sites", [2, 4, 8])
def test_environment_construction(benchmark, n_sites):
    """Wall-clock cost of building + starting an N-site environment."""
    vdce = benchmark(build, n_sites)
    assert len(vdce.world.sites) == n_sites
    assert len(vdce.monitors) == 3 * n_sites
    benchmark.extra_info["sites"] = n_sites
    benchmark.extra_info["hosts"] = 3 * n_sites


def test_intersite_coordination_series(benchmark):
    """Simulated coordination latency vs number of consulted sites."""
    rows = []
    for n_sites, k in [(2, 1), (4, 3), (8, 7)]:
        vdce = build(n_sites)
        elapsed = coordination_round(vdce, k)
        msgs = vdce.network.stats.by_kind
        rows.append({
            "sites": n_sites, "k_remote": k,
            "coordination_s": elapsed,
            "afg_multicasts": msgs.get("afg-multicast", 0),
            "selection_replies": msgs.get("host-selection-reply", 0),
        })
    print_table("F1: inter-site coordination round", rows)
    # multicast fan-out must match k; latency grows with WAN depth
    assert [r["afg_multicasts"] for r in rows] == [1, 3, 7]
    assert rows[-1]["coordination_s"] > rows[0]["coordination_s"]
    # the round stays message-latency bound (well under a second of
    # simulated time even at 8 sites on a T1 chain)
    assert rows[-1]["coordination_s"] < 2.0

    benchmark(coordination_round, build(4), 3)


def test_site_manager_bridges_modules(benchmark):
    """Figure 1's 'site manager bridges modules to the repository': a
    full submit touches the repository through the Site Manager only."""
    vdce = build(2)

    def run_once():
        graph = fourier_pipeline_graph(vdce.registry, n=512, stages=1)
        return vdce.run_application(graph, "site0", k_remote_sites=1,
                                    max_sim_time_s=600)

    run = benchmark.pedantic(run_once, rounds=1, iterations=1)
    assert run.status == "completed"
    tp = vdce.repositories["site0"].task_performance
    assert any(tp.history(t) for t in ("fft-1d", "signal-generate"))
