"""A1 — ablation of the prediction function's terms.

Paper section 2.2.1: "The core of the given built-in scheduling
algorithms is the performance prediction phase."  This experiment makes
that claim quantitative: schedule the same applications with each term of
Predict(task, R) disabled — the computing-power weight, the forecast
load, the memory penalty — and with everything disabled (base-time-only),
and report the realized-makespan degradation.
"""

import numpy as np

from repro.prediction import PerformancePredictor
from repro.scheduling import HostSelector, SiteScheduler
from repro.workloads import (
    c3i_scenario_graph,
    fourier_pipeline_graph,
    linear_solver_graph,
    nynet_testbed,
)

from _common import print_table

VARIANTS = {
    "full": {},
    "no-weight": {"use_weight": False},
    "no-load": {"use_load": False},
    "no-memory": {"use_memory": False},
    "base-time-only": {"use_weight": False, "use_load": False,
                       "use_memory": False},
}

GRAPHS = {
    "linear-solver": lambda reg: linear_solver_graph(reg, n=200),
    "fourier-pipeline": lambda reg: fourier_pipeline_graph(reg, n=8192,
                                                           stages=4),
    "c3i": lambda reg: c3i_scenario_graph(reg, targets=200, steps=30),
}


def schedule_with(vdce, graph, variant_kwargs):
    selectors = {
        site: HostSelector(repo, predictor=PerformancePredictor(
            repo.task_performance, **variant_kwargs))
        for site, repo in vdce.repositories.items()
    }
    table, _ = SiteScheduler("syracuse", vdce.topology,
                             k_remote_sites=1).schedule_with_selectors(
        graph, selectors)
    return table


def test_prediction_term_ablation(benchmark):
    from _common import realized_makespan
    per_variant: dict[str, list[float]] = {v: [] for v in VARIANTS}
    for family, make in GRAPHS.items():
        for seed in (1, 2, 3):
            vdce = nynet_testbed(seed=seed, hosts_per_site=4,
                                 with_loads=True, trace=False)
            vdce.start()
            vdce.warm_up(40.0)
            graph = make(vdce.registry)
            full = realized_makespan(
                vdce, graph, schedule_with(vdce, graph, VARIANTS["full"]))
            for variant, kwargs in VARIANTS.items():
                table = schedule_with(vdce, graph, kwargs)
                per_variant[variant].append(
                    realized_makespan(vdce, graph, table) / full)
    rows = [{"variant": v,
             "gmean_slowdown": float(np.exp(np.mean(np.log(r)))),
             "worst_slowdown": float(np.max(r))}
            for v, r in per_variant.items()]
    print_table("A1: Predict(task, R) term ablation "
                "(realized makespan / full predictor)", rows)
    by = {r["variant"]: r for r in rows}
    assert by["full"]["gmean_slowdown"] == 1.0
    # removing the task-specific weight hurts on a heterogeneous testbed
    assert by["no-weight"]["gmean_slowdown"] > 1.1
    # removing everything hurts at least as much as the worst single term
    assert by["base-time-only"]["gmean_slowdown"] >= max(
        by["no-weight"]["gmean_slowdown"],
        by["no-load"]["gmean_slowdown"]) * 0.9
    # no single ablation *helps* on average
    for variant in ("no-weight", "no-load", "no-memory", "base-time-only"):
        assert by[variant]["gmean_slowdown"] >= 0.97
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_load_term_matters_under_imbalance(benchmark):
    """Targeted: idle vs saturated identical hosts — only the load term
    can tell them apart."""
    from _common import realized_makespan
    from repro import VDCE, ATM_OC3, HostSpec
    vdce = VDCE(seed=9, trace=False)
    vdce.add_site("syracuse")
    vdce.add_site("rome")
    vdce.connect_sites("syracuse", "rome", ATM_OC3)
    for i in range(4):
        vdce.add_host("syracuse", HostSpec(name=f"h{i}"))
    vdce.add_host("rome", HostSpec(name="h0"))
    vdce.start()
    # saturate two of the four identical local hosts, plus the remote
    # host (which otherwise wins every tie-break for the blind variant)
    for addr in ("syracuse/h0", "syracuse/h1", "rome/h0"):
        vdce.world.host(addr).true_load = 10.0
    vdce.warm_up(30.0)
    graph = fourier_pipeline_graph(vdce.registry, n=8192, stages=4)
    with_load = realized_makespan(
        vdce, graph, schedule_with(vdce, graph, {}))
    without_load = realized_makespan(
        vdce, graph, schedule_with(vdce, graph, {"use_load": False}))
    print_table("A1: load term under imbalance", [
        {"variant": "with-load-term", "makespan_s": with_load},
        {"variant": "without-load-term", "makespan_s": without_load},
    ])
    assert with_load < without_load
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
