"""F7 — paper Figure 7: setting up the application execution environment.

Quantifies the figure's numbered protocol (Data Manager activation ->
communication-proxy channel setup -> acknowledgments -> execution startup
signal -> socket-based inter-task communications):

* setup latency (submission to start signal) vs channel count;
* inter-task transfer time vs message size over the modelled sockets;
* the data-conversion overhead when producer and consumer architectures
  differ (big- vs little-endian), absent on homogeneous pairs.
"""

import numpy as np

from repro import VDCE, ATM_OC3, HostSpec
from repro.net import CHANNEL_ACK, CHANNEL_SETUP, START_SIGNAL
from repro.workloads import fork_join_graph, quiet_testbed

from _common import print_table


def test_setup_latency_vs_channel_count(benchmark):
    """Figure 7 steps 1-5: more channels => more handshakes, but they run
    concurrently, so latency grows sub-linearly while message count grows
    linearly."""
    rows = []
    for width in (2, 4, 8):
        vdce = quiet_testbed(seed=2, hosts_per_site=5, trace=False)
        vdce.start()
        graph = fork_join_graph(vdce.registry, width=width, size=256)
        # Alternate site pins so the dataflow genuinely crosses machines
        # (otherwise the greedy scheduler co-locates the whole graph and
        # no wire channels are needed at all).
        for i, nid in enumerate(graph.topological_order()):
            graph.node(nid).properties.preferred_site = (
                "syracuse" if i % 2 == 0 else "rome")
        run = vdce.run_application(graph, "syracuse", k_remote_sites=1,
                                   max_sim_time_s=600)
        assert run.status == "completed"
        setups = vdce.network.stats.by_kind.get(CHANNEL_SETUP, 0)
        acks = vdce.network.stats.by_kind.get(CHANNEL_ACK, 0)
        starts = vdce.network.stats.by_kind.get(START_SIGNAL, 0)
        rows.append({
            "fanout": width, "tasks": len(graph),
            "links": len(graph.links),
            "channel_setups": setups,
            "acks": acks,
            "start_signals": starts,
            "setup_latency_s": run.started_at - run.scheduled_at,
        })
    print_table("F7: channel setup scaling", rows)
    assert rows[-1]["channel_setups"] > rows[0]["channel_setups"]
    # handshakes run concurrently: latency grows far slower than count
    assert rows[-1]["setup_latency_s"] < 3 * rows[0]["setup_latency_s"]
    # exactly one start signal per involved controller set
    assert all(r["start_signals"] >= 1 for r in rows)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_transfer_time_vs_message_size(benchmark):
    """Socket-based inter-task communication: latency-bound for small
    messages, bandwidth-bound for large ones."""
    from repro.net import Network, Topology
    from repro.resources import Host
    from repro.runtime.data.data_manager import ChannelSpec, DataManager
    from repro.simcore import Environment

    rows = []
    for size in (1e3, 1e5, 1e7):
        env = Environment()
        topo = Topology()
        topo.add_site("s1")
        topo.add_site("s2")
        topo.connect("s1", "s2", ATM_OC3)
        net = Network(env, topo)
        h1 = Host(spec=HostSpec(name="h1"), site="s1")
        h2 = Host(spec=HostSpec(name="h2"), site="s2")
        orders = {"s1/h1": "big", "s2/h2": "big"}
        dm1 = DataManager(env, net, h1, byte_orders=orders)
        dm2 = DataManager(env, net, h2, byte_orders=orders)
        spec = ChannelSpec(execution_id="e", src_node="a", src_port="o",
                           src_host="s1/h1", dst_node="b", dst_port="i",
                           dst_host="s2/h2")
        env.run(until=env.process(dm1.setup_channels([spec])))
        t0 = env.now
        arrival = {}

        def consumer(env):
            yield dm2.receive("e", "b", "i")
            arrival["t"] = env.now

        env.process(consumer(env))
        env.process(dm1.send_output(spec, None, size))
        env.run()
        elapsed = arrival["t"] - t0
        rows.append({"bytes": int(size), "transfer_s": elapsed,
                     "effective_MBps": size / elapsed / 1e6})
    print_table("F7: inter-task transfer time vs message size", rows)
    # small messages latency-bound (≈ WAN latency); big ones bandwidth-bound
    assert rows[0]["transfer_s"] < 0.01
    assert rows[-1]["transfer_s"] > 0.3  # 10 MB over OC-3 ≈ 0.5s
    assert rows[-1]["effective_MBps"] < 155 / 8 * 1.1
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_conversion_overhead_heterogeneous(benchmark):
    """Heterogeneous endpoints pay the modelled byteswap; homogeneous
    pairs do not — and the numeric payload survives either way."""

    def run_pair(dst_arch: str, dst_os: str):
        vdce = VDCE(seed=4, trace=False)
        vdce.add_site("s1")
        vdce.add_site("s2")
        vdce.connect_sites("s1", "s2", ATM_OC3)
        vdce.add_host("s1", HostSpec(name="h1", arch="sparc", os="solaris"))
        vdce.add_host("s2", HostSpec(name="h1", arch=dst_arch, os=dst_os))
        vdce.start()
        from repro.afg import GraphBuilder
        b = GraphBuilder(vdce.registry, name="pair")
        b.task("matrix-generate", "g", input_size=300, params={"n": 300})
        b.task("matrix-transpose", "t", input_size=300)
        b.link("g", "t")
        g = b.build()
        g.node("g").properties.preferred_site = "s1"
        g.node("t").properties.preferred_site = "s2"
        run = vdce.run_application(g, "s1", k_remote_sites=1,
                                   max_sim_time_s=600)
        assert run.status == "completed"
        dm = vdce.data_managers["s1/h1"]
        out = run.results()["t"]["transposed"]
        return dm.stats.conversions, dm.stats.conversion_time_s, out

    conv_n, conv_t, out_hetero = run_pair("x86", "linux")
    same_n, same_t, out_homo = run_pair("sparc", "solaris")
    print_table("F7: data-conversion overhead", [
        {"pair": "sparc->x86 (big->little)", "conversions": conv_n,
         "conversion_s": conv_t},
        {"pair": "sparc->sparc (big->big)", "conversions": same_n,
         "conversion_s": same_t},
    ])
    assert conv_n >= 1 and conv_t > 0
    assert same_n == 0 and same_t == 0
    np.testing.assert_allclose(out_hetero, out_homo)
    benchmark.pedantic(run_pair, args=("x86", "linux"), rounds=1,
                       iterations=1)
