"""A5 — queue-aware scheduling (beyond-paper extension).

F4 shows the published Site Scheduler's weakness: the walk is
*queue-blind* for independent tasks of the same application — every ready
task sees the same predicted-fastest host, so wide shallow graphs pile up
on it.  The ``queue_aware=True`` extension tracks per-host committed work
during the walk and consults each site's ranked alternative hosts.

Expected shape: no change on chain-dominated graphs (there is no pile-up
to fix), a clear win on wide graphs, closing the gap to the spreading
baselines while keeping the prediction advantage.
"""

import numpy as np

from repro.scheduling import (
    HeftScheduler,
    HostSelector,
    RoundRobinScheduler,
    SiteScheduler,
)
from repro.workloads import (
    c3i_scenario_graph,
    fork_join_graph,
    fourier_pipeline_graph,
    linear_solver_graph,
    nynet_testbed,
)

from _common import print_table, realized_makespan

GRAPHS = {
    "linear-solver": lambda reg: linear_solver_graph(reg, n=200),
    "fourier-pipeline": lambda reg: fourier_pipeline_graph(reg, n=8192,
                                                           stages=4),
    "fork-join": lambda reg: fork_join_graph(reg, width=6, size=4096),
    "c3i": lambda reg: c3i_scenario_graph(reg, targets=200, steps=30),
}


def schedule(vdce, graph, queue_aware: bool):
    selectors = {site: HostSelector(repo)
                 for site, repo in vdce.repositories.items()}
    sched = SiteScheduler("syracuse", vdce.topology, k_remote_sites=1,
                          queue_aware=queue_aware)
    table, _ = sched.schedule_with_selectors(graph, selectors)
    return table


def test_queue_awareness_fixes_wide_graphs(benchmark):
    rows = []
    wins = {}
    for family, make in GRAPHS.items():
        paper, aware, rr, heft = [], [], [], []
        for seed in (1, 2, 3):
            vdce = nynet_testbed(seed=seed, hosts_per_site=4,
                                 with_loads=True, trace=False)
            vdce.start()
            vdce.warm_up(40.0)
            graph = make(vdce.registry)
            paper.append(realized_makespan(
                vdce, graph, schedule(vdce, graph, queue_aware=False)))
            aware.append(realized_makespan(
                vdce, graph, schedule(vdce, graph, queue_aware=True)))
            rr.append(realized_makespan(
                vdce, graph,
                RoundRobinScheduler(vdce.repositories).schedule(graph)))
            heft.append(realized_makespan(
                vdce, graph,
                HeftScheduler(vdce.repositories,
                              vdce.topology).schedule(graph)))
        ratio = float(np.mean(paper)) / float(np.mean(aware))
        rows.append({
            "family": family,
            "paper_s": float(np.mean(paper)),
            "queue_aware_s": float(np.mean(aware)),
            "improvement": ratio,
            "round_robin_s": float(np.mean(rr)),
            "heft_s": float(np.mean(heft)),
        })
        wins[family] = ratio
    print_table("A5: queue-aware extension vs the paper's greedy walk "
                "(HEFT = the authors' 1999 successor)", rows)
    # HEFT and the queue-aware walk land in the same league (both are
    # EFT-based); neither is > 1.5x worse than the other on any family
    for row in rows:
        assert row["heft_s"] < row["queue_aware_s"] * 1.6
        assert row["queue_aware_s"] < row["heft_s"] * 1.6
    # wide shallow graphs improve noticeably ...
    assert wins["fork-join"] > 1.15 or wins["c3i"] > 1.15
    # ... and nothing gets meaningfully worse
    for family, ratio in wins.items():
        assert ratio > 0.97, family
    # queue-aware now also beats the spreading baseline on wide graphs
    for row in rows:
        if row["family"] in ("fork-join", "c3i"):
            assert row["queue_aware_s"] < row["round_robin_s"] * 1.05
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_queue_awareness_spreads_independent_tasks(benchmark):
    """Direct mechanism check: N independent identical tasks land on N
    distinct hosts instead of one."""
    from repro.afg import GraphBuilder
    vdce = nynet_testbed(seed=11, hosts_per_site=4, with_loads=False,
                         trace=False)
    vdce.start()
    b = GraphBuilder(vdce.registry, name="independent")
    for i in range(4):
        b.task("signal-generate", f"s{i}", input_size=4096,
               params={"n": 4096})
    graph = b.build()
    blind = schedule(vdce, graph, queue_aware=False)
    aware = schedule(vdce, graph, queue_aware=True)
    rows = [{"variant": "paper (queue-blind)",
             "distinct_hosts": len(blind.hosts())},
            {"variant": "queue-aware",
             "distinct_hosts": len(aware.hosts())}]
    print_table("A5: placement of 4 independent tasks", rows)
    assert len(blind.hosts()) == 1   # the published behaviour
    assert len(aware.hosts()) >= 3   # the extension spreads
    benchmark.pedantic(lambda: schedule(vdce, graph, True), rounds=3,
                       iterations=1)
