"""F2 — paper Figure 2: interactions among the VDCE modules.

Regenerates the figure's pipeline as a measured latency breakdown: the
Application Editor emits the AFG; the Application Scheduler (multicast +
host selection + site walk) produces the resource allocation table; the
Runtime System distributes the table, sets up channels, and executes.
The series reports simulated seconds per stage — the architectural claim
is that scheduling/setup overhead is small next to execution.
"""

import pytest

from repro.afg import TaskProperties
from repro.workloads import linear_solver_graph, quiet_testbed

from _common import print_table


def staged_run(n: int, seed: int = 2):
    vdce = quiet_testbed(seed=seed, trace=False)
    vdce.start()
    # stage 1: editor (programmatic build of the Figure 3 application)
    editor = vdce.open_editor("vdce", "vdce", "pipeline-app")
    graph = linear_solver_graph(vdce.registry, n=n)
    # stage 2-4: schedule / distribute+setup / execute, timed on the
    # simulated clock by the run record
    run = vdce.run_application(graph, "syracuse", k_remote_sites=1,
                               max_sim_time_s=3600)
    assert run.status == "completed"
    return vdce, run, editor


class TestPipelineBreakdown:
    def test_stage_latencies(self, benchmark):
        rows = []
        for n in (50, 100, 200):
            vdce, run, _ = staged_run(n)
            setup_s = run.started_at - run.scheduled_at
            first_start = min(p["started_s"]
                              for p in run.completions.values())
            rows.append({
                "n": n,
                "schedule_s": run.scheduling_time,
                "distribute_setup_s": first_start - run.scheduled_at,
                "execute_s": run.finished_at - first_start,
                "makespan_s": run.makespan,
            })
        print_table("F2: module-interaction latency breakdown", rows)
        for r in rows:
            # scheduling + setup overhead stays small vs execution
            overhead = r["schedule_s"] + r["distribute_setup_s"]
            assert overhead < 0.25 * r["execute_s"] + 0.1
        # execution grows cubically with n; scheduling does not
        assert rows[-1]["execute_s"] > 8 * rows[0]["execute_s"] * 0.5
        assert rows[-1]["schedule_s"] < 4 * rows[0]["schedule_s"] + 0.05

        benchmark.pedantic(staged_run, args=(100,), rounds=1, iterations=1)

    def test_repository_touched_per_stage(self, benchmark):
        """Figure 2's arrows into the repository: selection reads the
        task/resource DBs; completion writes task-performance history."""
        vdce, run, _ = staged_run(60)
        tp = vdce.repositories["syracuse"].task_performance
        executed_tasks = {p["task_name"] for p in run.completions.values()}
        recorded = {t for t in executed_tasks if tp.history(t)}
        # at least the locally-executed tasks got their newly measured
        # execution times stored (remote ones land in rome's repository)
        local_hosts = {h for h in run.table.hosts()
                       if h.startswith("syracuse/")}
        assert recorded or not local_hosts
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_editor_to_afg_cost(benchmark):
    """Wall-clock cost of the editor stage alone (graph construction)."""
    from repro.tasklib import standard_registry
    registry = standard_registry()
    graph = benchmark(linear_solver_graph, registry, 100)
    assert len(graph) == 8


def test_full_pipeline_wallclock(benchmark):
    """Wall-clock cost of one complete pipeline trip (n=100)."""
    result = benchmark.pedantic(staged_run, args=(100,), rounds=3,
                                iterations=1)
    vdce, run, _ = result
    assert run.results()["verify"]["norm"] < 1e-8
