"""A4 — workload forecasting techniques.

Paper section 2.2.1: "The current workload parameters are computed using
forecasting techniques based on a window of most recent workload
measurements."  The experiment measures (a) one-step-ahead forecast error
of each technique on three synthetic load-trace regimes, and (b) the
adaptive (NWS-style) forecaster's ability to track the per-regime best.
"""

import numpy as np

from repro.prediction.forecasting import (
    AdaptiveForecaster,
    EWMAForecaster,
    LastValueForecaster,
    MeanForecaster,
    TrendForecaster,
)

from _common import print_table

FORECASTERS = {
    "last-value": LastValueForecaster(),
    "mean": MeanForecaster(),
    "ewma": EWMAForecaster(0.4),
    "trend": TrendForecaster(),
    "adaptive": AdaptiveForecaster(),
}


def make_traces(length=200, seed=0) -> dict[str, np.ndarray]:
    rng = np.random.default_rng(seed)
    stable = np.clip(0.5 + 0.05 * rng.standard_normal(length), 0, None)
    # mean-reverting random walk
    walk = np.empty(length)
    walk[0] = 0.5
    for i in range(1, length):
        walk[i] = max(0.0, walk[i - 1] + 0.2 * (0.5 - walk[i - 1])
                      + 0.15 * rng.standard_normal())
    ramp = np.clip(np.linspace(0.1, 2.0, length)
                   + 0.05 * rng.standard_normal(length), 0, None)
    onoff = np.where(rng.random(length) < 0.2, 1.5, 0.2) \
        + 0.02 * rng.standard_normal(length)
    return {"stable": stable, "random-walk": walk, "ramp": ramp,
            "bursty": np.clip(onoff, 0, None)}


def one_step_errors(trace: np.ndarray, window: int = 8) -> dict[str, float]:
    errors: dict[str, list[float]] = {name: [] for name in FORECASTERS}
    for i in range(3, len(trace)):
        win = list(trace[max(0, i - window):i])
        for name, fc in FORECASTERS.items():
            errors[name].append(abs(fc.forecast(win) - trace[i]))
    return {name: float(np.mean(v)) for name, v in errors.items()}


def test_forecaster_accuracy_by_regime(benchmark):
    traces = make_traces()
    rows = []
    for regime, trace in traces.items():
        errs = one_step_errors(trace)
        row = {"regime": regime}
        row.update(errs)
        rows.append(row)
    print_table("A4: mean one-step forecast error by regime", rows,
                order=["regime", "last-value", "mean", "ewma", "trend",
                       "adaptive"])
    by = {r["regime"]: r for r in rows}
    # on a ramp, trend wins over mean (which lags)
    assert by["ramp"]["trend"] < by["ramp"]["mean"]
    # on stable noise, mean beats last-value (which chases noise)
    assert by["stable"]["mean"] < by["stable"]["last-value"]
    # the adaptive forecaster is never far from the per-regime best
    for regime, row in by.items():
        best = min(row[name] for name in FORECASTERS)
        assert row["adaptive"] <= best * 1.6 + 0.02, regime
    benchmark.pedantic(one_step_errors, args=(traces["random-walk"],),
                       rounds=3, iterations=1)


def test_forecast_feeds_prediction_quality(benchmark):
    """A rising load trace: the trend forecaster sees the future load the
    mean forecaster underestimates, changing Predict() accordingly."""
    from repro.prediction import PerformancePredictor
    from repro.repository import ResourcePerformanceDB, TaskPerformanceDB
    from repro.prediction.calibration import register_tasks
    from repro.resources import HostSpec
    from repro.tasklib import standard_registry

    registry = standard_registry()
    tp = TaskPerformanceDB()
    register_tasks(tp, registry.all_tasks())
    rp = ResourcePerformanceDB()
    rp.register_host("s1", HostSpec(name="h1"))
    for i, load in enumerate(np.linspace(0.0, 2.0, 10)):
        rp.update_dynamic("s1/h1", float(load), 100.0, time=float(i))
    d = registry.resolve("fft-1d")
    rec = rp.get("s1/h1")
    est = {}
    for name, fc in (("mean", MeanForecaster()),
                     ("trend", TrendForecaster())):
        est[name] = PerformancePredictor(tp, forecaster=fc).predict(
            d, 1024, rec).estimate_s
    print_table("A4: forecaster choice changes Predict()", [
        {"forecaster": k, "estimate_s": v} for k, v in est.items()])
    # the trend forecaster anticipates the continuing rise
    assert est["trend"] > est["mean"]
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
