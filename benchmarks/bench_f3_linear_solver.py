"""F3 — paper Figure 3: the Linear Equation Solver case study.

Regenerates the figure's application exactly (LU -> two inversions ->
multiply -> solve) and measures:

* correctness: ``||Ax - b||`` at machine precision for every size;
* makespan vs matrix size (the cubic kernel dominates);
* the figure's property panel: parallel LU on two nodes beats sequential
  LU *for the LU task itself* on a homogeneous site (on heterogeneous
  machines a slow partner can cancel the gain — also shown).
"""

import pytest

from repro import VDCE, ATM_OC3, HostSpec
from repro.workloads import linear_solver_graph, quiet_testbed

from _common import print_table


def homogeneous_testbed(seed: int = 5, hosts: int = 4) -> VDCE:
    vdce = VDCE(seed=seed, trace=False)
    vdce.add_site("syracuse")
    vdce.add_site("rome")
    vdce.connect_sites("syracuse", "rome", ATM_OC3)
    for i in range(hosts):
        vdce.add_host("syracuse", HostSpec(name=f"sun{i}", arch="sparc",
                                           os="solaris", memory_mb=256))
        vdce.add_host("rome", HostSpec(name=f"sun{i}", arch="sparc",
                                       os="solaris", memory_mb=256))
    vdce.start()
    return vdce


class TestSolverScaling:
    def test_makespan_vs_matrix_size(self, benchmark):
        vdce = quiet_testbed(seed=5)
        vdce.start()
        rows = []
        for n in (50, 100, 150, 200):
            run = vdce.run_application(
                linear_solver_graph(vdce.registry, n=n), "syracuse",
                k_remote_sites=1, max_sim_time_s=3600)
            assert run.status == "completed"
            rows.append({"n": n, "makespan_s": run.makespan,
                         "residual": run.results()["verify"]["norm"]})
        print_table("F3: solver makespan vs matrix size", rows)
        for r in rows:
            assert r["residual"] < 1e-8
        # cubic growth: 4x size => ~64x kernel time (communication and
        # small tasks soften it; require > 20x)
        assert rows[-1]["makespan_s"] > 20 * rows[0]["makespan_s"]

        benchmark.pedantic(
            lambda: vdce.run_application(
                linear_solver_graph(vdce.registry, n=100), "syracuse",
                max_sim_time_s=3600),
            rounds=1, iterations=1)


class TestParallelLU:
    def test_parallel_panel_speeds_up_lu_on_homogeneous_site(self,
                                                             benchmark):
        rows = []
        for parallel in (False, True):
            vdce = homogeneous_testbed()
            run = vdce.run_application(
                linear_solver_graph(vdce.registry, n=200,
                                    parallel_lu=parallel),
                "syracuse", k_remote_sites=0, max_sim_time_s=3600)
            assert run.status == "completed"
            lu = run.completions["lu"]
            rows.append({
                "lu_mode": "parallel(2)" if parallel else "sequential",
                "lu_time_s": lu["elapsed_s"],
                "lu_hosts": len(run.table.get("lu").hosts),
                "makespan_s": run.makespan,
                "residual": run.results()["verify"]["norm"],
            })
        print_table("F3: Figure 3's parallel-LU property panel", rows)
        seq, par = rows
        assert par["lu_hosts"] == 2
        assert par["lu_time_s"] < seq["lu_time_s"]
        assert par["residual"] < 1e-8
        benchmark.pedantic(homogeneous_testbed, rounds=1, iterations=1)

    @pytest.mark.parametrize("processors", [2, 3, 4])
    def test_lu_scaling_with_processors(self, benchmark, processors):
        vdce = homogeneous_testbed()
        run = vdce.run_application(
            linear_solver_graph(vdce.registry, n=200, parallel_lu=True,
                                lu_processors=processors),
            "syracuse", k_remote_sites=0, max_sim_time_s=3600)
        assert run.status == "completed"
        benchmark.extra_info["processors"] = processors
        benchmark.extra_info["lu_time_s"] = run.completions["lu"]["elapsed_s"]
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        # Amdahl with e=0.85: speedup bounded but monotone
        assert run.completions["lu"]["elapsed_s"] < 2.0 * 8 * 0.9
