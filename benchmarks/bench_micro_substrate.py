"""Micro-benchmarks of the substrates (wall-clock throughput).

Not a paper figure: these keep the reproduction honest about its own
performance — the DES engine, the message codecs, graph construction,
level computation, and the prediction function are the inner loops of
every experiment, so regressions here inflate every other benchmark.
"""

import numpy as np
import pytest

from repro.prediction import PerformancePredictor, register_tasks
from repro.repository import ResourcePerformanceDB, TaskPerformanceDB
from repro.resources import HostSpec
from repro.runtime.data.messaging import MessageCodec
from repro.scheduling import compute_levels
from repro.simcore import Environment
from repro.tasklib import standard_registry
from repro.workloads import linear_solver_graph, random_layered_graph

REGISTRY = standard_registry()


def test_engine_event_throughput(benchmark):
    """Ping-pong processes: events processed per second."""

    def run_sim():
        env = Environment()

        def ponger(env, n):
            for _ in range(n):
                yield env.timeout(1.0)

        for _ in range(10):
            env.process(ponger(env, 200))
        env.run()
        return env.now

    result = benchmark(run_sim)
    assert result == 200.0


def test_store_throughput(benchmark):
    from repro.simcore import Store

    def run_sim():
        env = Environment()
        store = Store(env)
        received = []

        def producer(env):
            for i in range(500):
                store.put(i)
                yield env.timeout(0.001)

        def consumer(env):
            for _ in range(500):
                item = yield store.get()
                received.append(item)

        env.process(producer(env))
        env.process(consumer(env))
        env.run()
        return len(received)

    assert benchmark(run_sim) == 500


@pytest.mark.parametrize("dialect", ["vdce", "mpi"])
def test_codec_array_throughput(benchmark, dialect):
    codec = MessageCodec(dialect)
    arr = np.random.default_rng(0).standard_normal((256, 256))

    def roundtrip():
        return codec.decode(codec.encode(arr))

    out = benchmark(roundtrip)
    np.testing.assert_array_equal(out, arr)
    benchmark.extra_info["payload_mb"] = arr.nbytes / 1e6


def test_graph_construction_and_levels(benchmark):
    def build():
        graph = random_layered_graph(REGISTRY, layers=6, width=6, seed=3)
        return compute_levels(graph)

    levels = benchmark(build)
    assert len(levels) == 6 * 6 + 3


def test_prediction_function_throughput(benchmark):
    tp = TaskPerformanceDB()
    register_tasks(tp, REGISTRY.all_tasks())
    rp = ResourcePerformanceDB()
    for i in range(16):
        rp.register_host("s1", HostSpec(name=f"h{i}"))
        rp.update_dynamic(f"s1/h{i}", cpu_load=0.3 * i, available_memory_mb=64,
                          time=1.0)
    predictor = PerformancePredictor(tp)
    records = rp.all_records()
    d = REGISTRY.resolve("lu-decomposition")

    def sweep():
        return predictor.best_host(d, 200, records)

    best = benchmark(sweep)
    assert best.host == "s1/h0"  # least loaded identical host


def test_full_simulated_run_throughput(benchmark):
    """End-to-end wall-clock: one complete small application per call."""
    from repro.workloads import quiet_testbed

    def run_once():
        v = quiet_testbed(seed=63, trace=False)
        v.start()
        g = linear_solver_graph(v.registry, n=40)
        return v.run_application(g, "syracuse", max_sim_time_s=600)

    run = benchmark.pedantic(run_once, rounds=3, iterations=1)
    assert run.status == "completed"
