"""A2 — dynamic rescheduling under load spikes.

Paper section 2.3.1: "If the current load on any of these machines is
more than a predefined threshold value, the Application Controller
terminates the task execution on the machine and sends a task
rescheduling request" — i.e. rescheduling maintains the application's
performance/QoS when the environment degrades mid-run.

The experiment injects a large load spike onto the host running the
critical LU task and measures completion time with rescheduling enabled
(threshold 3) vs effectively disabled (threshold 10^9), plus a threshold
sweep showing the trade-off (too low => thrashing, too high => riding
out the spike).
"""

import numpy as np

from repro.resources.loads import SpikeLoad
from repro.scheduling.rescheduling import ReschedulePolicy
from repro.workloads import linear_solver_graph, nynet_testbed

from _common import print_table


def run_with_spike(threshold: float, seed: int = 23, n: int = 200,
                   spike_load: float = 30.0):
    vdce = nynet_testbed(seed=seed, hosts_per_site=3, with_loads=False,
                         trace=False,
                         reschedule_policy=ReschedulePolicy(
                             load_threshold=threshold, max_attempts=3))
    vdce.start()
    graph = linear_solver_graph(vdce.registry, n=n)
    process, run = vdce.submit(graph, "syracuse", k_remote_sites=1)
    while run.table is None:
        vdce.env.run(until=vdce.now + 0.5)
    victim = vdce.world.host(run.table.get("lu").host)
    SpikeLoad(vdce.env, victim, spikes=[(vdce.now + 0.1, 10_000.0,
                                         spike_load)])
    deadline = vdce.now + 20_000
    while not process.triggered and vdce.now < deadline:
        vdce.env.run(until=vdce.now + 10.0)
    return vdce, run


def test_rescheduling_rescues_spiked_application(benchmark):
    rows = []
    for label, threshold in (("enabled (thr=3)", 3.0),
                             ("disabled (thr=1e9)", 1e9)):
        vdce, run = run_with_spike(threshold)
        assert run.status == "completed"
        rows.append({"rescheduling": label,
                     "makespan_s": run.makespan,
                     "reschedules": run.reschedules})
    print_table("A2: load spike on the LU host", rows,
                order=["rescheduling", "makespan_s", "reschedules"])
    enabled, disabled = rows
    assert enabled["reschedules"] >= 1
    assert disabled["reschedules"] == 0
    # with a 30x load spike, riding it out is far slower than moving
    assert enabled["makespan_s"] < disabled["makespan_s"] / 3
    benchmark.pedantic(run_with_spike, args=(3.0,),
                       kwargs={"n": 100}, rounds=1, iterations=1)


def test_threshold_sweep(benchmark):
    rows = []
    for threshold in (1.5, 3.0, 8.0, 1e9):
        vdce, run = run_with_spike(threshold, spike_load=6.0)
        assert run.status == "completed"
        rows.append({"threshold": threshold if threshold < 1e8 else "off",
                     "makespan_s": run.makespan,
                     "reschedules": run.reschedules})
    print_table("A2: rescheduling threshold sweep (6x spike)", rows)
    makespans = [r["makespan_s"] for r in rows]
    # any active threshold below the spike beats doing nothing
    assert min(makespans[:3]) < makespans[3]
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_no_spike_no_rescheduling(benchmark):
    """The policy must not fire on a healthy run (no thrashing)."""
    vdce = nynet_testbed(seed=29, hosts_per_site=3, with_loads=False,
                         trace=False,
                         reschedule_policy=ReschedulePolicy(
                             load_threshold=3.0))
    vdce.start()
    graph = linear_solver_graph(vdce.registry, n=150)
    run = vdce.run_application(graph, "syracuse", k_remote_sites=1,
                               max_sim_time_s=3600)
    assert run.status == "completed"
    assert run.reschedules == 0
    print_table("A2: healthy-run control", [
        {"makespan_s": run.makespan, "reschedules": run.reschedules}])
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
