"""F5 — paper Figure 5: the Host Selection Algorithm.

Measures the within-site selection quality the figure's three steps
produce:

* prediction accuracy — Predict(task, R) vs the ground-truth dedicated
  duration, as a function of calibration coverage (the paper's "trial
  runs are required to obtain the computing power weights");
* regret — how much slower the chosen host is than the (oracle) best
  host, vs random and reported-load-only choices, under background load;
* constraint handling — machine-type preferences and the
  task-constraints DB shrink the candidate set without breaking
  selection.
"""

import numpy as np

from repro.prediction import PerformancePredictor
from repro.scheduling import HostSelector
from repro.workloads import linear_solver_graph, nynet_testbed

from _common import print_table


def make_testbed(seed=3, coverage=1.0):
    vdce = nynet_testbed(seed=seed, hosts_per_site=6, with_loads=True,
                         trace=False)
    vdce.start(calibration_coverage=coverage)
    vdce.warm_up(40.0)
    return vdce


def oracle_duration(vdce, node, host_addr: str) -> float:
    host = vdce.world.host(host_addr)
    return vdce.model.duration(node.definition, node.properties.input_size,
                               host)


def test_prediction_accuracy_vs_calibration(benchmark):
    """Mean |predicted - actual| / actual per calibration coverage."""
    rows = []
    for coverage in (0.0, 0.5, 1.0):
        vdce = make_testbed(seed=3, coverage=coverage)
        repo = vdce.repositories["syracuse"]
        predictor = PerformancePredictor(repo.task_performance)
        graph = linear_solver_graph(vdce.registry, n=150)
        errors = []
        for nid in graph.nodes:
            node = graph.node(nid)
            for rec in repo.resource_performance.hosts_at("syracuse"):
                p = predictor.predict(node.definition,
                                      node.properties.input_size, rec)
                actual = oracle_duration(vdce, node, rec.address)
                errors.append(abs(p.estimate_s - actual) / actual)
        rows.append({"calibration": coverage,
                     "mean_rel_error": float(np.mean(errors)),
                     "p90_rel_error": float(np.percentile(errors, 90))})
    print_table("F5: Predict(task, R) accuracy vs calibration coverage",
                rows)
    # trial runs matter: full calibration at least halves the error
    assert rows[-1]["mean_rel_error"] < rows[0]["mean_rel_error"]
    assert rows[-1]["mean_rel_error"] < 0.5
    benchmark.pedantic(lambda: make_testbed(3, 1.0), rounds=1, iterations=1)


def test_selection_regret_vs_baselines(benchmark):
    """Chosen-host duration / oracle-best duration, per strategy.

    Adversarial loads: the *fast* machines carry moderate background load
    (still fastest overall), the slow machines sit idle — so a load-only
    chooser picks an idle slow host, while Predict's weight x load
    product still finds the true winner (the paper's core argument for
    task-specific prediction).
    """
    vdce = nynet_testbed(seed=5, hosts_per_site=6, with_loads=False,
                         trace=False)
    vdce.start()
    for host in vdce.world.all_hosts():
        # cpu_factor < 1 == fast machine; load it moderately
        host.true_load = 0.5 if host.spec.cpu_factor < 1.1 else 0.0
    vdce.warm_up(40.0)
    repo = vdce.repositories["syracuse"]
    selector = HostSelector(repo)
    rng = np.random.default_rng(0)
    graph = linear_solver_graph(vdce.registry, n=150)
    regret: dict[str, list[float]] = {"vdce": [], "random": [],
                                      "min-load": []}
    for nid in graph.nodes:
        node = graph.node(nid)
        records = repo.resource_performance.hosts_at("syracuse")
        durations = {r.address: oracle_duration(vdce, node, r.address)
                     for r in records}
        best = min(durations.values())
        chosen = selector.select_for_task(node).hosts[0]
        regret["vdce"].append(durations[chosen] / best)
        rand = records[int(rng.integers(len(records)))].address
        regret["random"].append(durations[rand] / best)
        lazy = min(records, key=lambda r: (r.cpu_load, r.address)).address
        regret["min-load"].append(durations[lazy] / best)
    rows = [{"strategy": k,
             "mean_regret": float(np.mean(v)),
             "worst_regret": float(np.max(v))}
            for k, v in regret.items()]
    print_table("F5: selection regret (chosen / oracle-best duration)",
                rows)
    by = {r["strategy"]: r for r in rows}
    assert by["vdce"]["mean_regret"] < by["random"]["mean_regret"]
    assert by["vdce"]["mean_regret"] < by["min-load"]["mean_regret"]
    assert by["vdce"]["mean_regret"] < 1.2
    benchmark.pedantic(lambda: selector.select(graph), rounds=3,
                       iterations=1)


def test_constraints_and_preferences_respected(benchmark):
    """Selection under executable-location constraints + machine type."""
    from repro.afg import GraphBuilder, TaskProperties
    vdce = nynet_testbed(seed=7, hosts_per_site=6, with_loads=False,
                         trace=False)
    allowed = {"syracuse/h1", "syracuse/h4"}
    vdce.start(constrain={"lu-decomposition": allowed})
    repo = vdce.repositories["syracuse"]
    selector = HostSelector(repo)
    b = GraphBuilder(vdce.registry)
    b.task("matrix-generate", "g", input_size=100)
    b.task("lu-decomposition", "lu", input_size=100)
    b.link("g", "lu")
    choice = selector.select_for_task(b.graph.node("lu"))
    assert set(choice.hosts) <= allowed
    # machine-type filter composes with constraints
    b.graph.node("lu").properties = TaskProperties(machine_type="sparc",
                                                   input_size=100.0)
    recs = selector.feasible_records(b.graph.node("lu"))
    assert all(r.arch == "sparc" for r in recs)
    print_table("F5: constrained selection", [
        {"constraint_hosts": len(allowed), "chosen": choice.hosts[0],
         "feasible_after_machine_type": len(recs)}])
    benchmark.pedantic(lambda: selector.select_for_task(b.graph.node("g")),
                       rounds=3, iterations=1)


def test_selection_wallclock_scaling(benchmark):
    """Wall-clock cost of Figure 5's loop: linear in tasks x hosts."""
    vdce = make_testbed(seed=1)
    selector = HostSelector(vdce.repositories["syracuse"])
    graph = linear_solver_graph(vdce.registry, n=100)
    result = benchmark(selector.select, graph)
    assert len(result.choices) == len(graph)
