"""Legacy setup shim.

Offline environments without the `wheel` package cannot take pip's
PEP 517 editable path; `pip install -e . --no-use-pep517
--no-build-isolation` uses this file's `setup.py develop` instead.
"""

from setuptools import setup

setup()
